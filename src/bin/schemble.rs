//! `schemble` — command-line front end for the reproduction.
//!
//! ```text
//! schemble run     --task tm --method schemble [--queries N] [--rate R]
//!                  [--deadline-ms D] [--diurnal] [--force-all] [--seed S]
//!                  [--fast-path]
//! schemble compare --task tm [...]            # all six Table-I methods
//! schemble trace   --task tm [--queries N]    # dump the workload as CSV
//! schemble score   --task tm [--queries N]    # discrepancy scores as CSV
//! ```
//!
//! Argument parsing is hand-rolled to keep the dependency set at the
//! approved offline crates.

use schemble::baselines::{run_baseline, BaselineKind};
use schemble::core::artifacts::SchembleArtifacts;
use schemble::core::experiment::{
    ExperimentConfig, ExperimentContext, PipelineKind, Traffic,
};
use schemble::core::pipeline::schemble::{run_schemble, SchembleConfig};
use schemble::core::pipeline::AdmissionMode;
use schemble::core::predictor::OnlineScorer;
use schemble::core::scheduler::{DpScheduler, QueueOrder};
use schemble::data::TaskKind;
use schemble::metrics::RunSummary;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  schemble run     --task <tm|vc|ir> --method <METHOD> [options]
  schemble compare --task <tm|vc|ir> [options]
  schemble trace   --task <tm|vc|ir> [options]
  schemble score   --task <tm|vc|ir> [options]

methods:
  original | static | des | gating | schemble | schemble-ea | schemble-t |
  schemble-oracle | greedy-edf | greedy-fifo | greedy-sjf

options:
  --queries <N>       number of queries          (default 3000)
  --rate <R>          Poisson arrival rate /s    (default per task)
  --diurnal           use the one-day bursty trace instead of Poisson
  --deadline-ms <D>   relative deadline          (default per task)
  --seed <S>          root seed                  (default 42)
  --force-all         disable rejection (Table II mode)
  --fast-path         enable the §VIII fast-path dispatch optimisation
  --csv <PATH>        (run) write per-query records to a CSV file";

struct Cli {
    task: TaskKind,
    method: Option<String>,
    queries: usize,
    rate: Option<f64>,
    diurnal: bool,
    deadline_ms: Option<f64>,
    seed: u64,
    force_all: bool,
    fast_path: bool,
    csv: Option<String>,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        task: TaskKind::TextMatching,
        method: None,
        queries: 3000,
        rate: None,
        diurnal: false,
        deadline_ms: None,
        seed: 42,
        force_all: false,
        fast_path: false,
        csv: None,
    };
    let mut i = 0;
    let mut task_seen = false;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i).ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--task" => {
                cli.task = match take(&mut i)?.as_str() {
                    "tm" => TaskKind::TextMatching,
                    "vc" => TaskKind::VehicleCounting,
                    "ir" => TaskKind::ImageRetrieval,
                    other => return Err(format!("unknown task '{other}'")),
                };
                task_seen = true;
            }
            "--method" => cli.method = Some(take(&mut i)?.clone()),
            "--queries" => {
                cli.queries =
                    take(&mut i)?.parse().map_err(|_| "bad --queries".to_string())?
            }
            "--rate" => {
                cli.rate =
                    Some(take(&mut i)?.parse().map_err(|_| "bad --rate".to_string())?)
            }
            "--deadline-ms" => {
                cli.deadline_ms = Some(
                    take(&mut i)?.parse().map_err(|_| "bad --deadline-ms".to_string())?,
                )
            }
            "--seed" => {
                cli.seed = take(&mut i)?.parse().map_err(|_| "bad --seed".to_string())?
            }
            "--csv" => cli.csv = Some(take(&mut i)?.clone()),
            "--diurnal" => cli.diurnal = true,
            "--force-all" => cli.force_all = true,
            "--fast-path" => cli.fast_path = true,
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if !task_seen {
        return Err("--task is required".to_string());
    }
    Ok(cli)
}

fn context_for(cli: &Cli) -> ExperimentContext {
    let mut config = ExperimentConfig::paper_default(cli.task, cli.seed);
    config.n_queries = cli.queries;
    config.traffic = if cli.diurnal {
        Traffic::Diurnal { day_secs: cli.queries as f64 / 15.0 }
    } else {
        Traffic::Poisson {
            rate_per_sec: cli
                .rate
                .unwrap_or_else(|| schemble::core::experiment::default_rate(cli.task)),
        }
    };
    if let Some(d) = cli.deadline_ms {
        config = config.with_deadline_millis(d);
    }
    if cli.force_all {
        config.admission = AdmissionMode::ForceAll;
    }
    ExperimentContext::new(config)
}

fn print_summary(label: &str, s: &RunSummary) {
    println!(
        "{label:<16} acc {:>5.1}%  dmr {:>5.1}%  mean-lat {:>7.3}s  p95 {:>7.3}s  models/query {:.2}",
        100.0 * s.accuracy(),
        100.0 * s.deadline_miss_rate(),
        s.latency_stats().mean,
        s.latency_stats().p95,
        s.mean_models_used()
    );
}

fn run_one(ctx: &mut ExperimentContext, method: &str, fast_path: bool) -> Result<RunSummary, String> {
    let workload = ctx.workload();
    let kind = match method {
        "original" => Some(PipelineKind::Original),
        "static" => Some(PipelineKind::Static),
        "schemble-ea" => Some(PipelineKind::SchembleEa),
        "schemble-t" => Some(PipelineKind::SchembleT),
        "schemble-oracle" => Some(PipelineKind::SchembleOracle),
        "greedy-edf" => Some(PipelineKind::Greedy(QueueOrder::Edf)),
        "greedy-fifo" => Some(PipelineKind::Greedy(QueueOrder::Fifo)),
        "greedy-sjf" => Some(PipelineKind::Greedy(QueueOrder::Sjf)),
        _ => None,
    };
    if let Some(kind) = kind {
        return Ok(ctx.run(kind, &workload));
    }
    match method {
        "schemble" if fast_path => {
            // Assemble manually so the fast-path flag can be set.
            let art = ctx.artifacts().clone();
            let mut config = SchembleConfig::new(
                Box::new(DpScheduler::default()),
                OnlineScorer::Predictor(art.predictor),
                art.profile,
            );
            config.admission = ctx.config.admission;
            config.fast_path = true;
            Ok(run_schemble(&ctx.ensemble, &config, &workload, ctx.config.seed))
        }
        "schemble" => Ok(ctx.run(PipelineKind::Schemble, &workload)),
        "des" | "gating" => {
            let kind =
                if method == "des" { BaselineKind::Des } else { BaselineKind::Gating };
            Ok(run_baseline(
                kind,
                &ctx.ensemble,
                &ctx.generator,
                &workload,
                ctx.config.admission,
                ctx.config.history_n,
                ctx.config.seed,
            ))
        }
        other => Err(format!("unknown method '{other}'")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".to_string());
    };
    let cli = parse(&args[1..])?;
    let mut ctx = context_for(&cli);
    match command.as_str() {
        "run" => {
            let method =
                cli.method.clone().ok_or_else(|| "--method is required".to_string())?;
            let summary = run_one(&mut ctx, &method, cli.fast_path)?;
            print_summary(&method, &summary);
            if let Some(path) = &cli.csv {
                schemble::metrics::write_csv(std::path::Path::new(path), summary.records())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("wrote {} records to {path}", summary.len());
            }
            Ok(())
        }
        "compare" => {
            for method in
                ["original", "static", "des", "gating", "schemble-ea", "schemble"]
            {
                let summary = run_one(&mut ctx, method, cli.fast_path)?;
                print_summary(method, &summary);
            }
            Ok(())
        }
        "trace" => {
            let workload = ctx.workload();
            println!("id,arrival_s,deadline_s,difficulty");
            for q in &workload.queries {
                println!(
                    "{},{:.6},{:.6},{:.4}",
                    q.id,
                    q.arrival.as_secs_f64(),
                    q.deadline.as_secs_f64(),
                    q.sample.difficulty
                );
            }
            Ok(())
        }
        "score" => {
            let workload = ctx.workload();
            let art: SchembleArtifacts = ctx.artifacts().clone();
            println!("id,difficulty,true_score,predicted_score");
            for q in &workload.queries {
                println!(
                    "{},{:.4},{:.4},{:.4}",
                    q.id,
                    q.sample.difficulty,
                    art.scorer.score(&ctx.ensemble, &q.sample),
                    art.predictor.predict_score(&q.sample.features)
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
