//! `schemble` — command-line front end for the reproduction.
//!
//! ```text
//! schemble run     --task tm --method schemble [--queries N] [--rate R]
//!                  [--deadline-ms D] [--diurnal] [--force-all] [--seed S]
//!                  [--fast-path]
//! schemble compare --task tm [...]            # all six Table-I methods
//! schemble trace   --task tm [--queries N]    # dump the workload as CSV
//! schemble score   --task tm [--queries N]    # discrepancy scores as CSV
//! schemble serve   --task tm --method schemble [--dilation G]
//!                  [--virtual-clock] [--report-ms MS]   # real-time runtime
//! schemble loadtest --trace one-day --method schemble   # replay + DES check
//! schemble explain --query 17 [--method schemble]       # one query's plan
//! ```
//!
//! `run`, `serve` and `loadtest` accept `--trace-out` (Chrome trace-event
//! JSON, open in Perfetto), `--metrics-out` (Prometheus text exposition)
//! and `--audit-out` (NDJSON scheduler decision audit log), plus the
//! introspection exports: `--slo-out` (windowed SLO time-series NDJSON),
//! `--obs-out` (introspection Prometheus exposition) and
//! `--flight-recorder` (post-mortem event-ring dump, written on trip).
//!
//! Argument parsing is hand-rolled to keep the dependency set at the
//! approved offline crates.

use schemble::baselines::{run_baseline_traced, train_des, train_gating, BaselineKind};
use schemble::core::artifacts::SchembleArtifacts;
use schemble::core::engine::{AnytimePolicy, FailurePolicy};
use schemble::core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble::core::pipeline::schemble::{run_schemble_traced, SchembleConfig};
use schemble::core::pipeline::{
    best_static_deployment, AdmissionMode, Deployment, FixedSubsetPolicy, FullEnsemblePolicy,
    ResultAssembler,
};
use schemble::core::predictor::OnlineScorer;
use schemble::core::scheduler::{DpScheduler, QueueOrder};
use schemble::data::TaskKind;
use schemble::metrics::{RunSummary, RuntimeMetrics};
use schemble::obs::{explain_query, FlightRecorder, ObsConfig, ObsState};
use schemble::serve::{serve_immediate, serve_schemble, ClockMode, ServeConfig, ServeReport};
use schemble::sim::{BatchConfig, FaultPlan, SimDuration};
use schemble::trace::{
    audit_ndjson, chrome_trace_named, metrics_from_events, prometheus_text, AuditWriter,
    TraceEvent, TraceSink,
};
use std::process::ExitCode;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  schemble run      --method <METHOD> [--task <tm|vc|ir>] [options]
  schemble compare  [--task <tm|vc|ir>] [options]
  schemble trace    [--task <tm|vc|ir>] [options]
  schemble score    [--task <tm|vc|ir>] [options]
  schemble serve    --method <METHOD> [--task <tm|vc|ir>] [serve options]
  schemble loadtest --method <METHOD> [--task <tm|vc|ir>] [serve options]
  schemble explain  --query <ID> [--method <METHOD>] [--task <tm|vc|ir>]

methods:
  original | static | des | gating | schemble | schemble-ea | schemble-t |
  schemble-oracle | greedy-edf | greedy-fifo | greedy-sjf

options:
  --queries <N>       number of queries          (default 3000)
  --rate <R>          Poisson arrival rate /s    (default per task)
  --diurnal           use the one-day bursty trace instead of Poisson
  --deadline-ms <D>   relative deadline          (default per task)
  --seed <S>          root seed                  (default 42)
  --force-all         disable rejection (Table II mode)
  --fast-path         enable the §VIII fast-path dispatch optimisation
  --anytime           anytime early exit: quit a query's remaining tasks
                      once its partial ensemble is already confident
                      (schemble method only)
  --confidence-threshold <C>  anytime quit confidence in [0,1]: quit once
                      the partial result is within 1-C of the full plan's
                      profiled utility; values above 1 disable quitting
                      entirely  (default 0.98)
  --batch-max <B>     coalesce up to B compatible tasks of the same model
                      into one batched pass (schemble method only; 1 =
                      unbatched, the default — byte-identical to no flag)
  --batch-window-ms <W>  how long an open batch waits for more members
                      before launching  (default 2; requires --batch-max)
  --csv <PATH>        (run) write per-query records to a CSV file
  (--task defaults to tm, the paper's primary text-matching task)

telemetry (run/serve/loadtest):
  --trace-out <PATH>    write a Chrome trace-event JSON (open in Perfetto)
  --metrics-out <PATH>  write a Prometheus text exposition
  --audit-out <PATH>    write the per-query scheduler audit log (NDJSON)

introspection (run/serve/loadtest):
  --slo-out <PATH>      write the windowed SLO time-series (NDJSON)
  --slo-window-ms <MS>  SLO window width in backend millis    (default 1000)
  --obs-out <PATH>      write the introspection Prometheus exposition
                        (SLO totals, newest-window gauges, drift counters)
  --flight-recorder <PATH>  arm a bounded post-mortem recorder; dumps the
                        event ring to PATH on wedge, worker panic or breach
  --breach-expired <N>  trip the recorder once N queries have expired

explain:
  --query <ID>          the query to explain (re-runs the seeded DES and
                        reconstructs that query's plan lineage)

serve/loadtest options (methods: original|static|des|gating|schemble):
  --dilation <G>      simulated seconds per wall second
                      (serve default 1; loadtest default 20)
  --virtual-clock     deterministic virtual time: decisions match the DES
  --report-ms <MS>    print a live metrics snapshot every MS wall millis
  --trace <T>         (loadtest) one-day | poisson   (default one-day)
  --shards <S>        run S parallel engine shards behind a hash router
                      (schemble method only; 1 = unsharded, the default;
                      also accepted by run/explain, which then replay the
                      sharded engines on the deterministic virtual clock)
  --steal-epoch-ms <MS>  rebalance shard backlogs at every MS of virtual
                      time: overloaded shards hand eligible queued queries
                      to idle peers via a deterministic rendezvous
                      (requires --shards > 1; off by default)
  --skew <THETA>      re-key the workload with a Zipf(THETA) draw over 64
                      hot keys so the hash router concentrates load on few
                      shards (0 = uniform; try 2.0 to see stealing work)

fault injection (serve/loadtest):
  --fault-plan <PATH>   seeded fault schedule (crash/straggle/transient/
                        timeout-q directives; see DESIGN.md)
  --task-timeout-q <Q>  kill tasks exceeding this profiled latency quantile
  --max-retries <N>     re-dispatch a failed task at most N times (default 2)";

struct Cli {
    task: TaskKind,
    method: Option<String>,
    queries: usize,
    rate: Option<f64>,
    diurnal: bool,
    deadline_ms: Option<f64>,
    seed: u64,
    force_all: bool,
    fast_path: bool,
    anytime: bool,
    confidence_threshold: Option<f64>,
    batch_max: Option<usize>,
    batch_window_ms: Option<f64>,
    csv: Option<String>,
    dilation: Option<f64>,
    virtual_clock: bool,
    report_ms: Option<u64>,
    shards: usize,
    steal_epoch_ms: Option<f64>,
    skew: Option<f64>,
    trace: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    audit_out: Option<String>,
    slo_out: Option<String>,
    slo_window_ms: u64,
    obs_out: Option<String>,
    flight_recorder: Option<String>,
    breach_expired: Option<u64>,
    query: Option<u64>,
    fault_plan: Option<String>,
    task_timeout_q: Option<f64>,
    max_retries: Option<u32>,
}

impl Cli {
    /// True when any telemetry export was requested.
    fn wants_export(&self) -> bool {
        self.trace_out.is_some()
            || self.metrics_out.is_some()
            || self.audit_out.is_some()
            || self.slo_out.is_some()
            || self.obs_out.is_some()
    }
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        task: TaskKind::TextMatching,
        method: None,
        queries: 3000,
        rate: None,
        diurnal: false,
        deadline_ms: None,
        seed: 42,
        force_all: false,
        fast_path: false,
        anytime: false,
        confidence_threshold: None,
        batch_max: None,
        batch_window_ms: None,
        csv: None,
        dilation: None,
        virtual_clock: false,
        report_ms: None,
        shards: 1,
        steal_epoch_ms: None,
        skew: None,
        trace: None,
        trace_out: None,
        metrics_out: None,
        audit_out: None,
        slo_out: None,
        slo_window_ms: 1000,
        obs_out: None,
        flight_recorder: None,
        breach_expired: None,
        query: None,
        fault_plan: None,
        task_timeout_q: None,
        max_retries: None,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i).ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--task" => {
                cli.task = match take(&mut i)?.as_str() {
                    "tm" => TaskKind::TextMatching,
                    "vc" => TaskKind::VehicleCounting,
                    "ir" => TaskKind::ImageRetrieval,
                    other => return Err(format!("unknown task '{other}'")),
                };
            }
            "--method" => cli.method = Some(take(&mut i)?.clone()),
            "--queries" => {
                cli.queries = take(&mut i)?.parse().map_err(|_| "bad --queries".to_string())?
            }
            "--rate" => {
                cli.rate = Some(take(&mut i)?.parse().map_err(|_| "bad --rate".to_string())?)
            }
            "--deadline-ms" => {
                cli.deadline_ms =
                    Some(take(&mut i)?.parse().map_err(|_| "bad --deadline-ms".to_string())?)
            }
            "--seed" => cli.seed = take(&mut i)?.parse().map_err(|_| "bad --seed".to_string())?,
            "--csv" => cli.csv = Some(take(&mut i)?.clone()),
            "--dilation" => {
                cli.dilation =
                    Some(take(&mut i)?.parse().map_err(|_| "bad --dilation".to_string())?)
            }
            "--report-ms" => {
                cli.report_ms =
                    Some(take(&mut i)?.parse().map_err(|_| "bad --report-ms".to_string())?)
            }
            "--shards" => {
                cli.shards = take(&mut i)?.parse().map_err(|_| "bad --shards".to_string())?;
                if cli.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--steal-epoch-ms" => {
                let ms: f64 =
                    take(&mut i)?.parse().map_err(|_| "bad --steal-epoch-ms".to_string())?;
                if !ms.is_finite() || ms <= 0.0 {
                    return Err("--steal-epoch-ms must be positive".to_string());
                }
                cli.steal_epoch_ms = Some(ms);
            }
            "--skew" => {
                let theta: f64 = take(&mut i)?.parse().map_err(|_| "bad --skew".to_string())?;
                if !theta.is_finite() || theta < 0.0 {
                    return Err("--skew must be a non-negative Zipf exponent".to_string());
                }
                cli.skew = Some(theta);
            }
            "--trace" => cli.trace = Some(take(&mut i)?.clone()),
            "--trace-out" => cli.trace_out = Some(take(&mut i)?.clone()),
            "--metrics-out" => cli.metrics_out = Some(take(&mut i)?.clone()),
            "--audit-out" => cli.audit_out = Some(take(&mut i)?.clone()),
            "--slo-out" => cli.slo_out = Some(take(&mut i)?.clone()),
            "--slo-window-ms" => {
                cli.slo_window_ms =
                    take(&mut i)?.parse().map_err(|_| "bad --slo-window-ms".to_string())?;
                if cli.slo_window_ms == 0 {
                    return Err("--slo-window-ms must be at least 1".to_string());
                }
            }
            "--obs-out" => cli.obs_out = Some(take(&mut i)?.clone()),
            "--flight-recorder" => cli.flight_recorder = Some(take(&mut i)?.clone()),
            "--breach-expired" => {
                cli.breach_expired =
                    Some(take(&mut i)?.parse().map_err(|_| "bad --breach-expired".to_string())?)
            }
            "--query" => {
                cli.query = Some(take(&mut i)?.parse().map_err(|_| "bad --query".to_string())?)
            }
            "--fault-plan" => cli.fault_plan = Some(take(&mut i)?.clone()),
            "--task-timeout-q" => {
                cli.task_timeout_q =
                    Some(take(&mut i)?.parse().map_err(|_| "bad --task-timeout-q".to_string())?)
            }
            "--max-retries" => {
                cli.max_retries =
                    Some(take(&mut i)?.parse().map_err(|_| "bad --max-retries".to_string())?)
            }
            "--confidence-threshold" => {
                cli.confidence_threshold = Some(
                    take(&mut i)?.parse().map_err(|_| "bad --confidence-threshold".to_string())?,
                )
            }
            "--batch-max" => {
                let b: usize = take(&mut i)?.parse().map_err(|_| "bad --batch-max".to_string())?;
                if b == 0 {
                    return Err("--batch-max must be at least 1".to_string());
                }
                cli.batch_max = Some(b);
            }
            "--batch-window-ms" => {
                let w: f64 =
                    take(&mut i)?.parse().map_err(|_| "bad --batch-window-ms".to_string())?;
                if !w.is_finite() || w <= 0.0 {
                    return Err("--batch-window-ms must be positive".to_string());
                }
                cli.batch_window_ms = Some(w);
            }
            "--virtual-clock" => cli.virtual_clock = true,
            "--diurnal" => cli.diurnal = true,
            "--force-all" => cli.force_all = true,
            "--fast-path" => cli.fast_path = true,
            "--anytime" => cli.anytime = true,
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if cli.confidence_threshold.is_some() && !cli.anytime {
        return Err("--confidence-threshold requires --anytime".to_string());
    }
    if cli.batch_window_ms.is_some() && cli.batch_max.is_none() {
        return Err("--batch-window-ms requires --batch-max".to_string());
    }
    if cli.steal_epoch_ms.is_some() && cli.shards <= 1 {
        return Err(
            "--steal-epoch-ms requires --shards > 1 (stealing rebalances between shard engines)"
                .to_string(),
        );
    }
    Ok(cli)
}

fn context_for(cli: &Cli) -> ExperimentContext {
    let mut config = ExperimentConfig::paper_default(cli.task, cli.seed);
    config.n_queries = cli.queries;
    config.traffic = if cli.diurnal {
        Traffic::Diurnal { day_secs: cli.queries as f64 / 15.0 }
    } else {
        Traffic::Poisson {
            rate_per_sec: cli
                .rate
                .unwrap_or_else(|| schemble::core::experiment::default_rate(cli.task)),
        }
    };
    if let Some(d) = cli.deadline_ms {
        config = config.with_deadline_millis(d);
    }
    if cli.force_all {
        config.admission = AdmissionMode::ForceAll;
    }
    ExperimentContext::new(config)
}

fn print_summary(label: &str, s: &RunSummary) {
    println!(
        "{label:<16} acc {:>5.1}%  dmr {:>5.1}%  mean-lat {:>7.3}s  p95 {:>7.3}s  models/query {:.2}",
        100.0 * s.accuracy(),
        100.0 * s.deadline_miss_rate(),
        s.latency_stats().mean,
        s.latency_stats().p95,
        s.mean_models_used()
    );
}

/// The batch configuration requested by the CLI flags, if any.
/// `--batch-max 1` normalises to `None` — byte-identical to no flag.
fn batch_config(cli: &Cli) -> Option<BatchConfig> {
    let batch_max = cli.batch_max?;
    let window = SimDuration::from_millis_f64(cli.batch_window_ms.unwrap_or(2.0));
    Some(BatchConfig::new(batch_max, window)).filter(|b| b.active())
}

/// The anytime policy requested by the CLI flags, if any. A bare
/// `--confidence-threshold` without `--anytime` is rejected in [`parse`].
fn anytime_policy(cli: &Cli) -> Option<AnytimePolicy> {
    cli.anytime.then(|| {
        let mut policy = AnytimePolicy::default();
        if let Some(t) = cli.confidence_threshold {
            policy.confidence_threshold = t;
        }
        policy
    })
}

fn run_one(
    ctx: &mut ExperimentContext,
    method: &str,
    cli: &Cli,
    sink: &Arc<TraceSink>,
) -> Result<RunSummary, String> {
    let fast_path = cli.fast_path;
    let anytime = anytime_policy(cli);
    let batching = batch_config(cli);
    let workload = ctx.workload();
    let kind = match method {
        "original" => Some(PipelineKind::Original),
        "static" => Some(PipelineKind::Static),
        "schemble-ea" => Some(PipelineKind::SchembleEa),
        "schemble-t" => Some(PipelineKind::SchembleT),
        "schemble-oracle" => Some(PipelineKind::SchembleOracle),
        "greedy-edf" => Some(PipelineKind::Greedy(QueueOrder::Edf)),
        "greedy-fifo" => Some(PipelineKind::Greedy(QueueOrder::Fifo)),
        "greedy-sjf" => Some(PipelineKind::Greedy(QueueOrder::Sjf)),
        _ => None,
    };
    if let Some(kind) = kind {
        return Ok(ctx.run_traced(kind, &workload, Arc::clone(sink)));
    }
    match method {
        "schemble" if fast_path || anytime.is_some() || batching.is_some() => {
            // Assemble manually so the fast-path/anytime/batching flags can
            // be set.
            let art = ctx.artifacts().clone();
            let mut config = SchembleConfig::new(
                Box::new(DpScheduler::default()),
                OnlineScorer::Predictor(art.predictor),
                art.profile,
            );
            config.admission = ctx.config.admission;
            config.fast_path = fast_path;
            config.anytime = anytime;
            config.batching = batching;
            Ok(run_schemble_traced(
                &ctx.ensemble,
                &config,
                &workload,
                ctx.config.seed,
                Arc::clone(sink),
            ))
        }
        "schemble" => Ok(ctx.run_traced(PipelineKind::Schemble, &workload, Arc::clone(sink))),
        "des" | "gating" => {
            let kind = if method == "des" { BaselineKind::Des } else { BaselineKind::Gating };
            Ok(run_baseline_traced(
                kind,
                &ctx.ensemble,
                &ctx.generator,
                &workload,
                ctx.config.admission,
                ctx.config.history_n,
                ctx.config.seed,
                Arc::clone(sink),
            ))
        }
        other => Err(format!("unknown method '{other}'")),
    }
}

/// Writes the requested telemetry exports from a finished run's sink.
///
/// For serve/loadtest the live [`RuntimeMetrics`] block is passed in; for
/// DES runs (no live metrics) the counters, gauges and latency histogram
/// are reconstructed from the trace itself. Backend elapsed time falls
/// back to the last event's timestamp when the caller has no report.
fn export_telemetry(
    cli: &Cli,
    sink: &TraceSink,
    label: &str,
    executors: usize,
    sim_secs: Option<f64>,
    metrics: Option<&RuntimeMetrics>,
) -> Result<(), String> {
    if !cli.wants_export() {
        return Ok(());
    }
    let events = sink.snapshot();
    if sink.dropped() > 0 {
        eprintln!("warning: trace ring dropped {} events; exports are truncated", sink.dropped());
    }
    // Metadata thread naming covers every executor that appears in the
    // trace even when the deployment has more instances than base models.
    let executors = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TaskEnqueue { executor, .. }
            | TraceEvent::TaskStart { executor, .. }
            | TraceEvent::TaskDone { executor, .. } => Some(*executor as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0)
        .max(executors);
    let write = |path: &str, contents: &str| -> Result<(), String> {
        std::fs::write(path, contents).map_err(|e| format!("writing {path}: {e}"))
    };
    if let Some(path) = &cli.trace_out {
        // Sharded runs name tracks by shard: global executor s*m+k is
        // shard s's replica of model k.
        let tracks: Vec<String> = if cli.shards > 1 && executors % cli.shards == 0 {
            let m = executors / cli.shards;
            (0..executors).map(|k| format!("shard-{}/executor-{}", k / m, k % m)).collect()
        } else {
            (0..executors).map(|k| format!("executor-{k}")).collect()
        };
        write(path, &chrome_trace_named(&events, &tracks, label))?;
        println!("  wrote Chrome trace ({} events) to {path}", events.len());
    }
    if let Some(path) = &cli.audit_out {
        let log = audit_ndjson(&events);
        println!("  wrote audit log ({} queries) to {path}", log.lines().count());
        write(path, &log)?;
    }
    if let Some(path) = &cli.metrics_out {
        let elapsed = sim_secs.unwrap_or_else(|| {
            events.iter().map(|e| e.time()).max().map_or(0.0, |t| t.as_secs_f64())
        });
        let derived;
        let m = match metrics {
            Some(m) => m,
            None => {
                derived = metrics_from_events(&events, executors);
                &derived
            }
        };
        write(path, &prometheus_text(m, elapsed, Some(&sink.planning)))?;
        println!("  wrote metrics exposition to {path}");
    }
    Ok(())
}

/// Writes the introspection exports (`--slo-out` / `--obs-out`): a pure
/// fold over the finished run's trace snapshot, so a DES `run` and a
/// `--virtual-clock` serve of the same seed produce byte-identical files.
fn export_obs(
    cli: &Cli,
    ctx: &mut ExperimentContext,
    method: &str,
    sink: &TraceSink,
) -> Result<(), String> {
    if cli.slo_out.is_none() && cli.obs_out.is_none() {
        return Ok(());
    }
    // The calibration detector needs the difficulty-bin layout, which only
    // schemble-family pipelines carry; other methods skip that detector.
    let bins = if method.starts_with("schemble") { ctx.artifacts().profile.bins() } else { 0 };
    let config = ObsConfig {
        window: SimDuration::from_millis(cli.slo_window_ms),
        bins,
        profiled_latencies_us: ctx
            .ensemble
            .planned_latencies()
            .iter()
            .map(|d| d.as_micros())
            .collect(),
        ..ObsConfig::default()
    };
    let state = ObsState::fold(&config, &sink.snapshot());
    if let Some(path) = &cli.slo_out {
        let text = state.slo_ndjson();
        std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote SLO time-series ({} windows) to {path}", text.lines().count());
    }
    if let Some(path) = &cli.obs_out {
        std::fs::write(path, state.prometheus()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote introspection metrics to {path}");
    }
    Ok(())
}

/// Arms the flight recorder (when requested) as a sink tap, so every
/// emitted event lands in its bounded ring even with all exports off.
fn arm_recorder(cli: &Cli, sink: &Arc<TraceSink>) -> Option<Arc<FlightRecorder>> {
    cli.flight_recorder.as_ref()?;
    let rec = Arc::new(FlightRecorder::new(4096, cli.breach_expired));
    sink.set_tap(Some(rec.clone()));
    Some(rec)
}

/// Dumps the recorder's ring if it tripped. An untripped recorder writes
/// nothing: the absence of the file is the all-clear.
fn finish_recorder(cli: &Cli, recorder: &Option<Arc<FlightRecorder>>) -> Result<(), String> {
    let Some(rec) = recorder else { return Ok(()) };
    let path = cli.flight_recorder.as_deref().unwrap_or_default();
    match rec.tripped() {
        Some(reason) => {
            let dump = rec.dump_json();
            std::fs::write(path, &dump).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "  flight recorder tripped ({}): wrote {} events to {path}",
                reason.as_str(),
                rec.events().len()
            );
        }
        None => println!("  flight recorder armed, never tripped; nothing written"),
    }
    Ok(())
}

/// Prints the scheduler's self-profile when at least one plan ran.
fn print_planning(sink: &TraceSink) {
    let p = &sink.planning;
    let n = p.plans.load(Relaxed);
    let Some(mean) = p.mean_secs() else { return };
    let p95 = p.hist.quantile(0.95).unwrap_or(mean);
    println!(
        "  scheduler: {n} plans, mean {:.1} us, p95 {:.1} us, {} work units planned",
        mean * 1e6,
        p95 * 1e6,
        p.work_units.load(Relaxed)
    );
}

/// Builds the fault plan and retry policy requested by the CLI flags.
/// `(None, None)` — the common case — leaves every run fault-free and
/// decision-identical to a build without fault support.
fn fault_setup(cli: &Cli) -> Result<(Option<FaultPlan>, Option<FailurePolicy>), String> {
    let mut plan = match &cli.fault_plan {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            Some(FaultPlan::parse(&text)?)
        }
        None => None,
    };
    if let Some(q) = cli.task_timeout_q {
        if !(0.0..=1.0).contains(&q) {
            return Err("--task-timeout-q must be in [0, 1]".to_string());
        }
        plan.get_or_insert_with(FaultPlan::default).timeout_quantile = Some(q);
    }
    let failure = (plan.is_some() || cli.max_retries.is_some()).then(|| {
        let mut policy = FailurePolicy::default();
        if let Some(n) = cli.max_retries {
            policy.max_retries = n;
        }
        policy
    });
    Ok((plan, failure))
}

/// Builds the runtime configuration from the CLI flags.
fn serve_config(
    cli: &Cli,
    default_dilation: f64,
    sink: &Arc<TraceSink>,
    audit: Option<Arc<AuditWriter>>,
    recorder: Option<Arc<FlightRecorder>>,
) -> Result<ServeConfig, String> {
    let (faults, failure) = fault_setup(cli)?;
    Ok(ServeConfig {
        mode: if cli.virtual_clock {
            ClockMode::Virtual
        } else {
            ClockMode::Wall { dilation: cli.dilation.unwrap_or(default_dilation) }
        },
        report_every: cli.report_ms.map(Duration::from_millis),
        trace: Some(Arc::clone(sink)),
        faults,
        failure,
        shards: cli.shards,
        steal_epoch: cli.steal_epoch_ms.map(SimDuration::from_millis_f64),
        audit,
        recorder,
        ..ServeConfig::default()
    })
}

/// A streaming line-atomic audit writer for sharded runs: each shard
/// writes its queries' lines concurrently as it finishes, instead of the
/// post-hoc single-threaded export unsharded runs use.
fn shard_audit_writer(cli: &Cli) -> Result<Option<Arc<AuditWriter>>, String> {
    if cli.shards <= 1 {
        return Ok(None);
    }
    let Some(path) = &cli.audit_out else {
        return Ok(None);
    };
    let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    Ok(Some(Arc::new(AuditWriter::new(Box::new(std::io::BufWriter::new(file))))))
}

/// Runs one method on the schemble-serve runtime.
fn serve_one(
    ctx: &mut ExperimentContext,
    method: &str,
    cli: &Cli,
    default_dilation: f64,
    sink: &Arc<TraceSink>,
    audit: Option<Arc<AuditWriter>>,
    recorder: Option<Arc<FlightRecorder>>,
) -> Result<ServeReport, String> {
    if cli.shards > 1 && method != "schemble" {
        return Err(format!(
            "--shards requires --method schemble (the immediate '{method}' pipeline keeps \
             per-query selection state that is not shardable)"
        ));
    }
    let mut workload = ctx.workload();
    if let Some(theta) = cli.skew {
        // Hot-key skew: the hash router then concentrates load on few
        // shards, the regime --steal-epoch-ms exists for. 64 keys is
        // plenty for any realistic shard count.
        workload = workload.with_zipf_keys(64, theta, ctx.config.seed);
    }
    let seed = ctx.config.seed;
    let admission = ctx.config.admission;
    let scfg = serve_config(cli, default_dilation, sink, audit, recorder)?;
    let m = ctx.ensemble.m();
    match method {
        "schemble" => {
            let art = ctx.artifacts().clone();
            let mut config = SchembleConfig::new(
                Box::new(DpScheduler::default()),
                OnlineScorer::Predictor(art.predictor),
                art.profile,
            );
            config.admission = admission;
            config.fast_path = cli.fast_path;
            config.anytime = anytime_policy(cli);
            config.batching = batch_config(cli);
            config.failure = scfg.failure;
            Ok(serve_schemble(&ctx.ensemble, &config, &workload, seed, &scfg))
        }
        "original" => Ok(serve_immediate(
            &ctx.ensemble,
            &Deployment::identity(m),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            admission,
            &workload,
            seed,
            &scfg,
        )),
        "static" => {
            let pilot = (workload.len() / 5).clamp(100, 2000);
            let (set, deployment) = best_static_deployment(&ctx.ensemble, &workload, pilot, seed);
            Ok(serve_immediate(
                &ctx.ensemble,
                &deployment,
                &mut FixedSubsetPolicy { set },
                &ResultAssembler::Direct,
                admission,
                &workload,
                seed,
                &scfg,
            ))
        }
        "des" => {
            let mut policy = train_des(&ctx.ensemble, &ctx.generator, ctx.config.history_n, seed);
            Ok(serve_immediate(
                &ctx.ensemble,
                &Deployment::identity(m),
                &mut policy,
                &ResultAssembler::Direct,
                admission,
                &workload,
                seed,
                &scfg,
            ))
        }
        "gating" => {
            let mut policy =
                train_gating(&ctx.ensemble, &ctx.generator, ctx.config.history_n, seed);
            Ok(serve_immediate(
                &ctx.ensemble,
                &Deployment::identity(m),
                &mut policy,
                &ResultAssembler::Direct,
                admission,
                &workload,
                seed,
                &scfg,
            ))
        }
        other => Err(format!("method '{other}' is not supported by the serving runtime")),
    }
}

/// Flushes a streamed (sharded) audit log and drops the post-hoc export
/// request so the same lines are not written twice by `export_telemetry`.
fn finish_streamed_audit(cli: &mut Cli, audit: &Option<Arc<AuditWriter>>) -> Result<(), String> {
    let Some(writer) = audit else { return Ok(()) };
    writer.flush().map_err(|e| format!("flushing audit log: {e}"))?;
    if let Some(path) = cli.audit_out.take() {
        println!("  wrote audit log ({} queries, streamed per shard) to {path}", writer.lines());
    }
    Ok(())
}

/// Hard-fails (non-zero exit) when the runtime finished with queries still
/// open — every admitted query must end completed, degraded, rejected or
/// expired, faults or not. The CI fault gauntlet relies on this check.
fn check_not_wedged(report: &ServeReport) -> Result<(), String> {
    let open = report.stats.open();
    if open != 0 {
        return Err(format!("{open} queries left open at shutdown (wedged)"));
    }
    Ok(())
}

fn print_report(method: &str, report: &ServeReport, virtual_clock: bool) {
    print_summary(method, &report.summary);
    let s = &report.stats;
    println!(
        "  runtime [{}]: {} submitted = {} completed + {} degraded + {} rejected + {} expired",
        if virtual_clock { "virtual clock" } else { "wall clock" },
        s.submitted,
        s.completed,
        s.degraded,
        s.rejected,
        s.expired,
    );
    if s.tasks_failed > 0 || s.degraded > 0 {
        println!(
            "  faults: {} task failures, {} retried, {} degraded answers",
            s.tasks_failed, s.tasks_retried, s.degraded
        );
    }
    if s.tasks_saved > 0 {
        println!("  anytime: {} planned tasks quit early (work saved)", s.tasks_saved);
    }
    println!(
        "  {:.1}s of simulated traffic in {:.2}s wall ({:.1}x); {}",
        report.sim_secs,
        report.wall_secs,
        report.sim_secs / report.wall_secs.max(1e-9),
        report.snapshot.brief()
    );
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".to_string());
    };
    let mut cli = parse(&args[1..])?;
    if command == "loadtest" {
        match cli.trace.as_deref().unwrap_or("one-day") {
            "one-day" => cli.diurnal = true,
            "poisson" => cli.diurnal = false,
            other => return Err(format!("unknown trace '{other}'")),
        }
    }
    if (cli.wants_export() || cli.flight_recorder.is_some())
        && !matches!(command.as_str(), "run" | "serve" | "loadtest")
    {
        return Err(
            "telemetry and introspection exports require run, serve or loadtest".to_string()
        );
    }
    if cli.shards > 1 && !matches!(command.as_str(), "run" | "serve" | "loadtest" | "explain") {
        return Err("--shards requires run, serve, loadtest or explain".to_string());
    }
    if cli.anytime && cli.method.as_deref().is_some_and(|m| m != "schemble") {
        return Err("--anytime requires --method schemble (the buffered pipeline \
                    is the only one that tracks a partial-ensemble vote)"
            .to_string());
    }
    if cli.batch_max.is_some() && cli.method.as_deref().is_some_and(|m| m != "schemble") {
        return Err("--batch-max requires --method schemble (only the buffered \
                    pipeline coalesces compatible tasks across queries)"
            .to_string());
    }
    // Event emission is armed only when an export was requested; the
    // planning self-profile records either way. Tracing never changes a
    // scheduling decision (events carry backend time only).
    let sink = TraceSink::enabled();
    sink.set_enabled(cli.wants_export());
    let mut ctx = context_for(&cli);
    match command.as_str() {
        "run" => {
            let method = cli.method.clone().ok_or_else(|| "--method is required".to_string())?;
            if cli.shards > 1 {
                // The single-engine DES driver cannot host shard engines;
                // a sharded `run` replays them on the virtual-clock serving
                // runtime, which is byte-identical to the DES — so
                // `run --shards` and `serve --virtual-clock --shards`
                // produce the same exports (the CI steal gauntlet compares
                // them with `cmp`).
                cli.virtual_clock = true;
                let audit = shard_audit_writer(&cli)?;
                let recorder = arm_recorder(&cli, &sink);
                let report = serve_one(
                    &mut ctx,
                    &method,
                    &cli,
                    1.0,
                    &sink,
                    audit.clone(),
                    recorder.clone(),
                )?;
                print_report(&method, &report, true);
                print_planning(&sink);
                if let Some(path) = &cli.csv {
                    schemble::metrics::write_csv(
                        std::path::Path::new(path),
                        report.summary.records(),
                    )
                    .map_err(|e| format!("writing {path}: {e}"))?;
                    println!("wrote {} records to {path}", report.summary.len());
                }
                finish_streamed_audit(&mut cli, &audit)?;
                export_telemetry(
                    &cli,
                    &sink,
                    &method,
                    report.metrics.executors.len(),
                    Some(report.sim_secs),
                    Some(&report.metrics),
                )?;
                export_obs(&cli, &mut ctx, &method, &sink)?;
                finish_recorder(&cli, &recorder)?;
                return check_not_wedged(&report);
            }
            let recorder = arm_recorder(&cli, &sink);
            let summary = run_one(&mut ctx, &method, &cli, &sink)?;
            print_summary(&method, &summary);
            print_planning(&sink);
            if let Some(path) = &cli.csv {
                schemble::metrics::write_csv(std::path::Path::new(path), summary.records())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("wrote {} records to {path}", summary.len());
            }
            export_telemetry(&cli, &sink, &method, ctx.ensemble.m(), None, None)?;
            export_obs(&cli, &mut ctx, &method, &sink)?;
            finish_recorder(&cli, &recorder)
        }
        "compare" => {
            for method in ["original", "static", "des", "gating", "schemble-ea", "schemble"] {
                let summary = run_one(&mut ctx, method, &cli, &TraceSink::disabled())?;
                print_summary(method, &summary);
            }
            Ok(())
        }
        "trace" => {
            let workload = ctx.workload();
            println!("id,arrival_s,deadline_s,difficulty");
            for q in &workload.queries {
                println!(
                    "{},{:.6},{:.6},{:.4}",
                    q.id,
                    q.arrival.as_secs_f64(),
                    q.deadline.as_secs_f64(),
                    q.sample.difficulty
                );
            }
            Ok(())
        }
        "score" => {
            let workload = ctx.workload();
            let art: SchembleArtifacts = ctx.artifacts().clone();
            println!("id,difficulty,true_score,predicted_score");
            for q in &workload.queries {
                println!(
                    "{},{:.4},{:.4},{:.4}",
                    q.id,
                    q.sample.difficulty,
                    art.scorer.score(&ctx.ensemble, &q.sample),
                    art.predictor.predict_score(&q.sample.features)
                );
            }
            Ok(())
        }
        "explain" => {
            let id = cli.query.ok_or_else(|| "--query is required".to_string())?;
            let method = cli.method.clone().unwrap_or_else(|| "schemble".to_string());
            // The whole stack is deterministic per seed, so re-running the
            // DES with tracing armed is an exact replay: the timeline below
            // is the one any earlier run with the same flags lived through.
            // Sharded flags replay through the (equally deterministic)
            // virtual-clock shard engines so steal lineage is explainable.
            sink.set_enabled(true);
            if cli.shards > 1 {
                cli.virtual_clock = true;
                serve_one(&mut ctx, &method, &cli, 1.0, &sink, None, None)?;
            } else {
                run_one(&mut ctx, &method, &cli, &sink)?;
            }
            match explain_query(&sink.snapshot(), id) {
                Some(explain) => {
                    print!("{}", explain.render());
                    Ok(())
                }
                // `explain_query` returns `None` (never an empty timeline)
                // when no event mentions the id, so both miss cases exit
                // non-zero with a cause instead of printing nothing.
                None if id < cli.queries as u64 => Err(format!(
                    "query {id} is in range but absent from the trace \
                     (the ring dropped {} events; retry with fewer --queries)",
                    sink.dropped()
                )),
                None => Err(format!(
                    "query {id} never arrived (the workload has ids 0..{})",
                    cli.queries
                )),
            }
        }
        "serve" => {
            let method = cli.method.clone().ok_or_else(|| "--method is required".to_string())?;
            let audit = shard_audit_writer(&cli)?;
            let recorder = arm_recorder(&cli, &sink);
            let report =
                serve_one(&mut ctx, &method, &cli, 1.0, &sink, audit.clone(), recorder.clone())?;
            print_report(&method, &report, cli.virtual_clock);
            print_planning(&sink);
            finish_streamed_audit(&mut cli, &audit)?;
            export_telemetry(
                &cli,
                &sink,
                &method,
                report.metrics.executors.len(),
                Some(report.sim_secs),
                Some(&report.metrics),
            )?;
            export_obs(&cli, &mut ctx, &method, &sink)?;
            finish_recorder(&cli, &recorder)?;
            check_not_wedged(&report)
        }
        "loadtest" => {
            let method = cli.method.clone().ok_or_else(|| "--method is required".to_string())?;
            let trace = cli.trace.clone().unwrap_or_else(|| "one-day".to_string());
            println!(
                "loadtest: replaying the {trace} trace ({} queries) through '{method}'",
                cli.queries
            );
            let audit = shard_audit_writer(&cli)?;
            let recorder = arm_recorder(&cli, &sink);
            let report =
                serve_one(&mut ctx, &method, &cli, 20.0, &sink, audit.clone(), recorder.clone())?;
            print_report(&method, &report, cli.virtual_clock);
            print_planning(&sink);
            finish_streamed_audit(&mut cli, &audit)?;
            export_telemetry(
                &cli,
                &sink,
                &method,
                report.metrics.executors.len(),
                Some(report.sim_secs),
                Some(&report.metrics),
            )?;
            export_obs(&cli, &mut ctx, &method, &sink)?;
            finish_recorder(&cli, &recorder)?;
            // Cross-check against the *fault-free* discrete-event simulator
            // on the same seeded trace: without faults and under
            // --virtual-clock the counts must coincide exactly; in
            // wall-clock mode small timing drift is expected; under a fault
            // plan the gap vs the clean reference IS the measurement.
            // The reference run gets a disabled sink so the exports above
            // describe only the runtime run.
            let des = run_one(&mut ctx, &method, &cli, &TraceSink::disabled())?;
            print_summary("des-reference", &des);
            let missed = |s: &RunSummary| {
                s.records()
                    .iter()
                    .filter(|r| matches!(r.outcome, schemble::metrics::QueryOutcome::Missed))
                    .count()
            };
            let (sa, sm) =
                (report.summary.len() - missed(&report.summary), missed(&report.summary));
            let (da, dm) = (des.len() - missed(&des), missed(&des));
            let (faults, failure) = fault_setup(&cli)?;
            if faults.is_some() || failure.is_some() {
                println!(
                    "  under faults vs clean DES: acc {:+.1} pp, dmr {:+.1} pp, p95 {:+.3}s, \
                     {} degraded answers",
                    100.0 * (report.summary.accuracy() - des.accuracy()),
                    100.0 * (report.summary.deadline_miss_rate() - des.deadline_miss_rate()),
                    report.summary.latency_stats().p95 - des.latency_stats().p95,
                    report.stats.degraded,
                );
            } else {
                let verdict = if (sa, sm) == (da, dm) {
                    "consistent"
                } else if cli.virtual_clock {
                    "MISMATCH"
                } else {
                    "drift (expected under wall clock)"
                };
                println!(
                    "  runtime vs DES: accepted {sa} vs {da}, missed {sm} vs {dm} -> {verdict}"
                );
            }
            check_not_wedged(&report)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
