//! # Schemble
//!
//! A from-scratch Rust reproduction of **"Efficient Deep Ensemble Inference
//! via Query Difficulty-dependent Task Scheduling"** (ICDE 2023).
//!
//! Schemble serves deep-ensemble inference under per-query deadlines by
//! splitting each ensemble inference into per-base-model tasks, predicting
//! each query's *difficulty* (discrepancy score), and scheduling the tasks
//! with a quantized dynamic-programming algorithm over the query buffer.
//!
//! This umbrella crate re-exports the workspace crates under stable paths:
//!
//! * [`tensor`] — dense linear algebra + probability distances.
//! * [`nn`] — from-scratch neural networks (the discrepancy predictor).
//! * [`sim`] — deterministic discrete-event simulation engine.
//! * [`models`] — synthetic base models, ensembles and aggregation.
//! * [`data`] — sample generators, difficulty distributions, arrival traces.
//! * [`core`] — discrepancy score, profiling, DP scheduler, pipelines.
//! * [`baselines`] — DES and gating-network selection baselines.
//! * [`serve`] — wall-clock multi-threaded serving runtime (worker threads,
//!   trace-replay load generator, live re-planning scheduler loop).
//! * [`metrics`] — accuracy / deadline-miss-rate / latency evaluation.
//! * [`trace`] — query lifecycle tracing, scheduler audit log, and the
//!   Chrome-trace / Prometheus / NDJSON exporters.
//! * [`obs`] — live introspection: windowed SLO time-series, per-query plan
//!   explainability, drift detectors and the post-mortem flight recorder.
//!
//! ## Quickstart
//!
//! ```
//! use schemble::core::experiment::{ExperimentConfig, PipelineKind, run_pipeline};
//! use schemble::data::task::TaskKind;
//!
//! let cfg = ExperimentConfig::small(TaskKind::TextMatching, 42);
//! let outcome = run_pipeline(&cfg, PipelineKind::Schemble);
//! println!("accuracy={:.3} dmr={:.3}", outcome.accuracy(), outcome.deadline_miss_rate());
//! ```

pub use schemble_baselines as baselines;
pub use schemble_core as core;
pub use schemble_data as data;
pub use schemble_metrics as metrics;
pub use schemble_models as models;
pub use schemble_nn as nn;
pub use schemble_obs as obs;
pub use schemble_serve as serve;
pub use schemble_sim as sim;
pub use schemble_tensor as tensor;
pub use schemble_trace as trace;
