//! Full serving run with a *stacking* aggregation module and KNN
//! missing-value filling — the §VII pipeline variant, end to end.

use schemble::core::discrepancy::{DifficultyMetric, DiscrepancyScorer};
use schemble::core::filling::KnnFiller;
use schemble::core::pipeline::schemble::{run_schemble, SchembleConfig};
use schemble::core::pipeline::ResultAssembler;
use schemble::core::predictor::OnlineScorer;
use schemble::core::profiling::AccuracyProfile;
use schemble::core::scheduler::DpScheduler;
use schemble::data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};
use schemble::models::aggregate::train_stacking_meta;
use schemble::models::{Aggregator, Label};
use schemble::sim::rng::stream_rng;

#[test]
fn stacking_with_knn_filling_serves_under_load() {
    let task = TaskKind::TextMatching;
    let base = task.ensemble(1);
    let gen = task.default_generator(1);

    // Train the meta-classifier on full historical output files.
    let history = gen.batch(1 << 44, 800);
    let mut rng = stream_rng(1, "stacking-pipeline");
    let rows: Vec<Vec<f64>> = history
        .iter()
        .map(|s| base.infer_all(s).iter().flat_map(|o| o.as_vec()).collect())
        .collect();
    let labels: Vec<Label> = history.iter().map(|s| s.label).collect();
    let meta = train_stacking_meta(&rows, &labels, &base.spec, &mut rng);
    let mut ensemble = base.clone();
    ensemble.aggregator = Aggregator::Stacking { meta };

    // Artifacts trained against the stacking ensemble (its outputs are the
    // ground truth the profile measures against). Profiling subsets of a
    // stacking ensemble needs the KNN filler, so the profile is fitted with
    // an explicit assembler.
    let filler = KnnFiller::fit(&ensemble, &history, 10);
    let assembler_for_profile = ResultAssembler::KnnFill(filler.clone());
    let scorer = DiscrepancyScorer::fit(&ensemble, &history, DifficultyMetric::Discrepancy);
    let scores = scorer.score_batch(&ensemble, &history);
    let profile = AccuracyProfile::fit_with_assembler(
        &ensemble,
        &history,
        &scores,
        8,
        ensemble.m(),
        &assembler_for_profile,
    );
    let predictor =
        schemble::core::predictor::train_score_predictor(&ensemble, &history, &scores, &mut rng);

    let workload = Workload::generate(
        &gen,
        &PoissonTrace { rate_per_sec: 45.0, n: 600 },
        &DeadlinePolicy::constant_millis(120.0),
        7,
    );
    let mut config = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(predictor),
        profile,
    );
    config.assembler = ResultAssembler::KnnFill(filler);
    let summary = run_schemble(&ensemble, &config, &workload, 3);

    assert_eq!(summary.len(), 600);
    assert!(
        summary.accuracy() > 0.75,
        "stacking+KNN pipeline accuracy collapsed: {:.3}",
        summary.accuracy()
    );
    assert!(
        summary.deadline_miss_rate() < 0.2,
        "stacking+KNN pipeline missing too many deadlines: {:.3}",
        summary.deadline_miss_rate()
    );
    // Partial sets actually occurred (the filler was exercised).
    assert!(
        summary.mean_models_used() < 2.9,
        "under 45 qps some queries must run subsets, got {:.2}",
        summary.mean_models_used()
    );
}
