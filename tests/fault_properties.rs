//! Properties of fault injection and degradation.
//!
//! 1. **Cross-backend determinism**: under any seeded [`FaultPlan`], a DES
//!    run and a virtual-clock serve run make byte-identical decisions and
//!    emit byte-identical traces (the serve runtime honours faults through
//!    the exact same `SimBackend` path).
//! 2. **Conservation**: faults never lose queries — submitted is always
//!    partitioned by completed + degraded + rejected + expired.
//! 3. **Decision neutrality**: a no-op plan (and a `None` policy) leaves
//!    every record identical to a fault-unaware run.

use proptest::prelude::*;
use schemble::core::engine::FailurePolicy;
use schemble::core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble::core::pipeline::schemble::{run_schemble, run_schemble_faulted, SchembleConfig};
use schemble::core::predictor::OnlineScorer;
use schemble::core::scheduler::DpScheduler;
use schemble::data::TaskKind;
use schemble::serve::{serve_schemble, ClockMode, ServeConfig};
use schemble::sim::{CrashWindow, FaultPlan, SimTime, StragglerEpisode};
use schemble::trace::TraceSink;
use std::sync::Arc;

fn context(seed: u64, n_queries: usize) -> ExperimentContext {
    let mut config = ExperimentConfig::small(TaskKind::TextMatching, seed);
    config.n_queries = n_queries;
    config.traffic = Traffic::Poisson { rate_per_sec: 30.0 };
    ExperimentContext::new(config)
}

fn pipeline(ctx: &mut ExperimentContext, failure: Option<FailurePolicy>) -> SchembleConfig {
    let art = ctx.artifacts().clone();
    let mut config = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    config.admission = ctx.config.admission;
    config.failure = failure;
    config
}

proptest! {
    // Each case runs two full pipelines; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded plan: DES and virtual-clock serve agree byte-for-byte,
    /// and conservation (including degraded answers) holds in both.
    #[test]
    fn faulted_des_and_virtual_serve_stay_byte_identical(
        seed in 0u64..500,
        crash_exec in 0usize..3,
        crash_from in 0.2f64..4.0,
        crash_len in 0.2f64..3.0,
        strag_exec in 0usize..3,
        strag_from in 0.0f64..4.0,
        strag_len in 0.5f64..4.0,
        strag_mult in 1.5f64..8.0,
        transient in 0.0f64..0.08,
        use_timeout in proptest::bool::ANY,
    ) {
        let mut plan = FaultPlan::default();
        plan.crashes.push(CrashWindow {
            executor: crash_exec,
            from: SimTime::from_secs_f64(crash_from),
            until: SimTime::from_secs_f64(crash_from + crash_len),
        });
        plan.stragglers.push(StragglerEpisode {
            executor: strag_exec,
            from: SimTime::from_secs_f64(strag_from),
            until: SimTime::from_secs_f64(strag_from + strag_len),
            multiplier: strag_mult,
        });
        plan.transient_p = transient;
        if use_timeout {
            plan.timeout_quantile = Some(0.95);
        }

        let mut ctx = context(seed, 120);
        let workload = ctx.workload();
        let root = ctx.config.seed;

        let des_sink = TraceSink::enabled();
        let des_config = pipeline(&mut ctx, Some(FailurePolicy::default()));
        let des = run_schemble_faulted(
            &ctx.ensemble, &des_config, &workload, root, Arc::clone(&des_sink), Some(&plan),
        );

        let serve_sink = TraceSink::enabled();
        let serve_config = pipeline(&mut ctx, Some(FailurePolicy::default()));
        let scfg = ServeConfig {
            mode: ClockMode::Virtual,
            trace: Some(Arc::clone(&serve_sink)),
            faults: Some(plan.clone()),
            ..ServeConfig::default()
        };
        let report = serve_schemble(&ctx.ensemble, &serve_config, &workload, root, &scfg);

        prop_assert_eq!(
            report.summary.records(),
            des.records(),
            "faulted virtual serve must reproduce the faulted DES decisions"
        );
        prop_assert_eq!(
            serve_sink.snapshot(),
            des_sink.snapshot(),
            "fault traces must be byte-identical across backends"
        );
        let s = &report.stats;
        prop_assert_eq!(s.submitted, workload.len() as u64);
        prop_assert_eq!(
            s.submitted,
            s.completed + s.degraded + s.rejected + s.expired,
            "conservation with degradation"
        );
        prop_assert_eq!(s.open(), 0, "no query left open under faults");
        prop_assert_eq!(s.tasks_retried <= s.tasks_failed, true, "retries never exceed failures");
    }
}

/// A no-op plan plus an explicit policy that never fires must not change a
/// single record relative to the plain fault-unaware pipeline.
#[test]
fn noop_plan_is_decision_neutral() {
    let mut ctx = context(42, 200);
    let workload = ctx.workload();
    let root = ctx.config.seed;

    let plain_config = pipeline(&mut ctx, None);
    let plain = run_schemble(&ctx.ensemble, &plain_config, &workload, root);

    let noop_config = pipeline(&mut ctx, None);
    let noop = run_schemble_faulted(
        &ctx.ensemble,
        &noop_config,
        &workload,
        root,
        TraceSink::disabled(),
        Some(&FaultPlan::default()),
    );
    assert_eq!(plain.records(), noop.records(), "a no-op plan must change nothing");
}

/// Wall-clock smoke under a crash + straggler + transient plan: the threaded
/// runtime terminates, conserves queries, and reports fault activity.
#[test]
fn wall_clock_faulted_run_conserves_and_terminates() {
    let plan =
        FaultPlan::parse("crash 1 0.5 2.0\nstraggle 0 0.5 3.0 5.0\ntransient 0.05\ntimeout-q 0.95")
            .expect("plan parses");
    let mut ctx = context(7, 120);
    let workload = ctx.workload();
    let root = ctx.config.seed;
    let config = pipeline(&mut ctx, Some(FailurePolicy::default()));
    let scfg = ServeConfig {
        mode: ClockMode::Wall { dilation: 50.0 },
        faults: Some(plan),
        ..ServeConfig::default()
    };
    let report = serve_schemble(&ctx.ensemble, &config, &workload, root, &scfg);
    let s = &report.stats;
    assert_eq!(s.submitted, workload.len() as u64);
    assert_eq!(s.submitted, s.completed + s.degraded + s.rejected + s.expired);
    assert_eq!(s.open(), 0, "no wedged queries under faults");
    assert!(s.tasks_failed > 0, "the plan must actually inject failures");
}
