//! End-to-end tests for the introspection layer (`schemble-obs`).
//!
//! The contract under test: (1) the obs exports — SLO time-series NDJSON
//! and the introspection Prometheus exposition — are *byte-identical*
//! between a DES run and a virtual-clock serve run of the same seeded
//! trace, because both are pure folds over the same event stream; (2) a
//! sharded virtual-clock run's exports are invariant to thread
//! interleaving (proptested over shard counts and seeds); (3) the plan
//! explainer reconstructs a coherent causal timeline for any traced
//! query; (4) a flight recorder tapped into a faulted serve run trips and
//! dumps well-formed JSON.

use proptest::prelude::*;
use schemble::core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble::core::pipeline::schemble::{run_schemble_traced, SchembleConfig};
use schemble::core::predictor::OnlineScorer;
use schemble::core::scheduler::DpScheduler;
use schemble::data::TaskKind;
use schemble::obs::{explain_query, FlightRecorder, ObsConfig, ObsState, Outcome, TripReason};
use schemble::serve::{serve_schemble, ClockMode, ServeConfig};
use schemble::sim::{FaultPlan, SimDuration};
use schemble::trace::{json, TraceEvent, TraceSink};
use std::sync::Arc;

fn context(seed: u64, n_queries: usize) -> ExperimentContext {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, seed);
    config.n_queries = n_queries;
    config.traffic = Traffic::Diurnal { day_secs: n_queries as f64 / 15.0 };
    ExperimentContext::new(config)
}

fn schemble_config(ctx: &mut ExperimentContext) -> SchembleConfig {
    let art = ctx.artifacts().clone();
    let mut config = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    config.admission = ctx.config.admission;
    config
}

fn obs_config(ctx: &mut ExperimentContext) -> ObsConfig {
    ObsConfig {
        window: SimDuration::from_millis(1000),
        bins: ctx.artifacts().profile.bins(),
        profiled_latencies_us: ctx
            .ensemble
            .planned_latencies()
            .iter()
            .map(|d| d.as_micros())
            .collect(),
        ..ObsConfig::default()
    }
}

/// Both obs exports from one event stream.
fn exports(cfg: &ObsConfig, events: &[TraceEvent]) -> (String, String) {
    let state = ObsState::fold(cfg, events);
    (state.slo_ndjson(), state.prometheus())
}

#[test]
fn obs_exports_are_byte_identical_between_des_and_virtual_serve() {
    let mut ctx = context(42, 400);
    let workload = ctx.workload();
    let seed = ctx.config.seed;
    let ocfg = obs_config(&mut ctx);

    let des_sink = TraceSink::enabled();
    let des_cfg = schemble_config(&mut ctx);
    run_schemble_traced(&ctx.ensemble, &des_cfg, &workload, seed, Arc::clone(&des_sink));

    let serve_sink = TraceSink::enabled();
    let serve_cfg = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&serve_sink)),
        ..ServeConfig::default()
    };
    let pipeline = schemble_config(&mut ctx);
    serve_schemble(&ctx.ensemble, &pipeline, &workload, seed, &serve_cfg);

    let (des_slo, des_prom) = exports(&ocfg, &des_sink.snapshot());
    let (srv_slo, srv_prom) = exports(&ocfg, &serve_sink.snapshot());
    assert!(!des_slo.is_empty() && !des_prom.is_empty());
    json::validate_ndjson(&des_slo).expect("well-formed SLO NDJSON");
    assert_eq!(des_slo, srv_slo, "SLO NDJSON must not depend on the backend");
    assert_eq!(des_prom, srv_prom, "obs Prometheus must not depend on the backend");
    assert!(
        des_prom.contains("schemble_obs_drift_pairs_total"),
        "the calibration detector saw predicted/realized pairs"
    );
}

#[test]
fn explainer_reconstructs_a_coherent_timeline() {
    let mut ctx = context(42, 300);
    let workload = ctx.workload();
    let seed = ctx.config.seed;
    let sink = TraceSink::enabled();
    let cfg = schemble_config(&mut ctx);
    let summary = run_schemble_traced(&ctx.ensemble, &cfg, &workload, seed, Arc::clone(&sink));
    let events = sink.snapshot();

    let mut explained = 0usize;
    for record in summary.records() {
        let Some(ex) = explain_query(&events, record.id) else {
            panic!("query {} arrived but has no explanation", record.id);
        };
        assert_eq!(ex.query, record.id);
        if matches!(ex.outcome, Outcome::Completed { .. } | Outcome::Degraded { .. }) {
            assert!(!ex.assigns.is_empty(), "resolved query {} was never planned", record.id);
            for plan in &ex.assigns {
                assert!(plan.frontier >= 1, "a DP plan visits at least one frontier layer");
            }
        }
        assert!(!matches!(ex.outcome, Outcome::Open), "run finished; nothing stays open");
        let text = ex.render();
        assert!(text.starts_with(&format!("query {}\n", record.id)));
        explained += 1;
    }
    assert_eq!(explained, summary.len());
}

#[test]
fn tapped_flight_recorder_trips_on_expiry_storm_and_dumps_valid_json() {
    let mut ctx = context(42, 200);
    let workload = ctx.workload();
    let seed = ctx.config.seed;
    // Every executor dark for the whole run: admitted queries can only
    // expire, so a threshold of 1 must trip the recorder.
    let faults = FaultPlan::parse("crash 0 0.0 1e9\ncrash 1 0.0 1e9\ncrash 2 0.0 1e9").unwrap();
    let recorder = Arc::new(FlightRecorder::new(256, Some(1)));
    let sink = TraceSink::disabled();
    sink.set_tap(Some(recorder.clone()));
    let serve_cfg = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        faults: Some(faults),
        failure: Some(Default::default()),
        recorder: Some(recorder.clone()),
        ..ServeConfig::default()
    };
    let pipeline = schemble_config(&mut ctx);
    serve_schemble(&ctx.ensemble, &pipeline, &workload, seed, &serve_cfg);

    assert_eq!(recorder.tripped(), Some(TripReason::SloBreach));
    let dump = recorder.dump_json();
    json::validate(&dump).expect("schema-valid flight-recorder dump");
    assert!(dump.contains("\"reason\":\"slo-breach\""));
    assert!(!recorder.events().is_empty(), "the ring retained the events leading to the trip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A sharded virtual-clock run's obs exports are a deterministic
    /// function of (seed, shards): re-running the same configuration —
    /// with shard threads racing differently — reproduces them byte for
    /// byte, and dropping the whole stream through the fold twice is a
    /// no-op.
    #[test]
    fn sharded_obs_exports_are_invariant_to_interleaving(
        seed in 1u64..1000,
        shards in 2usize..=4,
    ) {
        let mut config = ExperimentConfig::small(TaskKind::TextMatching, seed);
        config.n_queries = 120;
        config.traffic = Traffic::Poisson { rate_per_sec: 40.0 };
        let mut ctx = ExperimentContext::new(config);
        let workload = ctx.workload();
        let seed = ctx.config.seed;
        let ocfg = obs_config(&mut ctx);
        let pipeline = schemble_config(&mut ctx);

        let run = || {
            let sink = TraceSink::enabled();
            let serve_cfg = ServeConfig {
                mode: ClockMode::Virtual,
                trace: Some(Arc::clone(&sink)),
                shards,
                ..ServeConfig::default()
            };
            serve_schemble(&ctx.ensemble, &pipeline, &workload, seed, &serve_cfg);
            exports(&ocfg, &sink.snapshot())
        };
        let (slo_a, prom_a) = run();
        let (slo_b, prom_b) = run();
        prop_assert!(!slo_a.is_empty());
        prop_assert_eq!(slo_a, slo_b);
        prop_assert_eq!(prom_a, prom_b);
    }
}
