//! Property-based tests of the serving pipelines and difficulty machinery.

use proptest::prelude::*;
use schemble::core::artifacts::SchembleArtifacts;
use schemble::core::discrepancy::{DifficultyMetric, DiscrepancyScorer};
use schemble::core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble::data::TaskKind;
use schemble::models::{DifficultyDist, ModelSet, SampleGenerator};

proptest! {
    // Pipeline runs are expensive; keep the case counts small but varied.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the seed, rate and deadline, the Schemble pipeline conserves
    /// queries and keeps its metrics in range.
    #[test]
    fn pipeline_invariants_hold_for_any_seed(
        seed in 0u64..1000,
        rate in 10.0f64..60.0,
        deadline_ms in 60.0f64..200.0,
    ) {
        let mut config = ExperimentConfig::small(TaskKind::TextMatching, seed);
        config.n_queries = 120;
        config.traffic = Traffic::Poisson { rate_per_sec: rate };
        let config = config.with_deadline_millis(deadline_ms);
        let mut ctx = ExperimentContext::new(config);
        let workload = ctx.workload();
        let summary = ctx.run(PipelineKind::Schemble, &workload);
        prop_assert_eq!(summary.len(), workload.len());
        prop_assert!((0.0..=1.0).contains(&summary.accuracy()));
        prop_assert!((0.0..=1.0).contains(&summary.deadline_miss_rate()));
        prop_assert!(summary.mean_models_used() <= 3.0 + 1e-9);
        // Accuracy can never exceed the deadline-hit share.
        prop_assert!(summary.accuracy() <= 1.0 - summary.deadline_miss_rate() + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Discrepancy scores are in [0,1] for arbitrary ensemble seeds and
    /// difficulty laws.
    #[test]
    fn discrepancy_scores_stay_in_unit_interval(
        ens_seed in 0u64..500,
        gen_seed in 0u64..500,
        easy in proptest::bool::ANY,
    ) {
        let ens = TaskKind::TextMatching.ensemble(ens_seed);
        let dist = if easy {
            DifficultyDist::EasySkewed { exponent: 2.5 }
        } else {
            DifficultyDist::Uniform
        };
        let gen = SampleGenerator::new(ens.spec, dist, gen_seed);
        let history = gen.batch(0, 150);
        let scorer = DiscrepancyScorer::fit(&ens, &history, DifficultyMetric::Discrepancy);
        for s in gen.batch(10_000, 50) {
            let v = scorer.score(&ens, &s);
            prop_assert!((0.0..=1.0).contains(&v), "score {} out of range", v);
        }
    }

    /// The profiled utility table is monotone in set inclusion for any seed.
    #[test]
    fn profile_monotonicity_for_any_seed(seed in 0u64..300) {
        let ens = TaskKind::TextMatching.ensemble(seed);
        let gen = TaskKind::TextMatching.default_generator(seed);
        let art = SchembleArtifacts::build(
            &ens, &gen, 300, 6, DifficultyMetric::Discrepancy, seed,
        );
        for b in 0..6 {
            let score = (b as f64 + 0.5) / 6.0;
            for set in ModelSet::all_nonempty(ens.m()) {
                for k in 0..ens.m() {
                    if !set.contains(k) {
                        prop_assert!(
                            art.profile.utility(score, set.with(k))
                                >= art.profile.utility(score, set) - 1e-12
                        );
                    }
                }
            }
        }
    }
}
