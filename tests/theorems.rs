//! Executable checks of the paper's theorems on randomly generated
//! instances.
//!
//! * **Theorem 1** (consistent order WLOG): for any feasible plan with
//!   per-model orders, there is a consistent-order plan at least as good —
//!   checked by comparing the best inconsistent schedule against the best
//!   consistent one by exhaustive search.
//! * **Theorem 2** (EDF optimality for fixed feasible sets): if some
//!   consistent order completes every query by its deadline, EDF does.
//! * **Theorem 3** ((1−ε)-approximation): the quantized DP with δ = ε/N is
//!   within (1−ε) of the exact optimum.

use rand::Rng;
use schemble::core::scheduler::brute::optimal_plan;
use schemble::core::scheduler::{
    BufferedQuery, DpScheduler, ScheduleInput, SchedulePlan, Scheduler,
};
use schemble::models::ModelSet;
use schemble::sim::rng::stream_rng;
use schemble::sim::{SimDuration, SimTime};

/// Deterministic random instance with monotone utility vectors.
fn instance(seed: u64, n: usize, m: usize, tight: bool) -> ScheduleInput {
    let mut rng = stream_rng(seed, "theorem-instance");
    let latencies: Vec<SimDuration> =
        (0..m).map(|_| SimDuration::from_millis(rng.random_range(5..35))).collect();
    let queries = (0..n as u64)
        .map(|id| {
            let mut utilities = vec![0.0; 1 << m];
            for set in ModelSet::all_nonempty(m) {
                let best: f64 = set
                    .iter()
                    .map(|k| 0.4 + 0.15 * k as f64 + rng.random_range(0.0..0.1))
                    .fold(0.0, f64::max);
                utilities[set.0 as usize] = (best + 0.05 * set.len() as f64).min(1.0);
            }
            // Monotone repair.
            let mut masks: Vec<u32> = (1..(1u32 << m)).collect();
            masks.sort_by_key(|s| s.count_ones());
            for &mask in &masks {
                let set = ModelSet(mask);
                for k in set.iter() {
                    let sub = set.without(k);
                    if !sub.is_empty() {
                        utilities[mask as usize] =
                            utilities[mask as usize].max(utilities[sub.0 as usize]);
                    }
                }
            }
            let horizon = if tight { 20..60 } else { 40..150 };
            BufferedQuery {
                id,
                arrival: SimTime::from_millis(id),
                deadline: SimTime::from_millis(rng.random_range(horizon)),
                utilities,
                score: rng.random_range(0.0..1.0),
            }
        })
        .collect();
    ScheduleInput { now: SimTime::ZERO, availability: vec![SimTime::ZERO; m], latencies, queries }
}

/// Simulates fixed sets under an arbitrary *consistent* query order; returns
/// per-query completions.
fn completions_under_order(
    input: &ScheduleInput,
    sets: &[ModelSet],
    order: &[usize],
) -> Vec<Option<SimTime>> {
    let plan =
        SchedulePlan { assignments: sets.to_vec(), order: order.to_vec(), work: 0, frontier: 0 };
    input.completions(&plan)
}

/// All permutations of 0..n (n small).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(prefix: &mut Vec<usize>, remaining: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..remaining.len() {
            let x = remaining.remove(i);
            prefix.push(x);
            go(prefix, remaining, out);
            prefix.pop();
            remaining.insert(i, x);
        }
    }
    let mut out = Vec::new();
    go(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

#[test]
fn theorem2_edf_feasible_whenever_any_order_is() {
    for seed in 0..60u64 {
        let input = instance(seed, 4, 2, true);
        // Fix sets: the best-utility singleton per query (always feasible
        // candidates exist or not — we just compare orders).
        let sets: Vec<ModelSet> = input
            .queries
            .iter()
            .map(|q| {
                let mut best = ModelSet::singleton(0);
                for k in 1..input.m() {
                    if q.utilities[ModelSet::singleton(k).0 as usize] > q.utilities[best.0 as usize]
                    {
                        best = ModelSet::singleton(k);
                    }
                }
                best
            })
            .collect();
        let feasible_under = |order: &[usize]| {
            completions_under_order(&input, &sets, order)
                .iter()
                .zip(&input.queries)
                .all(|(c, q)| c.is_none_or(|t| t <= q.deadline))
        };
        let any_feasible = permutations(4).iter().any(|p| feasible_under(p));
        if any_feasible {
            assert!(
                feasible_under(&input.edf_order()),
                "seed {seed}: EDF infeasible although some order is feasible"
            );
        }
    }
}

#[test]
fn theorem1_consistent_order_suffices_for_the_dp() {
    // The DP searches only consistent orders; brute force over consistent
    // orders equals brute force over all per-model orders would be
    // exponential — instead we verify the DP never loses to *any*
    // consistent-order plan (exhaustive over orders and set choices for
    // tiny instances), which combined with Theorem 1 covers the claim.
    for seed in 0..12u64 {
        let input = instance(seed, 3, 2, true);
        let dp = DpScheduler { delta: 1e-4, max_frontier: 4096, max_queries: 8 }.plan(&input);
        let dp_utility = input.plan_utility(&dp);
        // Exhaustive: all set assignments × all query orders.
        let mut best = 0.0f64;
        let n_sets = 1usize << input.m();
        let n = input.queries.len();
        let mut assignment = vec![ModelSet::EMPTY; n];
        let mut stack = vec![0usize; n];
        loop {
            for (i, &s) in stack.iter().enumerate() {
                assignment[i] = ModelSet(s as u32);
            }
            for order in permutations(n) {
                let plan =
                    SchedulePlan { assignments: assignment.clone(), order, work: 0, frontier: 0 };
                if input.plan_is_feasible(&plan) {
                    best = best.max(input.plan_utility(&plan));
                }
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == n {
                    break;
                }
                stack[i] += 1;
                if stack[i] < n_sets {
                    break;
                }
                stack[i] = 0;
                i += 1;
            }
            if i == n {
                break;
            }
        }
        assert!(
            dp_utility >= best - 1e-6,
            "seed {seed}: dp {dp_utility:.4} below exhaustive optimum {best:.4}"
        );
    }
}

#[test]
fn theorem3_quantized_dp_is_one_minus_epsilon_approximate() {
    for seed in 0..25u64 {
        let input = instance(seed, 4, 2, false);
        let exact = optimal_plan(&input);
        let opt = input.plan_utility(&exact);
        if opt == 0.0 {
            continue;
        }
        for epsilon in [0.25, 0.1] {
            let delta = epsilon / input.queries.len() as f64;
            let dp = DpScheduler { delta, max_frontier: 8192, max_queries: 16 }.plan(&input);
            let got = input.plan_utility(&dp);
            assert!(
                got >= (1.0 - epsilon) * opt - 1e-9,
                "seed {seed} ε={epsilon}: {got:.4} < (1-ε)·{opt:.4}"
            );
            assert!(input.plan_is_feasible(&dp));
        }
    }
}

#[test]
fn quantization_never_admits_infeasible_plans() {
    // Even at absurdly coarse δ the plan must respect every deadline.
    for seed in 0..40u64 {
        let input = instance(seed, 6, 3, true);
        for delta in [0.5, 0.1, 0.01] {
            let plan = DpScheduler::with_delta(delta).plan(&input);
            assert!(input.plan_is_feasible(&plan), "seed {seed} δ={delta}");
        }
    }
}

/// **Theorem 4** (2m-competitiveness of the online algorithm): an online
/// scheduler that solves each local subproblem with Alg. 1 and commits
/// immediately collects at least `OPT / 2m`, where OPT is the clairvoyant
/// optimum. We upper-bound OPT by the relaxation that ignores arrival times
/// (every query available at t=0), which can only help the clairvoyant.
#[test]
fn theorem4_online_is_2m_competitive() {
    for seed in 100..140u64 {
        let input = instance(seed, 5, 2, true);
        let m = input.m();

        // Clairvoyant upper bound: brute force with all queries at t=0.
        let opt_ub = input.plan_utility(&optimal_plan(&input));

        // Online: queries become visible at their arrival instants; at each
        // arrival the DP plans the pending buffer against current
        // availability and commits its assignments.
        let mut availability = vec![SimTime::ZERO; m];
        let mut pending: Vec<usize> = Vec::new();
        let mut collected = 0.0f64;
        let mut arrivals: Vec<usize> = (0..input.queries.len()).collect();
        arrivals.sort_by_key(|&i| input.queries[i].arrival);
        for qi in arrivals {
            pending.push(qi);
            let now = input.queries[qi].arrival;
            let local = ScheduleInput {
                now,
                availability: availability.clone(),
                latencies: input.latencies.clone(),
                queries: pending.iter().map(|&i| input.queries[i].clone()).collect(),
            };
            let plan =
                DpScheduler { delta: 1e-3, max_frontier: 2048, max_queries: 16 }.plan(&local);
            // Commit in EDF order.
            let mut still_pending = Vec::new();
            for &pos in &plan.order {
                let original = pending[pos];
                let set = plan.assignments[pos];
                if set.is_empty() {
                    still_pending.push(original);
                    continue;
                }
                for k in set.iter() {
                    availability[k] = availability[k].max(now) + local.latencies[k];
                }
                collected += input.queries[original].utilities[set.0 as usize];
            }
            // Drop pending queries that can no longer fit anything (their
            // deadline passed the fastest completion) — they expire.
            still_pending.retain(|&i| {
                let q = &input.queries[i];
                (0..m).any(|k| availability[k].max(now) + input.latencies[k] <= q.deadline)
            });
            pending = still_pending;
        }

        let bound = opt_ub / (2.0 * m as f64);
        assert!(
            collected >= bound - 1e-9,
            "seed {seed}: online {collected:.3} below OPT/2m = {bound:.3} (OPT ≤ {opt_ub:.3})"
        );
    }
}
