//! Property-based tests (proptest) of the scheduler stack and core
//! invariants.

use proptest::prelude::*;
use schemble::core::scheduler::{
    BufferedQuery, DpScheduler, GreedyScheduler, QueueOrder, ScheduleInput, Scheduler,
};
use schemble::models::ModelSet;
use schemble::sim::{SimDuration, SimTime};
use schemble::tensor::dist::{euclidean, js_divergence, symmetric_kl};
use schemble::tensor::prob::softmax;

/// Strategy: a scheduling instance with monotone utilities.
fn arb_instance() -> impl Strategy<Value = ScheduleInput> {
    (2usize..=3, 1usize..=6, any::<u64>()).prop_flat_map(|(m, n, seed)| {
        let lat = proptest::collection::vec(5u64..40, m);
        let deadlines = proptest::collection::vec(15u64..150, n);
        let bases = proptest::collection::vec(0.3f64..0.9, n);
        (lat, deadlines, bases, Just(m), Just(seed)).prop_map(
            |(lat, deadlines, bases, m, _seed)| {
                let queries = deadlines
                    .iter()
                    .zip(&bases)
                    .enumerate()
                    .map(|(id, (&d, &base))| {
                        let mut utilities = vec![0.0; 1 << m];
                        let mut masks: Vec<u32> = (1..(1u32 << m)).collect();
                        masks.sort_by_key(|s| s.count_ones());
                        for &mask in &masks {
                            let set = ModelSet(mask);
                            // base + diminishing bonus per extra model.
                            let v = (base + 0.1 * (set.len() as f64 - 1.0)).min(1.0);
                            let mut best = v;
                            for k in set.iter() {
                                let sub = set.without(k);
                                if !sub.is_empty() {
                                    best = best.max(utilities[sub.0 as usize]);
                                }
                            }
                            utilities[mask as usize] = best;
                        }
                        BufferedQuery {
                            id: id as u64,
                            arrival: SimTime::from_millis(id as u64),
                            deadline: SimTime::from_millis(d),
                            utilities,
                            score: base,
                        }
                    })
                    .collect();
                ScheduleInput {
                    now: SimTime::ZERO,
                    availability: vec![SimTime::ZERO; m],
                    latencies: lat.into_iter().map(SimDuration::from_millis).collect(),
                    queries,
                }
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DP never emits a plan that misses an accepted deadline.
    #[test]
    fn dp_plans_are_always_feasible(input in arb_instance()) {
        let plan = DpScheduler::default().plan(&input);
        prop_assert!(input.plan_is_feasible(&plan));
    }

    /// The DP's utility dominates every greedy variant on the same buffer.
    #[test]
    fn dp_dominates_greedy(input in arb_instance()) {
        let dp = DpScheduler { delta: 0.001, max_frontier: 4096, max_queries: 24 }
            .plan(&input);
        let dp_u = input.plan_utility(&dp);
        for order in [QueueOrder::Edf, QueueOrder::Fifo, QueueOrder::Sjf] {
            let greedy = GreedyScheduler::new(order).plan(&input);
            prop_assert!(input.plan_is_feasible(&greedy));
            prop_assert!(
                dp_u >= input.plan_utility(&greedy) - 1e-9,
                "dp {} < greedy({:?}) {}", dp_u, order, input.plan_utility(&greedy)
            );
        }
    }

    /// Scheduled sets are valid subsets and the order covers the buffer.
    #[test]
    fn plans_are_structurally_sound(input in arb_instance()) {
        let plan = DpScheduler::default().plan(&input);
        prop_assert_eq!(plan.assignments.len(), input.queries.len());
        let full = ModelSet::full(input.m());
        for set in &plan.assignments {
            prop_assert!(set.is_subset_of(full));
        }
        let mut seen: Vec<usize> = plan.order.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), plan.order.len(), "order must not repeat queries");
    }

    /// Finer quantization never yields a worse plan (scheduling cost aside).
    #[test]
    fn finer_delta_never_hurts_plan_quality(input in arb_instance()) {
        let coarse = DpScheduler::with_delta(0.2).plan(&input);
        let fine = DpScheduler::with_delta(0.002).plan(&input);
        prop_assert!(
            input.plan_utility(&fine) + 1e-9 >= input.plan_utility(&coarse)
        );
        // …and the dense-table cost model charges the finer run more.
        prop_assert!(fine.work >= coarse.work);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// JS divergence: symmetric, bounded by ln 2, zero iff inputs equal
    /// (over softmax-normalised vectors).
    #[test]
    fn js_properties(a in proptest::collection::vec(-5.0f64..5.0, 2..6)) {
        let p = softmax(&a);
        let q = softmax(&a.iter().rev().cloned().collect::<Vec<_>>());
        let d_pq = js_divergence(&p, &q);
        let d_qp = js_divergence(&q, &p);
        prop_assert!((d_pq - d_qp).abs() < 1e-12);
        prop_assert!((0.0..=std::f64::consts::LN_2 + 1e-12).contains(&d_pq));
        prop_assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    /// Symmetric KL is symmetric and non-negative.
    #[test]
    fn symmetric_kl_properties(a in proptest::collection::vec(-4.0f64..4.0, 2..5),
                               b in proptest::collection::vec(-4.0f64..4.0, 2..5)) {
        let n = a.len().min(b.len());
        let p = softmax(&a[..n]);
        let q = softmax(&b[..n]);
        prop_assert!((symmetric_kl(&p, &q) - symmetric_kl(&q, &p)).abs() < 1e-9);
        prop_assert!(symmetric_kl(&p, &q) >= -1e-12);
    }

    /// Euclidean distance satisfies the triangle inequality.
    #[test]
    fn euclidean_triangle(a in proptest::collection::vec(-10.0f64..10.0, 3),
                          b in proptest::collection::vec(-10.0f64..10.0, 3),
                          c in proptest::collection::vec(-10.0f64..10.0, 3)) {
        prop_assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-9);
    }
}
