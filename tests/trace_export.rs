//! End-to-end tests for the tracing subsystem and its exporters.
//!
//! The contract under test: (1) enabling tracing changes no scheduling
//! decision; (2) a DES run and a virtual-clock serve run on the same
//! seeded trace emit the *identical* event stream, so their audit logs and
//! Chrome traces are byte-equal; (3) every query round-trips through the
//! trace — one audit record per submitted query, every started task span
//! closed; (4) all three export formats are well-formed.

use schemble::core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble::core::pipeline::schemble::{run_schemble, run_schemble_traced, SchembleConfig};
use schemble::core::predictor::OnlineScorer;
use schemble::core::scheduler::DpScheduler;
use schemble::data::TaskKind;
use schemble::serve::{serve_schemble, ClockMode, ServeConfig};
use schemble::trace::{
    audit_ndjson, audit_records, chrome_trace, complete_task_spans, json, metrics_from_events,
    prometheus_text, TraceEvent, TraceSink,
};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

fn context(n_queries: usize) -> ExperimentContext {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = n_queries;
    config.traffic = Traffic::Diurnal { day_secs: n_queries as f64 / 15.0 };
    ExperimentContext::new(config)
}

fn schemble_config(ctx: &mut ExperimentContext) -> SchembleConfig {
    let art = ctx.artifacts().clone();
    let mut config = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    config.admission = ctx.config.admission;
    config
}

#[test]
fn tracing_changes_no_scheduling_decision() {
    let mut ctx = context(400);
    let workload = ctx.workload();
    let seed = ctx.config.seed;

    let untraced_cfg = schemble_config(&mut ctx);
    let untraced = run_schemble(&ctx.ensemble, &untraced_cfg, &workload, seed);

    let sink = TraceSink::enabled();
    let traced_cfg = schemble_config(&mut ctx);
    let traced =
        run_schemble_traced(&ctx.ensemble, &traced_cfg, &workload, seed, Arc::clone(&sink));

    assert_eq!(
        traced.records(),
        untraced.records(),
        "an enabled sink must not perturb any per-query decision"
    );
    assert!(!sink.is_empty(), "the traced run actually emitted events");
    assert_eq!(sink.dropped(), 0);
}

#[test]
fn des_and_virtual_serve_emit_identical_traces() {
    let mut ctx = context(400);
    let workload = ctx.workload();
    let seed = ctx.config.seed;
    let m = ctx.ensemble.m();

    let des_sink = TraceSink::enabled();
    let des_cfg = schemble_config(&mut ctx);
    let des = run_schemble_traced(&ctx.ensemble, &des_cfg, &workload, seed, Arc::clone(&des_sink));

    let serve_sink = TraceSink::enabled();
    let serve_cfg = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&serve_sink)),
        ..ServeConfig::default()
    };
    let runtime_cfg = schemble_config(&mut ctx);
    let report = serve_schemble(&ctx.ensemble, &runtime_cfg, &workload, seed, &serve_cfg);
    assert_eq!(report.summary.records(), des.records());

    let des_events = des_sink.drain();
    let serve_events = serve_sink.drain();
    assert_eq!(
        des_events, serve_events,
        "DES and virtual-clock serve must emit the identical event stream"
    );
    assert_eq!(
        audit_ndjson(&des_events),
        audit_ndjson(&serve_events),
        "audit decision sequences must match byte-for-byte"
    );
    assert_eq!(
        chrome_trace(&des_events, m, "schemble"),
        chrome_trace(&serve_events, m, "schemble")
    );
}

#[test]
fn serve_trace_round_trips_every_submitted_query() {
    let mut ctx = context(400);
    let workload = ctx.workload();
    let seed = ctx.config.seed;

    let sink = TraceSink::enabled();
    let serve_cfg = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        ..ServeConfig::default()
    };
    let cfg = schemble_config(&mut ctx);
    let report = serve_schemble(&ctx.ensemble, &cfg, &workload, seed, &serve_cfg);
    let events = sink.drain();

    // One audit record per submitted query, in query order.
    let records = audit_records(&events);
    assert_eq!(records.len() as u64, report.stats.submitted, "one audit record per query");
    for w in records.windows(2) {
        assert!(w[0].query < w[1].query, "audit records sorted by query id");
    }

    // Every started task closed its span.
    let starts = events.iter().filter(|e| matches!(e, TraceEvent::TaskStart { .. })).count() as u64;
    let spans: u64 = complete_task_spans(&events).values().map(|&n| n as u64).sum();
    assert_eq!(spans, starts, "every TaskStart has a matching TaskDone");
    assert_eq!(starts, report.metrics.counters.tasks_started.load(Relaxed));

    // Trace counters reproduce the runtime's live counters exactly.
    let derived = metrics_from_events(&events, report.metrics.executors.len());
    for (name, a, b) in [
        ("submitted", &derived.counters.submitted, &report.metrics.counters.submitted),
        ("completed", &derived.counters.completed, &report.metrics.counters.completed),
        ("rejected", &derived.counters.rejected, &report.metrics.counters.rejected),
        ("expired", &derived.counters.expired, &report.metrics.counters.expired),
        ("tasks_started", &derived.counters.tasks_started, &report.metrics.counters.tasks_started),
        (
            "tasks_completed",
            &derived.counters.tasks_completed,
            &report.metrics.counters.tasks_completed,
        ),
    ] {
        assert_eq!(a.load(Relaxed), b.load(Relaxed), "derived {name} diverges from live counter");
    }
    assert_eq!(derived.latency.count(), report.metrics.latency.count());
}

#[test]
fn exports_are_well_formed() {
    let mut ctx = context(300);
    let workload = ctx.workload();
    let seed = ctx.config.seed;
    let m = ctx.ensemble.m();

    let sink = TraceSink::enabled();
    let serve_cfg = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        ..ServeConfig::default()
    };
    let cfg = schemble_config(&mut ctx);
    let report = serve_schemble(&ctx.ensemble, &cfg, &workload, seed, &serve_cfg);
    let events = sink.drain();

    let chrome = chrome_trace(&events, m, "schemble");
    json::validate(&chrome).expect("Chrome trace must be valid JSON");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"name\":\"scheduler\""));

    let audit = audit_ndjson(&events);
    json::validate_ndjson(&audit).expect("audit log must be valid NDJSON");
    assert_eq!(audit.lines().count() as u64, report.stats.submitted);

    let prom = prometheus_text(&report.metrics, report.sim_secs, Some(&sink.planning));
    for family in [
        "schemble_queries_submitted_total",
        "schemble_queries_completed_total",
        "schemble_tasks_completed_total",
        "schemble_query_latency_seconds_bucket",
        "schemble_query_latency_seconds_sum",
        "schemble_sched_plans_total",
        "schemble_executor_utilization",
    ] {
        assert!(prom.contains(family), "metrics exposition missing {family}");
    }
    assert!(
        prom.contains(&format!("schemble_queries_submitted_total {}", report.stats.submitted)),
        "submitted counter must carry the run's value"
    );
    // Planning self-profile made it into the exposition with >= 1 plan.
    assert!(sink.planning.plans.load(Relaxed) > 0);
}
