//! End-to-end integration tests across all crates: full serving runs per
//! task, ordering claims from the paper's evaluation, and conservation
//! invariants of the simulation.

use schemble::baselines::{run_baseline, BaselineKind};
use schemble::core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble::core::pipeline::AdmissionMode;
use schemble::data::TaskKind;
use schemble::metrics::QueryOutcome;

fn small_ctx(task: TaskKind, n: usize) -> ExperimentContext {
    let mut config = ExperimentConfig::paper_default(task, 42);
    config.n_queries = n;
    if let Traffic::Diurnal { .. } = config.traffic {
        config.traffic = Traffic::Diurnal { day_secs: n as f64 / 15.0 };
    }
    ExperimentContext::new(config)
}

#[test]
fn schemble_beats_original_on_every_task() {
    for task in TaskKind::ALL {
        let mut ctx = small_ctx(task, 700);
        let workload = ctx.workload();
        let original = ctx.run(PipelineKind::Original, &workload);
        let schemble = ctx.run(PipelineKind::Schemble, &workload);
        assert!(
            schemble.accuracy() > original.accuracy() + 0.05,
            "{:?}: schemble {:.3} vs original {:.3}",
            task,
            schemble.accuracy(),
            original.accuracy()
        );
        assert!(
            schemble.deadline_miss_rate() < original.deadline_miss_rate(),
            "{:?}: schemble dmr {:.3} vs original {:.3}",
            task,
            schemble.deadline_miss_rate(),
            original.deadline_miss_rate()
        );
    }
}

#[test]
fn every_query_is_accounted_for_exactly_once() {
    // Conservation: each query ends Completed or Missed; completed queries
    // have a completion time and ≥1 model; missed have no completion unless
    // they finished late.
    let mut ctx = small_ctx(TaskKind::TextMatching, 600);
    let workload = ctx.workload();
    for kind in [PipelineKind::Original, PipelineKind::Schemble, PipelineKind::Static] {
        let summary = ctx.run(kind, &workload);
        assert_eq!(summary.len(), workload.len());
        for r in summary.records() {
            match r.outcome {
                QueryOutcome::Completed { .. } => {
                    assert!(r.completion.is_some());
                    assert!(r.models_used >= 1, "completed with zero models");
                }
                QueryOutcome::Missed => {
                    assert!(r.completion.is_none(), "missed outcome must not carry a completion");
                }
                QueryOutcome::Degraded { .. } => {
                    unreachable!("no faults injected: nothing may degrade")
                }
            }
        }
    }
}

#[test]
fn runs_are_fully_deterministic() {
    let mut ctx_a = small_ctx(TaskKind::VehicleCounting, 400);
    let mut ctx_b = small_ctx(TaskKind::VehicleCounting, 400);
    let wa = ctx_a.workload();
    let wb = ctx_b.workload();
    assert_eq!(wa.queries.len(), wb.queries.len());
    let a = ctx_a.run(PipelineKind::Schemble, &wa);
    let b = ctx_b.run(PipelineKind::Schemble, &wb);
    assert_eq!(a.records(), b.records());
}

#[test]
fn schemble_sheds_models_under_load_but_not_at_leisure() {
    let mut ctx = small_ctx(TaskKind::TextMatching, 800);
    let workload = ctx.workload();
    let loaded = ctx.run(PipelineKind::Schemble, &workload);

    let mut light = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    light.n_queries = 200;
    light.traffic = Traffic::Poisson { rate_per_sec: 2.0 };
    let mut light_ctx = ExperimentContext::new(light);
    let light_workload = light_ctx.workload();
    let idle = light_ctx.run(PipelineKind::Schemble, &light_workload);

    assert!(
        idle.mean_models_used() > loaded.mean_models_used() + 0.3,
        "light traffic should use more models: idle {:.2} vs loaded {:.2}",
        idle.mean_models_used(),
        loaded.mean_models_used()
    );
    assert!(idle.mean_models_used() > 2.5, "at leisure, run (nearly) everything");
}

#[test]
fn des_and_gating_sit_between_original_and_schemble() {
    let mut ctx = small_ctx(TaskKind::TextMatching, 700);
    let workload = ctx.workload();
    let original = ctx.run(PipelineKind::Original, &workload);
    let schemble = ctx.run(PipelineKind::Schemble, &workload);
    for kind in [BaselineKind::Des, BaselineKind::Gating] {
        let summary = run_baseline(
            kind,
            &ctx.ensemble,
            &ctx.generator,
            &workload,
            AdmissionMode::Reject,
            600,
            42,
        );
        assert!(
            summary.accuracy() < schemble.accuracy(),
            "{}: should trail Schemble",
            kind.label()
        );
        // Feature-based selection must at least not be catastrophically
        // worse than running everything.
        assert!(
            summary.accuracy() > original.accuracy() - 0.15,
            "{}: collapsed below Original by too much",
            kind.label()
        );
    }
}

#[test]
fn forced_mode_has_zero_loss_of_queries_and_sane_latency_ordering() {
    let mut ctx = small_ctx(TaskKind::TextMatching, 600);
    ctx.config.admission = AdmissionMode::ForceAll;
    let workload = ctx.workload();
    let original = ctx.run(PipelineKind::Original, &workload);
    let schemble = ctx.run(PipelineKind::Schemble, &workload);
    assert_eq!(original.completion_rate(), 1.0);
    assert_eq!(schemble.completion_rate(), 1.0);
    assert!(
        schemble.latency_stats().mean * 5.0 < original.latency_stats().mean,
        "forced-mode Schemble should be far faster: {:.3}s vs {:.3}s",
        schemble.latency_stats().mean,
        original.latency_stats().mean
    );
    assert!(
        schemble.processed_accuracy() > 0.9,
        "forced-mode accuracy loss too large: {:.3}",
        schemble.processed_accuracy()
    );
}

#[test]
fn oracle_scorer_upper_bounds_the_predictor_roughly() {
    let mut ctx = small_ctx(TaskKind::TextMatching, 700);
    let workload = ctx.workload();
    let predictor = ctx.run(PipelineKind::Schemble, &workload);
    let oracle = ctx.run(PipelineKind::SchembleOracle, &workload);
    // The oracle sees true scores; allow a small tolerance for queueing
    // noise but it must not be clearly worse.
    assert!(
        oracle.accuracy() > predictor.accuracy() - 0.03,
        "oracle {:.3} vs predictor {:.3}",
        oracle.accuracy(),
        predictor.accuracy()
    );
}

#[test]
fn usage_accounting_matches_the_serving_story() {
    let mut ctx = small_ctx(TaskKind::TextMatching, 800);
    let workload = ctx.workload();
    let span = workload.duration.as_secs_f64();

    // Original: every admitted query runs every model, so task counts are
    // identical across models and the slowest model is the most utilised.
    let original = ctx.run(PipelineKind::Original, &workload);
    let usage = original.usage();
    assert_eq!(usage.len(), 3);
    assert_eq!(usage[0].tasks, usage[1].tasks);
    assert_eq!(usage[1].tasks, usage[2].tasks);
    assert!(
        usage[2].utilisation(span) > usage[0].utilisation(span),
        "BERT (48ms) must be busier than BiLSTM (18ms) under Original"
    );

    // Schemble under burst shifts load toward the fast model: BiLSTM serves
    // more tasks than BERT.
    let schemble = ctx.run(PipelineKind::Schemble, &workload);
    let usage = schemble.usage();
    assert!(
        usage[0].tasks > usage[2].tasks,
        "Schemble should route more tasks to the fast model: BiLSTM {} vs BERT {}",
        usage[0].tasks,
        usage[2].tasks
    );
    for u in usage {
        let util = u.utilisation(span);
        assert!((0.0..=1.05).contains(&util), "{}: utilisation {util} out of range", u.name);
    }
}
