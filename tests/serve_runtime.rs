//! The serving runtime against the discrete-event simulator.
//!
//! Under `ClockMode::Virtual` the runtime drives the *same* engine over the
//! *same* `SimBackend` the DES pipelines use, so its admission decisions,
//! model sets and completion times must reproduce the DES run bit-for-bit
//! on the same seeded trace. A wall-clock smoke run then checks the
//! threaded runtime completes a replayed trace and conserves queries.

use schemble::core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble::core::pipeline::schemble::{run_schemble, SchembleConfig};
use schemble::core::pipeline::{
    run_immediate, AdmissionMode, Deployment, FullEnsemblePolicy, ResultAssembler,
};
use schemble::core::predictor::OnlineScorer;
use schemble::core::scheduler::DpScheduler;
use schemble::data::TaskKind;
use schemble::serve::{serve_immediate, serve_schemble, ClockMode, ServeConfig};

fn context(n_queries: usize) -> ExperimentContext {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = n_queries;
    config.traffic = Traffic::Diurnal { day_secs: n_queries as f64 / 15.0 };
    ExperimentContext::new(config)
}

fn schemble_config(ctx: &mut ExperimentContext) -> SchembleConfig {
    let art = ctx.artifacts().clone();
    let mut config = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    config.admission = ctx.config.admission;
    config
}

#[test]
fn virtual_clock_schemble_matches_des_pipeline() {
    let mut ctx = context(600);
    let workload = ctx.workload();
    let seed = ctx.config.seed;

    let des_config = schemble_config(&mut ctx);
    let des = run_schemble(&ctx.ensemble, &des_config, &workload, seed);

    let serve_cfg = ServeConfig { mode: ClockMode::Virtual, ..ServeConfig::default() };
    let runtime_config = schemble_config(&mut ctx);
    let report = serve_schemble(&ctx.ensemble, &runtime_config, &workload, seed, &serve_cfg);

    assert_eq!(
        report.summary.records(),
        des.records(),
        "virtual-clock runtime must reproduce the DES pipeline's per-query decisions"
    );
    assert_eq!(report.stats.submitted, workload.len() as u64);
    assert_eq!(report.stats.open(), 0, "no query left open after the run");
    // Busy-time accounting flows through the same ExecutorUsage path.
    for (a, b) in report.summary.usage().iter().zip(des.usage()) {
        assert!((a.busy_secs - b.busy_secs).abs() < 1e-9, "{} vs {}", a.busy_secs, b.busy_secs);
        assert_eq!(a.tasks, b.tasks);
    }
}

#[test]
fn virtual_clock_original_matches_des_pipeline() {
    let ctx = context(500);
    let workload = ctx.workload();
    let seed = ctx.config.seed;
    let m = ctx.ensemble.m();
    let deployment = Deployment::identity(m);

    let des = run_immediate(
        &ctx.ensemble,
        &deployment,
        &mut FullEnsemblePolicy,
        &ResultAssembler::Direct,
        &workload,
        AdmissionMode::Reject,
        seed,
    );

    let serve_cfg = ServeConfig { mode: ClockMode::Virtual, ..ServeConfig::default() };
    let report = serve_immediate(
        &ctx.ensemble,
        &deployment,
        &mut FullEnsemblePolicy,
        &ResultAssembler::Direct,
        AdmissionMode::Reject,
        &workload,
        seed,
        &serve_cfg,
    );

    assert_eq!(report.summary.records(), des.records());
    let s = &report.stats;
    assert_eq!(s.submitted, s.completed + s.rejected + s.expired);
}

#[test]
fn wall_clock_runtime_replays_a_trace_to_completion() {
    let mut ctx = context(200);
    let workload = ctx.workload();
    let seed = ctx.config.seed;
    let config = schemble_config(&mut ctx);

    // High dilation keeps the test fast; decisions may drift from the DES
    // under real timing, but conservation and termination must hold.
    let serve_cfg =
        ServeConfig { mode: ClockMode::Wall { dilation: 100.0 }, ..ServeConfig::default() };
    let report = serve_schemble(&ctx.ensemble, &config, &workload, seed, &serve_cfg);

    let s = &report.stats;
    assert_eq!(s.submitted, workload.len() as u64, "every arrival reached the engine");
    assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.expired,
        "each query resolved exactly once"
    );
    assert_eq!(report.summary.len(), workload.len());
    assert!(report.wall_secs > 0.0 && report.sim_secs > 0.0);
    // The lock-light snapshot mirrors the engine's counters, and the
    // latency histogram saw at least one completion.
    assert_eq!(report.snapshot.completed, s.completed);
    assert!(s.completed == 0 || report.snapshot.latency_p50.is_some());
}
