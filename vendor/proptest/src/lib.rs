//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` macros, the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`any`], [`collection::vec`], `bool::ANY` and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the standard assertion message; inputs are reproducible because every
//!   case's RNG is derived deterministically from the test name and case
//!   index (override the root with `PROPTEST_RNG_SEED`).
//! * **Default case count is 64** (upstream: 256) to keep the full suite
//!   fast; tests that need more pass `ProptestConfig::with_cases`.

use rand::rngs::StdRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// How a property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// [`Strategy::prop_map`]'s adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`]'s adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform over the whole domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — uniform over `T`'s whole domain.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.random()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths a [`vec`] strategy may produce.
    pub trait SizeRange {
        /// Draws one length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.random_range(self.clone())
        }
    }

    /// A strategy generating `Vec`s of `element` with lengths from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `vec(element, size)` — upstream proptest's collection::vec.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform over `{true, false}`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Upstream proptest's `bool::ANY`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            use rand::Rng;
            rng.random()
        }
    }
}

/// Support code the macros expand to; not part of the public API surface.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Deterministic RNG for `(test, case)`: FNV-1a over the test name mixed
    /// with the case index and the optional `PROPTEST_RNG_SEED` root.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        let root: u64 = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cafe_f00d_d00d);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(root ^ h ^ ((case as u64) << 32 | case as u64))
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn` runs its body for `cases` random
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 3u64..9,
            v in collection::vec(0.0f64..1.0, 2..6),
            flag in bool::ANY,
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&y| (0.0..1.0).contains(&y)));
            let _ = flag;
        }

        #[test]
        fn map_and_flat_map_compose(n in (1usize..=4).prop_flat_map(|n| {
            collection::vec(0u32..10, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| Strategy::sample(&(0u64..1000), &mut crate::test_runner::case_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| Strategy::sample(&(0u64..1000), &mut crate::test_runner::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
