//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of the criterion 0.8 API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `bench_with_input`/`sample_size`/`finish`, [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a target window, and the mean
//! ns/iter is printed. No statistics, plots, or baselines — the goal is a
//! working `cargo bench` in an offline environment, with numbers good
//! enough for relative comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    /// Iterations executed during measurement.
    iters: u64,
    /// Target measurement window.
    measurement: Duration,
}

impl Bencher {
    /// Times `routine` and records its mean cost per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~10% of the window to estimate per-iter cost.
        let warmup = self.measurement.mul_f64(0.1).max(Duration::from_millis(20));
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let est_per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let total = ((self.measurement.as_secs_f64() / est_per_iter) as u64).clamp(10, 10_000_000);
        let start = Instant::now();
        for _ in 0..total {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iters = total;
        self.ns_per_iter = elapsed.as_nanos() as f64 / total as f64;
    }
}

/// Identifies one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Just the parameter (group name supplies the function part).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark harness handle passed to every bench function.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measurement: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Runs one unparameterised benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.measurement, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), measurement: self.measurement, _parent: self }
    }
}

/// A group of related, usually parameterised, benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream API: target sample count. The vendored harness keys its
    /// effort off wall-clock windows instead; accepted and used only to
    /// scale the window down for expensive benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n < 50 {
            self.measurement = Duration::from_millis(200);
        }
        self
    }

    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.measurement, &mut |b| f(b, input));
        self
    }

    /// Runs one unparameterised benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.measurement, &mut f);
        self
    }

    /// Closes the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(label: &str, measurement: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0, iters: 0, measurement };
    f(&mut b);
    let (value, unit) = humanize_ns(b.ns_per_iter);
    println!("{label:<48} {value:>10.2} {unit}/iter  ({} iters)", b.iters);
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Bundles bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { measurement: Duration::from_millis(30) };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
        assert_eq!(BenchmarkId::new("plan", 0.01).to_string(), "plan/0.01");
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion { measurement: Duration::from_millis(30) };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
