//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the rand 0.9 API the workspace actually
//! uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`],
//! and the `seq` helpers ([`seq::SliceRandom::shuffle`],
//! [`seq::IndexedRandom::choose`], [`seq::index::sample`]).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 of the real `StdRng`, so streams differ
//! from upstream `rand`, but every consumer in this workspace only relies on
//! determinism-per-seed and reasonable statistical quality, both of which
//! xoshiro256++ provides.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, span)` (Lemire-style
/// widening multiply; the tiny modulo bias of plain `% span` is avoided).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected: retry to stay exactly uniform.
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value over `T`'s whole domain
    /// (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The crate's own prelude-ish re-exports (mirrors `rand::prelude` lightly).
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&z));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_int_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.random_range(0u64..100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn float_unit_interval_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            let x: f64 = rng.random();
            buckets[(x * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((b as f64 - n as f64 / 10.0).abs() < n as f64 * 0.01);
        }
    }
}
