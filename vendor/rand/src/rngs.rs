//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not the ChaCha12 generator of upstream `rand` — streams differ from the
/// real crate — but deterministic per seed, fast, and statistically strong
/// for simulation workloads (passes BigCrush in its published form).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let mut s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        s3n = s3n.rotate_left(45);
        self.s = [s0n, s1n, s2n, s3n];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
