//! Sequence helpers: shuffling, choosing, index sampling.

use crate::{Rng, RngCore};

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Uniform Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Random element selection from slices.
pub trait IndexedRandom {
    /// Element type.
    type Item;
    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// Index sampling without replacement.
pub mod index {
    use crate::{Rng, RngCore};

    /// The sampled indices (upstream rand's `IndexVec`, reduced).
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// The indices as a vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// True when nothing was sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length` uniformly, in
    /// random order (partial Fisher–Yates).
    ///
    /// # Panics
    /// Panics if `amount > length`.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(amount <= length, "cannot sample {amount} of {length}");
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.random_range(i..length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50-element shuffle left input in order");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let picked: Vec<usize> = index::sample(&mut rng, 100, 10).into_iter().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicates in {picked:?}");
        assert!(picked.iter().all(|&i| i < 100));
    }
}
