//! Image retrieval with a two-model DELG ensemble (the paper's third
//! application): the smallest possible ensemble, where the scheduling
//! decision reduces to "one backbone or both?" and mAP (reciprocal rank of
//! the relevant image) replaces plain accuracy.
//!
//! ```sh
//! cargo run --release --example image_retrieval
//! ```

use schemble::core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind};
use schemble::data::TaskKind;
use schemble::models::ModelSet;

fn main() {
    let task = TaskKind::ImageRetrieval;
    let mut config = ExperimentConfig::paper_default(task, 5);
    config.n_queries = 2000;
    let mut ctx = ExperimentContext::new(config);

    // How much does the second backbone buy, per difficulty level? (This is
    // the information the profile gives the scheduler.)
    let art = ctx.artifacts();
    println!("profiled agreement with the 2-model ensemble per score bin:");
    for score in [0.1, 0.3, 0.5, 0.7, 0.9] {
        println!(
            "  score {score:.1}: R50 alone {:.2}  R101 alone {:.2}  both 1.00",
            art.profile.utility(score, ModelSet::singleton(0)),
            art.profile.utility(score, ModelSet::singleton(1)),
        );
    }

    let workload = ctx.workload();
    println!("\nserving {} retrieval queries (180 ms deadline):", workload.len());
    println!("  {:<14} {:>7} {:>7} {:>12}", "method", "mAP %", "DMR %", "models/query");
    for kind in [PipelineKind::Original, PipelineKind::Static, PipelineKind::Schemble] {
        let summary = ctx.run(kind, &workload);
        println!(
            "  {:<14} {:>7.1} {:>7.1} {:>12.2}",
            kind.label(),
            100.0 * summary.accuracy(),
            100.0 * summary.deadline_miss_rate(),
            summary.mean_models_used()
        );
    }
    println!(
        "\nWith only two models, Static's single-backbone deployment achieves the\n\
         lowest possible miss rate but caps its mAP at the single-model agreement;\n\
         Schemble runs both backbones exactly on the queries that need them."
    );
}
