//! Intelligent Q&A serving (the paper's motivating application), end to end:
//! train every offline artifact explicitly, inspect them, then serve the
//! bursty day with all six methods.
//!
//! ```sh
//! cargo run --release --example qa_system
//! ```

use schemble::baselines::{run_baseline, BaselineKind};
use schemble::core::artifacts::SchembleArtifacts;
use schemble::core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble::core::pipeline::AdmissionMode;
use schemble::data::TaskKind;
use schemble::models::ModelSet;

fn main() {
    let task = TaskKind::TextMatching;
    let mut config = ExperimentConfig::paper_default(task, 7);
    config.n_queries = 3000;
    config.traffic = Traffic::Diurnal { day_secs: 200.0 };
    let mut ctx = ExperimentContext::new(config);

    // ---- offline phase ---------------------------------------------------
    println!("deployed ensemble:");
    for model in &ctx.ensemble.models {
        println!(
            "  {:<8} p(correct|easy)={:.3} p(correct|hard)={:.3} latency={:.0}ms",
            model.name,
            model.acc_easy,
            model.acc_hard,
            model.latency.planned().as_millis_f64()
        );
    }

    let artifacts = SchembleArtifacts::build_default(&ctx.ensemble, &ctx.generator, 7);
    println!("\ncalibration temperatures (fitted by temperature scaling):");
    for (k, model) in ctx.ensemble.models.iter().enumerate() {
        println!(
            "  {:<8} fitted T = {:.2} (injected miscalibration {:.2})",
            model.name,
            artifacts.scorer.calibration().temperature(k),
            model.miscal_temp
        );
    }

    println!("\naccuracy profile U(score bin, subset) — what the scheduler maximises:");
    for score in [0.05, 0.35, 0.75] {
        let v = artifacts.profile.utility_vector(score);
        println!(
            "  score {score:.2}: BiLSTM {:.2}  BERT {:.2}  BiLSTM+BERT {:.2}  full {:.2}",
            v[ModelSet::singleton(0).0 as usize],
            v[ModelSet::singleton(2).0 as usize],
            v[ModelSet::from_indices(&[0, 2]).0 as usize],
            v[ModelSet::full(3).0 as usize],
        );
    }

    // ---- serving phase ----------------------------------------------------
    let workload = ctx.workload();
    println!("\nserving {} queries (constant 105 ms deadline):", workload.len());
    println!("  {:<14} {:>7} {:>7}", "method", "Acc %", "DMR %");
    for kind in [
        PipelineKind::Original,
        PipelineKind::Static,
        PipelineKind::SchembleEa,
        PipelineKind::Schemble,
    ] {
        let summary = ctx.run(kind, &workload);
        println!(
            "  {:<14} {:>7.1} {:>7.1}",
            kind.label(),
            100.0 * summary.accuracy(),
            100.0 * summary.deadline_miss_rate()
        );
    }
    for kind in [BaselineKind::Des, BaselineKind::Gating] {
        let summary = run_baseline(
            kind,
            &ctx.ensemble,
            &ctx.generator,
            &workload,
            AdmissionMode::Reject,
            ctx.config.history_n,
            ctx.config.seed,
        );
        println!(
            "  {:<14} {:>7.1} {:>7.1}",
            kind.label(),
            100.0 * summary.accuracy(),
            100.0 * summary.deadline_miss_rate()
        );
    }

    // Where did Schemble put the work? Per-model utilisation tells the story:
    // the fast model absorbs the burst, the slow accurate ones serve the
    // hard queries.
    let schemble = ctx.run(PipelineKind::Schemble, &workload);
    let span = workload.duration.as_secs_f64();
    println!("\nSchemble per-model usage over the day:");
    for u in schemble.usage() {
        println!(
            "  {:<8} {:>6} tasks  {:>5.1}% utilised",
            u.name,
            u.tasks,
            100.0 * u.utilisation(span)
        );
    }
}
