//! Quickstart: serve a bursty text-matching workload with Schemble and
//! compare it against the original run-everything pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use schemble::core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble::data::TaskKind;

fn main() {
    // A small intelligent-Q&A deployment: BiLSTM + RoBERTa + BERT behind a
    // 105 ms deadline, driven by a compressed one-day trace whose daytime
    // burst runs ~2x over the full ensemble's capacity.
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = 3000;
    config.traffic = Traffic::Diurnal { day_secs: 200.0 };

    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    println!(
        "workload: {} queries over {:.0}s (peak ≈ 3x mean rate)",
        workload.len(),
        workload.duration.as_secs_f64()
    );

    // The conventional pipeline: every query runs every base model.
    let original = ctx.run(PipelineKind::Original, &workload);
    // Schemble: discrepancy-score prediction + DP task scheduling.
    // (Training of the calibration, profile and predictor happens lazily on
    // first use and is reused across runs.)
    let schemble = ctx.run(PipelineKind::Schemble, &workload);

    println!("\n               accuracy   deadline-miss-rate   mean models/query");
    for (name, s) in [("Original", &original), ("Schemble", &schemble)] {
        println!(
            "  {name:<10}   {:>6.1}%              {:>5.1}%                {:.2}",
            100.0 * s.accuracy(),
            100.0 * s.deadline_miss_rate(),
            s.mean_models_used()
        );
    }
    println!(
        "\nSchemble answered {:.1}x more queries correctly by their deadlines by \
         running fewer models on easy queries during the burst.",
        schemble.accuracy() / original.accuracy().max(1e-9)
    );
}
