//! Scheduler playground: poke the DP scheduler (Alg. 1) directly with a
//! hand-built buffer and watch it trade accuracy for deadlines.
//!
//! Reproduces the paper's §I example: three models, two easy queries with
//! tight deadlines — running the full ensemble on the first query starves
//! the second, while the scheduler splits the models and serves both.
//!
//! ```sh
//! cargo run --release --example scheduler_playground
//! ```

use schemble::core::scheduler::{
    BufferedQuery, DpScheduler, GreedyScheduler, QueueOrder, ScheduleInput, Scheduler,
};
use schemble::sim::{SimDuration, SimTime};

fn main() {
    // Three equal models, 20 ms each; two queries, both due at 25 ms.
    let utilities = vec![0.0, 0.90, 0.90, 0.95, 0.90, 0.95, 0.95, 1.00];
    let mk = |id: u64| BufferedQuery {
        id,
        arrival: SimTime::from_millis(id),
        deadline: SimTime::from_millis(25),
        utilities: utilities.clone(),
        score: 0.2,
    };
    let input = ScheduleInput {
        now: SimTime::ZERO,
        availability: vec![SimTime::ZERO; 3],
        latencies: vec![SimDuration::from_millis(20); 3],
        queries: vec![mk(0), mk(1)],
    };

    println!("two easy queries, three 20ms models, both deadlines at 25ms:\n");
    for scheduler in [
        Box::new(GreedyScheduler::new(QueueOrder::Fifo)) as Box<dyn Scheduler>,
        Box::new(DpScheduler::default()),
    ] {
        let plan = scheduler.plan(&input);
        println!("{}:", scheduler.name());
        for (qi, set) in plan.assignments.iter().enumerate() {
            let completion = input.completions(&plan)[qi];
            println!(
                "  query {qi}: models {set}  -> {}",
                match completion {
                    Some(t) => format!("completes at {}", t),
                    None => "NOT SERVED".to_string(),
                }
            );
        }
        println!(
            "  total utility {:.2}, feasible: {}\n",
            input.plan_utility(&plan),
            input.plan_is_feasible(&plan)
        );
    }

    // Now loosen the deadlines and watch the DP give everyone everything.
    let mut loose = input.clone();
    for q in &mut loose.queries {
        q.deadline = SimTime::from_millis(200);
    }
    let plan = DpScheduler::default().plan(&loose);
    println!("same buffer with 200ms deadlines:");
    for (qi, set) in plan.assignments.iter().enumerate() {
        println!("  query {qi}: models {set}");
    }
    println!(
        "  -> with slack the scheduler runs the full ensemble for everyone \
         (utility {:.2})",
        loose.plan_utility(&plan)
    );
}
