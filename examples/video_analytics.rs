//! Vehicle counting over multi-camera video (the paper's second
//! application): Poisson query traffic, per-camera deadlines drawn from a
//! uniform distribution (different locations have different priorities),
//! regression ensemble of three detectors.
//!
//! ```sh
//! cargo run --release --example video_analytics
//! ```

use schemble::core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind};
use schemble::data::{DeadlinePolicy, TaskKind};
use schemble::metrics::SegmentSeries;
use schemble::sim::SimDuration;

fn main() {
    let task = TaskKind::VehicleCounting;
    let mut config = ExperimentConfig::paper_default(task, 11);
    config.n_queries = 3000;
    // 24 cameras; deadlines uniform in [54, 126] ms around a 90 ms mean.
    config.deadline = DeadlinePolicy::PerCameraUniform {
        cameras: 24,
        lo: SimDuration::from_millis(54),
        hi: SimDuration::from_millis(126),
    };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();

    println!(
        "{} frames from 24 cameras at {:.0} fps aggregate; detectors: {}",
        workload.len(),
        workload.len() as f64 / workload.duration.as_secs_f64(),
        ctx.ensemble.models.iter().map(|m| m.name.as_str()).collect::<Vec<_>>().join(", ")
    );

    let original = ctx.run(PipelineKind::Original, &workload);
    let schemble = ctx.run(PipelineKind::Schemble, &workload);
    println!("\n              accuracy   DMR     mean detectors/frame");
    for (name, s) in [("Original", &original), ("Schemble", &schemble)] {
        println!(
            "  {name:<10}  {:>5.1}%    {:>5.1}%   {:.2}",
            100.0 * s.accuracy(),
            100.0 * s.deadline_miss_rate(),
            s.mean_models_used()
        );
    }

    // Tight-deadline cameras are where scheduling matters most: split the
    // results by camera priority class.
    let policy = &ctx.config.deadline;
    let rel_ms = |r: &schemble::metrics::QueryRecord| (r.deadline - r.arrival).as_millis_f64();
    let class_of = |r: &schemble::metrics::QueryRecord| usize::from(rel_ms(r) >= 90.0);
    let orig_series = SegmentSeries::compute(original.records(), 2, |r| class_of(r));
    let sch_series = SegmentSeries::compute(schemble.records(), 2, |r| class_of(r));
    println!("\n  per-priority deadline miss rate (tight < 90ms ≤ loose):");
    println!(
        "    tight cameras: Original {:>5.1}%  Schemble {:>5.1}%",
        100.0 * orig_series.dmr[0],
        100.0 * sch_series.dmr[0]
    );
    println!(
        "    loose cameras: Original {:>5.1}%  Schemble {:>5.1}%",
        100.0 * orig_series.dmr[1],
        100.0 * sch_series.dmr[1]
    );
    let _ = policy;
}
