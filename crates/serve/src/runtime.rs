//! The serving runtime: scheduler loop, load generator and reports.
//!
//! [`run_wall`] drives a [`PipelineEngine`] in real (dilated) time: a load
//! generator thread replays the workload's arrival trace, worker threads
//! realise task latencies as sleeps, and the scheduler loop reacts to
//! arrivals, completions and timer wake-ups — re-running the engine's
//! planning logic on every event exactly as the simulator does, and
//! enforcing deadlines with `recv_timeout` timers derived from
//! [`PipelineEngine::next_wake_hint`]. [`run_virtual`] drives the same
//! engine over the deterministic [`SimBackend`] instead; because both modes
//! execute identical decision code, a virtual-clock serve run reproduces
//! the DES pipelines' admission decisions bit-for-bit (the
//! `serve_runtime` integration test checks this).

use crate::backend::ThreadedBackend;
use crate::clock::{precise_sleep, DilatedClock};
use crate::steal::{execute_steal_round, LoadSnapshot, Rendezvous, StealHandle};
use crate::worker::{RuntimeMsg, WorkerPool};
use schemble_core::backend::{BackendEvent, ExecutionBackend, SimBackend};
use schemble_core::engine::{
    EngineStats, FailurePolicy, ImmediateEngine, PipelineEngine, SchembleEngine,
};
use schemble_core::pipeline::immediate::{Deployment, SelectionPolicy};
use schemble_core::pipeline::{AdmissionMode, ResultAssembler, SchembleConfig};
use schemble_data::Workload;
use schemble_metrics::{RunSummary, RuntimeMetrics, RuntimeSnapshot};
use schemble_models::Ensemble;
use schemble_sim::{BatchConfig, FaultPlan, LatencyModel, SimTime};
use schemble_trace::TraceSink;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the runtime's clock advances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockMode {
    /// Real threads and sleeps; simulated time = wall time × `dilation`.
    Wall {
        /// Simulated seconds per wall second (1.0 = faithful real time).
        dilation: f64,
    },
    /// Deterministic virtual clock over the discrete-event simulator —
    /// reproduces the DES pipelines' decisions exactly.
    Virtual,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Clock mode (wall dilation or deterministic virtual time).
    pub mode: ClockMode,
    /// Per-executor backlog bound; exceeding it is a bug, not backpressure.
    pub queue_capacity: usize,
    /// Capacity of the bounded channel feeding the scheduler loop.
    pub channel_capacity: usize,
    /// Print a metrics snapshot at this (wall) interval, if set.
    pub report_every: Option<Duration>,
    /// Sink receiving query lifecycle events from the engine and backend;
    /// `None` runs untraced (the engine/backend get a disabled sink).
    pub trace: Option<Arc<TraceSink>>,
    /// Seeded fault schedule injected into the backend (both clock modes);
    /// `None` (or a no-op plan) leaves backends byte-identical to a
    /// fault-free run.
    pub faults: Option<FaultPlan>,
    /// Retry/degradation policy handed to the engine. Applies to the
    /// immediate pipelines only — the Schemble pipeline carries its policy
    /// in [`SchembleConfig::failure`].
    pub failure: Option<FailurePolicy>,
    /// Engine shards for [`serve_schemble`]. `1` (the default) runs the
    /// single-engine path unchanged; `S > 1` hash-routes arrivals across
    /// `S` parallel engines (see [`crate::shard`]), each with its own
    /// executor replica.
    pub shards: usize,
    /// Streaming audit-log writer. Only the sharded path uses it (each
    /// shard writes its queries' lines as it finishes, line-atomically);
    /// unsharded runs export audit NDJSON from the trace post-hoc.
    pub audit: Option<Arc<schemble_trace::AuditWriter>>,
    /// Post-mortem flight recorder. Tapped into the trace sink by the
    /// caller; the runtime additionally trips it on wedge detection and
    /// worker panics so the dump records *why* the run went sideways.
    pub recorder: Option<Arc<schemble_obs::FlightRecorder>>,
    /// Cross-query batched execution, installed into the backend (both
    /// clock modes). [`serve_schemble`] fills this from
    /// [`SchembleConfig::batching`]; `None` — and equally an inactive
    /// config — keeps the backends byte-identical to an unbatched run.
    pub batching: Option<BatchConfig>,
    /// Inter-shard work stealing: shard engines pause at every virtual-time
    /// boundary of this length and rebalance admitted-but-unplanned queries
    /// (see [`crate::steal`]). Only the sharded Schemble path uses it;
    /// `None` (the default) is byte-identical to a build without stealing.
    pub steal_epoch: Option<schemble_sim::SimDuration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            mode: ClockMode::Wall { dilation: 1.0 },
            queue_capacity: 4096,
            channel_capacity: 1024,
            report_every: None,
            trace: None,
            faults: None,
            failure: None,
            shards: 1,
            audit: None,
            recorder: None,
            batching: None,
            steal_epoch: None,
        }
    }
}

impl ServeConfig {
    /// The sink engines and backends should emit into.
    fn sink(&self) -> Arc<TraceSink> {
        self.trace.clone().unwrap_or_else(TraceSink::disabled)
    }
}

/// Low-level result of one runtime execution.
pub struct RunStats {
    /// Per-executor busy/task counters.
    pub usage: Vec<schemble_core::backend::ExecutorUsage>,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Simulated seconds the replayed trace spanned.
    pub sim_secs: f64,
}

/// Everything a serve/loadtest run reports.
pub struct ServeReport {
    /// Per-query outcomes, identical in shape to a DES run's summary.
    pub summary: RunSummary,
    /// The engine's final admission counters.
    pub stats: EngineStats,
    /// Final metrics snapshot (queues, utilisation, latency quantiles).
    pub snapshot: RuntimeSnapshot,
    /// The live metrics block itself (full latency histogram, per-executor
    /// gauges) — what the Prometheus exporter renders.
    pub metrics: Arc<RuntimeMetrics>,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Simulated seconds the replayed trace spanned.
    pub sim_secs: f64,
}

/// Mirrors the engine's counters into the shared atomics and feeds fresh
/// completions into the latency histogram.
fn sync_metrics(engine: &mut dyn PipelineEngine, metrics: &RuntimeMetrics) {
    let s = engine.stats();
    let c = &metrics.counters;
    c.submitted.store(s.submitted, Relaxed);
    c.completed.store(s.completed, Relaxed);
    c.rejected.store(s.rejected, Relaxed);
    c.expired.store(s.expired, Relaxed);
    c.degraded.store(s.degraded, Relaxed);
    c.tasks_failed.store(s.tasks_failed, Relaxed);
    c.tasks_retried.store(s.tasks_retried, Relaxed);
    c.tasks_saved.store(s.tasks_saved, Relaxed);
    // Thief-side counting: per-shard sums of `stolen_in` merge into the
    // global transfer total (each transfer has exactly one adoption).
    c.queries_stolen.store(s.stolen_in, Relaxed);
    for (_, latency_secs) in engine.take_completions() {
        metrics.latency.record(latency_secs);
    }
}

/// Drives `engine` in wall-clock mode over a [`ThreadedBackend`].
///
/// Returns once the whole trace has been replayed, every admitted query has
/// completed or expired, and all executors have drained; worker threads are
/// then shut down gracefully (current tasks finish, queues must be empty).
#[allow(clippy::too_many_arguments)]
pub fn run_wall(
    engine: &mut dyn PipelineEngine,
    latencies: Vec<LatencyModel>,
    workload: &Workload,
    seed: u64,
    stream: &str,
    config: &ServeConfig,
    dilation: f64,
    metrics: &Arc<RuntimeMetrics>,
    mut steal: Option<&mut StealHandle>,
) -> RunStats {
    let wall_start = Instant::now();
    let clock = DilatedClock::start(dilation);
    let (tx, rx) = sync_channel::<RuntimeMsg>(config.channel_capacity);
    let pool = WorkerPool::spawn(latencies.len(), tx.clone());
    let mut backend = ThreadedBackend::new(
        latencies,
        seed,
        stream,
        pool,
        clock,
        config.queue_capacity,
        Arc::clone(metrics),
    )
    .with_trace(config.sink());
    if let Some(plan) = &config.faults {
        backend = backend.with_faults(plan.clone(), seed);
    }
    if let Some(batching) = config.batching {
        backend = backend.with_batching(batching);
    }

    // Trace-replay load generator: one thread sleeping to each arrival.
    let arrivals: Vec<SimTime> = workload.queries.iter().map(|q| q.arrival).collect();
    let loadgen = std::thread::Builder::new()
        .name("schemble-loadgen".into())
        .spawn(move || {
            for (i, at) in arrivals.into_iter().enumerate() {
                let wait = clock.wall_until(at);
                if !wait.is_zero() {
                    precise_sleep(wait);
                }
                if tx.send(RuntimeMsg::Arrive(i)).is_err() {
                    return; // runtime gone; stop replaying.
                }
            }
            let _ = tx.send(RuntimeMsg::ArrivalsDone);
        })
        .expect("spawn load generator");

    // Optional periodic reporter, reading the shared atomics lock-free. The
    // stop flag lives under a condvar so shutdown interrupts the interval
    // sleep immediately instead of blocking the run for up to a full period.
    let stop_reporter = Arc::new((Mutex::new(false), Condvar::new()));
    let reporter = config.report_every.map(|every| {
        let metrics = Arc::clone(metrics);
        let stop = Arc::clone(&stop_reporter);
        std::thread::Builder::new()
            .name("schemble-reporter".into())
            .spawn(move || {
                let (flag, cv) = &*stop;
                // A poisoned flag (panicked peer) must not kill reporting:
                // recover the guard and carry on.
                let mut stopped = flag.lock().unwrap_or_else(|e| e.into_inner());
                while !*stopped {
                    let (guard, timeout) =
                        cv.wait_timeout(stopped, every).unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if !*stopped && timeout.timed_out() {
                        let now = clock.now_sim();
                        let snap = metrics.snapshot(now.as_secs_f64());
                        eprintln!("[serve t={:.1}s] {}", now.as_secs_f64(), snap.brief());
                    }
                }
            })
            .expect("spawn reporter")
    });

    // Applies one runtime message to the engine. Shared between the main
    // recv loop and the pre-rendezvous drain so both paths treat batch
    // fan-out and zombie reports identically.
    fn deliver(
        msg: RuntimeMsg,
        now: SimTime,
        engine: &mut dyn PipelineEngine,
        backend: &mut ThreadedBackend,
        arrivals_done: &mut bool,
        stalled: &mut u32,
    ) {
        match msg {
            RuntimeMsg::Arrive(i) => {
                engine.handle(BackendEvent::Arrival(i), now, backend);
                *stalled = 0;
            }
            RuntimeMsg::TaskDone { executor, query } => {
                // A report standing in for a whole batched pass fans out
                // into one engine event per member, fates applied.
                if let Some(members) = backend.batch_members(executor, query, now) {
                    for (q, failed) in members {
                        let event = if failed {
                            BackendEvent::TaskFailed { executor, query: q }
                        } else {
                            BackendEvent::TaskDone { executor, query: q }
                        };
                        engine.handle(event, now, backend);
                    }
                } else if backend.complete(executor, query, now) {
                    // A false return is a zombie report (task killed by a
                    // crash): the engine already saw its TaskFailed.
                    engine.handle(BackendEvent::TaskDone { executor, query }, now, backend);
                }
                *stalled = 0;
            }
            RuntimeMsg::TaskFailed { executor, query } => {
                if backend.fail(executor, query, now) {
                    engine.handle(BackendEvent::TaskFailed { executor, query }, now, backend);
                }
                *stalled = 0;
            }
            RuntimeMsg::ArrivalsDone => *arrivals_done = true,
        }
    }

    let mut arrivals_done = false;
    let mut stalled = 0u32;
    let mut steal_stopped = steal.is_none();
    loop {
        let now = clock.now_sim();
        // Epoch rendezvous: once wall time passes a steal boundary, pause
        // and rebalance with the peer shards.
        if !steal_stopped {
            let handle = steal.as_deref_mut().expect("steal handle present until stopped");
            let boundary = handle.next_boundary();
            if now >= boundary {
                // A rendezvous round can outlast the wall time between
                // epoch boundaries (small epochs, high dilation). Drain
                // everything already due before blocking on the barrier —
                // back-to-back rounds would otherwise starve the message
                // channel, wedging the loadgen against its bounded buffer
                // so arrivals (and the run) never finish.
                while let Ok(msg) = rx.try_recv() {
                    let now = clock.now_sim();
                    deliver(msg, now, &mut *engine, &mut backend, &mut arrivals_done, &mut stalled);
                }
                let now = clock.now_sim();
                for event in backend.take_due_fault_events(now) {
                    engine.handle(event, now, &mut backend);
                }
                if backend.take_due_wake(now) {
                    engine.handle(BackendEvent::Wake, now, &mut backend);
                }
                backend.launch_due_batches(now);
                let done = arrivals_done && engine.open_count() == 0 && backend.all_idle();
                let (depth, backlog_us) = engine.steal_backlog();
                match handle.rendezvous(LoadSnapshot { depth, backlog_us, done }) {
                    Rendezvous::Stop => steal_stopped = true,
                    Rendezvous::Round(plan) => {
                        execute_steal_round(engine, &mut backend, handle, &plan, now);
                    }
                }
                sync_metrics(engine, metrics);
                continue;
            }
        }
        // Fault-plan transitions due now (crashes, recoveries, and the
        // tasks a crash killed) reach the engine before anything else.
        let fault_events = backend.take_due_fault_events(now);
        if !fault_events.is_empty() {
            for event in fault_events {
                engine.handle(event, now, &mut backend);
            }
            sync_metrics(engine, metrics);
            continue;
        }
        // Engine-requested wake-ups that have come due fire next.
        if backend.take_due_wake(now) {
            engine.handle(BackendEvent::Wake, now, &mut backend);
            sync_metrics(engine, metrics);
            continue;
        }
        // Open batches whose coalescing window expired launch before the
        // loop sleeps again (their deadline is part of `next_wake`).
        backend.launch_due_batches(now);
        // With stealing live, a drained shard keeps rendezvousing (it may
        // yet adopt work) until the coordinator declares a global stop.
        if arrivals_done && engine.open_count() == 0 && backend.all_idle() && steal_stopped {
            break;
        }
        // Sleep until the next arrival/completion, or the next timer the
        // engine needs (pending plan, predictor done, earliest deadline).
        let mut next = backend.next_wake();
        if let Some(hint) = engine.next_wake_hint(now) {
            next = Some(next.map_or(hint, |n| n.min(hint)));
        }
        if !steal_stopped {
            let boundary = steal.as_ref().expect("steal handle present").next_boundary();
            next = Some(next.map_or(boundary, |n| n.min(boundary)));
        }
        let timeout = match next {
            Some(t) => clock.wall_until(t),
            None => Duration::from_millis(20),
        };
        match rx.recv_timeout(timeout) {
            Ok(msg) => {
                let now = clock.now_sim();
                deliver(msg, now, &mut *engine, &mut backend, &mut arrivals_done, &mut stalled);
            }
            Err(RecvTimeoutError::Timeout) => {
                let now = clock.now_sim();
                // Dead (panicked) workers surface here, as executor-down.
                let dead = backend.reap_dead(now);
                if !dead.is_empty() {
                    if let Some(rec) = &config.recorder {
                        rec.trip(schemble_obs::TripReason::WorkerPanic);
                    }
                }
                for event in dead {
                    engine.handle(event, now, &mut backend);
                }
                engine.handle(BackendEvent::Wake, now, &mut backend);
                // Wedge breaker: open queries but nothing running, no timer
                // pending anywhere, trace replayed — nothing can make
                // progress. Three consecutive idle timeouts end the loop;
                // drain() below closes the stranded queries (degraded or
                // expired), so they are never silently lost.
                if arrivals_done
                    && backend.all_idle()
                    && backend.next_wake().is_none()
                    && engine.next_wake_hint(clock.now_sim()).is_none()
                    && engine.open_count() > 0
                {
                    stalled += 1;
                    if stalled >= 3 {
                        if let Some(rec) = &config.recorder {
                            rec.trip(schemble_obs::TripReason::Wedge);
                        }
                        break;
                    }
                } else {
                    stalled = 0;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        sync_metrics(engine, metrics);
    }

    // An early exit (wedge breaker, disconnect) leaves the rendezvous for
    // good so the peer shards' barriers recompute without this one.
    if let Some(handle) = steal {
        handle.detach();
    }
    let end = clock.now_sim();
    engine.drain(end);
    sync_metrics(engine, metrics);
    let _ = loadgen.join();
    {
        let (flag, cv) = &*stop_reporter;
        *flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }
    if let Some(handle) = reporter {
        let _ = handle.join();
    }
    let usage = backend.usage();
    backend.shutdown();
    RunStats { usage, wall_secs: wall_start.elapsed().as_secs_f64(), sim_secs: end.as_secs_f64() }
}

/// Drives `engine` deterministically over the DES [`SimBackend`] — the same
/// loop `run_schemble`/`run_immediate` use, so decisions (admissions,
/// model sets, completion times) match those pipelines exactly.
///
/// With a [`StealHandle`], the loop additionally pauses at every epoch
/// boundary: events strictly before the boundary are processed first, then
/// the shard rendezvouses (boundary-time events run after), so every shard
/// cuts its epochs at identical virtual instants — the property that makes
/// sharded runs with stealing byte-identical across DES and wall drivers.
#[allow(clippy::too_many_arguments)]
pub fn run_virtual(
    engine: &mut dyn PipelineEngine,
    latencies: Vec<LatencyModel>,
    workload: &Workload,
    seed: u64,
    stream: &str,
    config: &ServeConfig,
    metrics: &RuntimeMetrics,
    steal: Option<&mut StealHandle>,
) -> RunStats {
    let wall_start = Instant::now();
    let mut backend = SimBackend::new(latencies, seed, stream).with_trace(config.sink());
    if let Some(plan) = &config.faults {
        backend = backend.with_faults(plan.clone(), seed);
    }
    if let Some(batching) = config.batching {
        backend = backend.with_batching(batching);
    }
    for (i, q) in workload.queries.iter().enumerate() {
        backend.push_arrival(q.arrival, i);
    }
    let mut end = SimTime::ZERO;
    if let Some(handle) = steal {
        loop {
            let boundary = handle.next_boundary();
            while backend.peek_time().is_some_and(|t| t < boundary) {
                let (now, event) = backend.pop_event().expect("peeked event");
                engine.handle(event, now, &mut backend);
                end = now;
            }
            let done = backend.peek_time().is_none() && engine.open_count() == 0;
            let (depth, backlog_us) = engine.steal_backlog();
            match handle.rendezvous(LoadSnapshot { depth, backlog_us, done }) {
                Rendezvous::Stop => break,
                Rendezvous::Round(plan) => {
                    // One `pop_event` call can silently consume several
                    // fault-suppressed events, carrying the DES clock past
                    // the boundary before returning a deliverable one — so
                    // the round executes at the engine's real progressed
                    // time, never behind it (a wake scheduled before the
                    // queue's clock is a DES logic error).
                    let round_now = end.max(boundary);
                    if execute_steal_round(engine, &mut backend, handle, &plan, round_now) {
                        end = round_now;
                    }
                }
            }
        }
        handle.detach();
    }
    while let Some((now, event)) = backend.pop_event() {
        engine.handle(event, now, &mut backend);
        end = now;
    }
    engine.drain(end);
    sync_metrics(engine, metrics);
    let usage = backend.usage();
    // The DES backend bypasses the live gauges; backfill them from its
    // final usage so snapshots and exporters see real task/busy totals.
    let mut tasks_total = 0;
    for (k, (gauges, u)) in metrics.executors.iter().zip(&usage).enumerate() {
        gauges.busy_micros.store((u.busy_secs * 1e6) as u64, Relaxed);
        gauges.tasks.store(u.tasks, Relaxed);
        gauges.up.store(backend.is_up(k) as u64, Relaxed);
        tasks_total += u.tasks;
    }
    // Failed tasks started but never completed.
    metrics.counters.tasks_started.store(tasks_total + engine.stats().tasks_failed, Relaxed);
    metrics.counters.tasks_completed.store(tasks_total, Relaxed);
    metrics.counters.tasks_batched.store(backend.tasks_batched(), Relaxed);
    for &size in backend.batch_sizes() {
        metrics.batch_size.record(size as f64);
    }
    RunStats { usage, wall_secs: wall_start.elapsed().as_secs_f64(), sim_secs: end.as_secs_f64() }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_with(
    engine: &mut dyn PipelineEngine,
    latencies: Vec<LatencyModel>,
    workload: &Workload,
    seed: u64,
    stream: &str,
    config: &ServeConfig,
    metrics: &Arc<RuntimeMetrics>,
    steal: Option<&mut StealHandle>,
) -> RunStats {
    match config.mode {
        ClockMode::Virtual => {
            run_virtual(engine, latencies, workload, seed, stream, config, metrics, steal)
        }
        ClockMode::Wall { dilation } => {
            run_wall(engine, latencies, workload, seed, stream, config, dilation, metrics, steal)
        }
    }
}

/// Serves `workload` through the Schemble pipeline on this runtime.
pub fn serve_schemble(
    ensemble: &Ensemble,
    pipeline: &SchembleConfig,
    workload: &Workload,
    seed: u64,
    config: &ServeConfig,
) -> ServeReport {
    // The pipeline's batching choice rides into the backend via the serve
    // config (shards clone it per shard, so the sharded path inherits it).
    let config =
        &ServeConfig { batching: pipeline.batching.filter(|b| b.active()), ..config.clone() };
    if config.shards > 1 {
        return crate::shard::serve_schemble_sharded(ensemble, pipeline, workload, seed, config);
    }
    let latencies: Vec<LatencyModel> = (0..ensemble.m()).map(|k| ensemble.latency(k)).collect();
    let metrics = Arc::new(RuntimeMetrics::new(latencies.len()));
    let mut engine = SchembleEngine::new(ensemble, pipeline, workload).with_trace(config.sink());
    let run = run_with(
        &mut engine,
        latencies,
        workload,
        seed,
        "schemble-latency",
        config,
        &metrics,
        None,
    );
    let stats = PipelineEngine::stats(&engine);
    let snapshot = metrics.snapshot(run.sim_secs);
    ServeReport {
        summary: engine.into_summary(run.usage),
        stats,
        snapshot,
        metrics,
        wall_secs: run.wall_secs,
        sim_secs: run.sim_secs,
    }
}

/// Serves `workload` through an immediate-selection pipeline (Original /
/// Static / DES / Gating) on this runtime.
#[allow(clippy::too_many_arguments)]
pub fn serve_immediate(
    ensemble: &Ensemble,
    deployment: &Deployment,
    policy: &mut dyn SelectionPolicy,
    assembler: &ResultAssembler,
    admission: AdmissionMode,
    workload: &Workload,
    seed: u64,
    config: &ServeConfig,
) -> ServeReport {
    let latencies: Vec<LatencyModel> =
        deployment.hosts.iter().map(|&h| ensemble.latency(h)).collect();
    let metrics = Arc::new(RuntimeMetrics::new(latencies.len()));
    let mut engine =
        ImmediateEngine::new(ensemble, deployment, policy, assembler, admission, workload)
            .with_trace(config.sink())
            .with_failure(config.failure);
    let run = run_with(
        &mut engine,
        latencies,
        workload,
        seed,
        "immediate-latency",
        config,
        &metrics,
        None,
    );
    let stats = PipelineEngine::stats(&engine);
    let snapshot = metrics.snapshot(run.sim_secs);
    ServeReport {
        summary: engine.into_summary(run.usage),
        stats,
        snapshot,
        metrics,
        wall_secs: run.wall_secs,
        sim_secs: run.sim_secs,
    }
}
