//! `schemble-serve`: a wall-clock, multi-threaded serving runtime for the
//! Schemble pipelines.
//!
//! The simulator (`schemble-sim` + the DES drivers in `schemble-core`)
//! answers *what would happen*; this crate runs the same pipelines for
//! real: per-model worker threads realise synthetic model latencies as
//! actual sleeps, a load generator replays any
//! [`ArrivalTrace`](schemble_data::ArrivalTrace) in (dilated) real time,
//! and a scheduler loop re-runs the DP over the live buffer on every
//! arrival and completion, enforcing deadlines with timers.
//!
//! The load-bearing design choice is that **decision logic is shared, not
//! duplicated**: pipelines are [`PipelineEngine`]s (in
//! `schemble_core::engine`), and this crate only supplies an
//! [`ExecutionBackend`](schemble_core::backend::ExecutionBackend) made of
//! threads and channels. Running the engine over the simulator backend
//! instead ([`ClockMode::Virtual`]) reproduces the DES pipelines'
//! admission decisions exactly — the bridge that lets wall-clock behaviour
//! be validated against the paper's simulated results.
//!
//! ```text
//!   loadgen ──Arrive──▶ ┌────────────────┐ ──start/enqueue──▶ workers
//!                       │ scheduler loop │                    (sleep τ/γ)
//!   timers ───Wake────▶ │ PipelineEngine │ ◀────TaskDone────────┘
//!                       └────────────────┘
//!                               │ lock-light atomics
//!                               ▼
//!                        RuntimeMetrics snapshots
//! ```

pub mod backend;
pub mod clock;
pub mod runtime;
pub mod shard;
pub mod steal;
pub mod worker;

pub use backend::ThreadedBackend;
pub use clock::DilatedClock;
pub use runtime::{
    run_virtual, run_wall, serve_immediate, serve_schemble, ClockMode, RunStats, ServeConfig,
    ServeReport,
};
pub use schemble_core::engine::PipelineEngine;
pub use shard::{serve_schemble_sharded, ShardRouter};
pub use steal::{transfer_plan, LoadSnapshot, StealCoordinator, StealHandle, Transfer};
