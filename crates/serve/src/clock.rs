//! Mapping between simulated time and wall-clock time.
//!
//! The runtime replays workloads whose timestamps are [`SimTime`]s. A
//! [`DilatedClock`] anchors the simulation epoch to an [`Instant`] and
//! scales it by a *dilation* factor: with dilation 10, ten simulated
//! seconds elapse per wall second, so a one-day trace replays in ~2.4
//! hours and synthetic model latencies sleep for a tenth of their nominal
//! duration. Dilation 1 is faithful real time.

use schemble_sim::{SimDuration, SimTime};
use std::time::{Duration, Instant};

/// A wall-clock anchored, dilated view of simulated time.
#[derive(Debug, Clone, Copy)]
pub struct DilatedClock {
    origin: Instant,
    dilation: f64,
}

impl DilatedClock {
    /// Starts the clock: sim time `ZERO` is *now*, advancing `dilation`
    /// simulated seconds per wall second.
    ///
    /// # Panics
    /// Panics unless `dilation` is positive and finite.
    pub fn start(dilation: f64) -> Self {
        assert!(dilation.is_finite() && dilation > 0.0, "dilation must be positive");
        Self { origin: Instant::now(), dilation }
    }

    /// The dilation factor.
    pub fn dilation(&self) -> f64 {
        self.dilation
    }

    /// Current simulated time.
    pub fn now_sim(&self) -> SimTime {
        let wall = self.origin.elapsed().as_secs_f64();
        SimTime::from_secs_f64(wall * self.dilation)
    }

    /// Wall time remaining until simulated instant `t` (zero if past).
    pub fn wall_until(&self, t: SimTime) -> Duration {
        let target_wall = Duration::from_secs_f64(t.as_secs_f64() / self.dilation);
        target_wall.saturating_sub(self.origin.elapsed())
    }

    /// The wall-clock duration a simulated span occupies.
    pub fn dilate(&self, d: SimDuration) -> Duration {
        Duration::from_secs_f64(d.as_secs_f64() / self.dilation)
    }
}

/// Sleeps `d` of wall time with sub-millisecond accuracy: OS sleep for the
/// bulk, then a short spin to the target. Synthetic model latencies are a
/// few to tens of milliseconds (less when dilated), where plain
/// `thread::sleep` overshoot would distort the replay.
pub fn precise_sleep(d: Duration) {
    let target = Instant::now() + d;
    const SPIN_WINDOW: Duration = Duration::from_micros(300);
    if d > SPIN_WINDOW {
        std::thread::sleep(d - SPIN_WINDOW);
    }
    while Instant::now() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilation_scales_sim_time() {
        let clock = DilatedClock::start(100.0);
        precise_sleep(Duration::from_millis(20));
        let sim = clock.now_sim().as_secs_f64();
        // 20 ms wall at 100x ≈ 2 sim seconds; generous bounds for CI noise.
        assert!((1.5..4.0).contains(&sim), "sim {sim}");
    }

    #[test]
    fn wall_until_past_instants_is_zero() {
        let clock = DilatedClock::start(1000.0);
        precise_sleep(Duration::from_millis(5));
        assert_eq!(clock.wall_until(SimTime::from_millis(1)), Duration::ZERO);
    }

    #[test]
    fn dilate_divides_by_factor() {
        let clock = DilatedClock::start(10.0);
        let wall = clock.dilate(SimDuration::from_millis(100));
        assert_eq!(wall, Duration::from_millis(10));
    }

    #[test]
    fn precise_sleep_hits_short_targets() {
        let start = Instant::now();
        precise_sleep(Duration::from_micros(500));
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(500));
        assert!(elapsed < Duration::from_millis(15), "overshoot {elapsed:?}");
    }
}
