//! Sharded serving: `S` independent engine shards behind a deterministic
//! router.
//!
//! The Schemble scheduler is per-buffer — the DP plans one query buffer, and
//! the §VII competitive argument is per-buffer too — so the natural
//! scale-out unit is a *shard*: a full engine replica (query buffer,
//! scheduler scratch, scorer, trace sink, runtime counters) plus its own
//! executor bank, fed a hash-routed slice of the arrival stream. Admission,
//! scoring and DP planning then run on `S` threads instead of one, which is
//! where throughput comes from once planning saturates a core.
//!
//! Determinism is preserved by construction:
//!
//! * **Routing** ([`ShardRouter`]) hashes the query id with the SplitMix64
//!   finaliser — deterministic and *seed-independent*, so the same workload
//!   always splits the same way regardless of the run seed.
//! * **Per-shard RNG streams** derive from `(seed, shard_id)` via
//!   [`mix`], so no shard shares a random stream with another and `S`
//!   changes never perturb an unsharded run (`shards <= 1` takes the
//!   pre-existing single-engine path, byte-identical to before).
//! * **Aggregation is order-insensitive**: counters and histograms merge by
//!   commutative addition, per-query records sort by global id, trace
//!   streams merge on the total order `(time, shard, sequence)`, and audit
//!   lines are written line-atomically so only their *order* — never their
//!   content or set — depends on which shard finishes first.
//!
//! Shared across shards (immutably): the ensemble, the pipeline config
//! (schedulers are `Send + Sync` and plan out of caller-owned scratch), and
//! the fault plan. Owned per shard: the engine and its buffers, the
//! sub-workload, executors `s*m .. (s+1)*m`, the RNG streams, a trace sink
//! and a metrics block.

use crate::runtime::{run_with, ClockMode, RunStats, ServeConfig, ServeReport};
use crate::steal::StealCoordinator;
use schemble_core::engine::{EngineStats, PipelineEngine, SchembleEngine};
use schemble_core::pipeline::SchembleConfig;
use schemble_data::Workload;
use schemble_metrics::{ModelUsage, QueryRecord, RunSummary, RuntimeMetrics};
use schemble_models::Ensemble;
use schemble_sim::rng::{mix, splitmix64};
use schemble_sim::LatencyModel;
use schemble_trace::{audit_records, globalize_events, merge_shard_events, TraceEvent, TraceSink};
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Deterministic, seed-independent hash router from routing keys to shards.
///
/// Routes on [`Query::key`](schemble_data::Query), which defaults to the
/// query id — so uniform workloads split evenly, while a skewed key
/// distribution (hot keys, Zipfian tenants) concentrates load on the hot
/// key's *home shard*, the imbalance work stealing exists to fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to at least one).
    pub fn new(shards: usize) -> Self {
        Self { shards: shards.max(1) }
    }

    /// Number of shards routed across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard serving routing key `key`. Pure function of the key and
    /// the shard count — independent of seed, arrival time and thread
    /// timing.
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        (splitmix64(key) % self.shards as u64) as usize
    }
}

/// What one shard thread hands back to the merger.
struct ShardOutcome {
    stats: EngineStats,
    records: Vec<QueryRecord>,
    run: RunStats,
    events: Vec<TraceEvent>,
}

/// Serves `workload` through `config.shards` parallel Schemble engine
/// shards and merges their outputs into one [`ServeReport`] shaped exactly
/// like an unsharded run's (executor-indexed fields hold `S * m` entries,
/// shard `s`'s executor `k` at index `s * m + k`).
pub fn serve_schemble_sharded(
    ensemble: &Ensemble,
    pipeline: &SchembleConfig,
    workload: &Workload,
    seed: u64,
    config: &ServeConfig,
) -> ServeReport {
    let shards = config.shards.max(1);
    let m = ensemble.m();
    let router = ShardRouter::new(shards);
    let parts = workload.partition(shards, |q| router.route(q.key));
    // Epoch-boundary work stealing, opt-in via `steal_epoch`. The
    // coordinator is the only mutable state shards share, and every
    // decision it mediates is a pure function of epoch snapshots — see
    // `crate::steal` for the determinism argument.
    let coordinator = config.steal_epoch.map(|epoch| StealCoordinator::new(shards, epoch));

    // Shard sinks record whenever the outer sink is enabled *or* tapped
    // (e.g. by a flight recorder): the merged re-emission below feeds the
    // outer tap, so a tap-only sink still needs shard-level capture.
    let trace_enabled = config.trace.as_ref().is_some_and(|s| s.observing());
    let sinks: Vec<Arc<TraceSink>> = (0..shards)
        .map(|_| if trace_enabled { TraceSink::enabled() } else { TraceSink::disabled() })
        .collect();
    let shard_metrics: Vec<Arc<RuntimeMetrics>> =
        (0..shards).map(|_| Arc::new(RuntimeMetrics::new(m))).collect();

    let wall_start = Instant::now();
    let stop_reporter = Arc::new((Mutex::new(false), Condvar::new()));
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        // One aggregate reporter across all shards (wall mode only), in
        // place of the per-run reporter the unsharded path uses.
        let reporter = match (config.mode, config.report_every) {
            (ClockMode::Wall { dilation }, Some(every)) => {
                let stop = Arc::clone(&stop_reporter);
                let shard_metrics = &shard_metrics;
                Some(scope.spawn(move || {
                    let start = Instant::now();
                    let (flag, cv) = &*stop;
                    let mut stopped = flag.lock().unwrap_or_else(|e| e.into_inner());
                    while !*stopped {
                        let (guard, timeout) =
                            cv.wait_timeout(stopped, every).unwrap_or_else(|e| e.into_inner());
                        stopped = guard;
                        if !*stopped && timeout.timed_out() {
                            let sim = start.elapsed().as_secs_f64() * dilation;
                            let merged =
                                RuntimeMetrics::merged(shard_metrics.iter().map(Arc::as_ref));
                            eprintln!("[serve t={sim:.1}s] {}", merged.snapshot(sim).brief());
                        }
                    }
                }))
            }
            _ => None,
        };

        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(s, part)| {
                let sink = Arc::clone(&sinks[s]);
                let metrics = Arc::clone(&shard_metrics[s]);
                let audit = config.audit.clone();
                let coordinator = coordinator.clone();
                scope.spawn(move || {
                    // Everything random in this shard — task latencies,
                    // fault fates — derives from (seed, shard).
                    let shard_seed = mix(seed, s as u64);
                    let latencies: Vec<LatencyModel> =
                        (0..m).map(|k| ensemble.latency(k)).collect();
                    let shard_config = ServeConfig {
                        report_every: None,
                        trace: Some(Arc::clone(&sink)),
                        shards: 1,
                        audit: None,
                        ..config.clone()
                    };
                    let mut engine = SchembleEngine::new(ensemble, pipeline, &part.workload)
                        .with_trace(Arc::clone(&sink));
                    let mut steal =
                        coordinator.map(|c| c.handle(s as u16, part.global_ids.clone()));
                    let run = run_with(
                        &mut engine,
                        latencies,
                        &part.workload,
                        shard_seed,
                        "schemble-latency",
                        &shard_config,
                        &metrics,
                        steal.as_mut(),
                    );
                    let stats = PipelineEngine::stats(&engine);
                    // Stealing extends the id map (adopted queries) and
                    // marks released slots stale; without it, both reduce
                    // to the partition's own map.
                    let (global_ids, released_slots, lost) = match steal {
                        Some(handle) => handle.into_maps(),
                        None => (part.global_ids.clone(), Vec::new(), HashSet::new()),
                    };
                    let released_slots: HashSet<u64> = released_slots.into_iter().collect();
                    let mut records = engine.take_records();
                    // A released query's blank record slot stays behind on
                    // the victim; its current owner's record is the live
                    // one. Filter by *local* slot before translating ids —
                    // a query stolen back gets a fresh slot, and that one
                    // must survive even though an older slot of the same
                    // global id went stale.
                    records.retain(|r| !released_slots.contains(&r.id));
                    for r in &mut records {
                        r.id = global_ids[r.id as usize];
                    }
                    let events = globalize_events(sink.drain(), &global_ids, (s * m) as u16);
                    // Audit lines stream out as each shard finishes: the
                    // writer guarantees line atomicity, so concurrent shards
                    // interleave whole lines only. Queries this shard
                    // released and never got back fold into stale audit
                    // fragments (arrival, no terminal) — the final owner
                    // writes the real line, so drop them here.
                    if let Some(writer) = &audit {
                        let mut lines = audit_records(&events);
                        lines.retain(|r| !lost.contains(&r.query));
                        if let Err(e) = writer.write_records(&lines) {
                            eprintln!("[serve] shard {s}: audit write failed: {e}");
                        }
                    }
                    ShardOutcome { stats, records, run, events }
                })
            })
            .collect();
        let outcomes: Vec<ShardOutcome> =
            handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect();
        {
            let (flag, cv) = &*stop_reporter;
            *flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cv.notify_all();
        }
        if let Some(h) = reporter {
            let _ = h.join();
        }
        outcomes
    });

    // --- Order-insensitive merge (outcomes are indexed by shard id; no
    // step below depends on which shard thread finished first). ---
    let mut stats = EngineStats::default();
    let mut records: Vec<QueryRecord> = Vec::with_capacity(workload.len());
    let mut sim_secs = 0f64;
    for outcome in &outcomes {
        stats.merge(&outcome.stats);
        records.extend(outcome.records.iter().cloned());
        sim_secs = sim_secs.max(outcome.run.sim_secs);
    }
    records.sort_by_key(|r| r.id);

    // Each shard ran a full executor replica, so model `k`'s usage sums
    // over shards and reports `instances = S`.
    let models: Vec<ModelUsage> = (0..m)
        .map(|k| ModelUsage {
            name: ensemble.models[k].name.clone(),
            busy_secs: outcomes.iter().map(|o| o.run.usage[k].busy_secs).sum(),
            tasks: outcomes.iter().map(|o| o.run.usage[k].tasks).sum(),
            instances: shards,
        })
        .collect();
    let summary = RunSummary::new(records).with_usage(models);

    let metrics = Arc::new(RuntimeMetrics::merged(shard_metrics.iter().map(Arc::as_ref)));
    if let Some(sink) = &config.trace {
        for event in merge_shard_events(outcomes.into_iter().map(|o| o.events).collect::<Vec<_>>())
        {
            sink.emit(event);
        }
        for shard_sink in &sinks {
            sink.planning.merge(&shard_sink.planning);
        }
    }

    let snapshot = metrics.snapshot(sim_secs);
    ServeReport {
        summary,
        stats,
        snapshot,
        metrics,
        wall_secs: wall_start.elapsed().as_secs_f64(),
        sim_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_shard_state_is_sync() {
        fn is_sync<T: Sync + ?Sized>() {}
        // The shard threads borrow these immutably; losing Sync on any of
        // them (e.g. interior mutability creeping into a scheduler) must
        // fail here, at the narrowest point, not in the thread::scope call.
        is_sync::<Ensemble>();
        is_sync::<SchembleConfig>();
        is_sync::<ServeConfig>();
        is_sync::<Workload>();
    }

    #[test]
    fn router_is_deterministic_and_covers_all_shards() {
        let router = ShardRouter::new(4);
        for id in 0..1000u64 {
            assert_eq!(router.route(id), router.route(id));
            assert!(router.route(id) < 4);
        }
        let mut counts = [0usize; 4];
        for id in 0..1000u64 {
            counts[router.route(id)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((150..=350).contains(&c), "shard {s} got {c} of 1000 — router is skewed");
        }
        // Single shard routes everything to shard 0; zero clamps to one.
        assert_eq!(ShardRouter::new(1).route(123), 0);
        assert_eq!(ShardRouter::new(0).shards(), 1);
    }
}
