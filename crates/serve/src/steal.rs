//! Deterministic inter-shard work stealing at virtual-time epoch boundaries.
//!
//! Hash routing splits the arrival stream across shard engines by key; a
//! skewed key distribution then overloads one shard while the rest idle,
//! and shard scaling plateaus at the hot shard's capacity. This module
//! rebalances *admitted but unplanned* queries across shards without giving
//! up the sharded path's byte-for-byte determinism:
//!
//! * **Epoch rendezvous.** All shard threads pause at every virtual-time
//!   boundary `(r + 1) * epoch` and publish a [`LoadSnapshot`] — eligible
//!   queue depth and predicted backlog in integer microseconds. The
//!   barriers make the rendezvous a *synchronous* protocol: no shard's
//!   engine advances while a transfer is being decided, so the decision
//!   inputs cannot race with execution.
//! * **Pure transfer plan.** The victim/thief pairing and transfer counts
//!   are computed by [`transfer_plan`] — a pure function of the snapshot
//!   vector and the round index, with integer arithmetic and a
//!   round-rotated tie-break. No thread timing, RNG state or map iteration
//!   order feeds into it, which is what keeps DES and virtual-clock runs
//!   byte-identical, and `--steal-epoch-ms` off byte-identical to a build
//!   without this module.
//! * **Deterministic exchange.** Victims deposit released queries into
//!   per-thief inboxes between two barriers; each thief sorts its inbox by
//!   `(victim, global id)` before adopting, so adoption order — and hence
//!   the thief's local-id assignment — is independent of which victim
//!   thread ran first.
//!
//! A shard that finishes its trace keeps rendezvousing with an empty
//! snapshot (it may yet become a thief); the coordinator stops the protocol
//! once every shard is done and the plan is empty. A shard that *exits*
//! early (wall-clock wedge breaker, channel disconnect) detaches instead,
//! and the barriers recompute around it — a steal racing a crash window
//! therefore resolves deterministically: either the rendezvous completes
//! with the shard, or the shard is detached for the whole round.

use schemble_core::backend::ExecutionBackend;
use schemble_core::engine::{PipelineEngine, StealLineage, StolenQuery};
use schemble_sim::{SimDuration, SimTime};
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex};

/// One shard's published load at an epoch boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSnapshot {
    /// Steal-eligible queries (admitted, scored, nothing started).
    pub depth: u64,
    /// Predicted service demand of those queries, integer microseconds.
    pub backlog_us: u64,
    /// The shard has replayed its whole trace and holds no open queries.
    pub done: bool,
}

/// One planned transfer: `count` queries move from `victim` to `thief`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Shard releasing queries.
    pub victim: u16,
    /// Shard adopting them.
    pub thief: u16,
    /// Queries to move.
    pub count: u32,
    /// Victim's snapshot depth (stamped into lineage).
    pub victim_depth: u32,
    /// Thief's snapshot depth (stamped into lineage).
    pub thief_depth: u32,
}

/// Computes the round's transfer plan from the snapshot vector.
///
/// Pure function: integer arithmetic only, ties broken by the round-rotated
/// key `(shard + round) % shards`, so every shard computes the identical
/// plan and no platform or timing artifact can perturb it. Greedy: while
/// the gap between the most- and least-loaded shards exceeds the victim's
/// average per-query cost, move one (average-cost) query; iterations are
/// capped by the total depth so the loop always terminates.
pub fn transfer_plan(snapshots: &[LoadSnapshot], round: u64) -> Vec<Transfer> {
    let s = snapshots.len();
    if s < 2 {
        return Vec::new();
    }
    let mut depth: Vec<u64> = snapshots.iter().map(|x| x.depth).collect();
    let mut backlog: Vec<u64> = snapshots.iter().map(|x| x.backlog_us).collect();
    // moves[v * s + t] = queries moved from v to t.
    let mut moves = vec![0u32; s * s];
    let cap: u64 = depth.iter().sum();
    for _ in 0..cap {
        let key = |i: usize| (backlog[i], (i as u64 + round) % s as u64);
        let Some(v) = (0..s).filter(|&i| depth[i] > 0).max_by_key(|&i| key(i)) else { break };
        let Some(t) = (0..s).filter(|&i| i != v).min_by_key(|&i| key(i)) else { break };
        let gap = backlog[v].saturating_sub(backlog[t]);
        let avg = backlog[v] / depth[v];
        if gap <= avg || avg == 0 {
            break;
        }
        depth[v] -= 1;
        backlog[v] -= avg;
        depth[t] += 1;
        backlog[t] += avg;
        moves[v * s + t] += 1;
    }
    let mut plan = Vec::new();
    for v in 0..s {
        for t in 0..s {
            let count = moves[v * s + t];
            if count > 0 {
                plan.push(Transfer {
                    victim: v as u16,
                    thief: t as u16,
                    count,
                    victim_depth: snapshots[v].depth.min(u32::MAX as u64) as u32,
                    thief_depth: snapshots[t].depth.min(u32::MAX as u64) as u32,
                });
            }
        }
    }
    plan
}

/// What a rendezvous resolved to.
#[derive(Debug)]
pub enum Rendezvous {
    /// Execute this round: release per the plan, deposit, then exchange.
    Round(Vec<Transfer>),
    /// Every shard is done and nothing is left to move: stop rendezvousing.
    Stop,
}

struct CoordState {
    /// Current round (epoch index); advanced by the last shard to exchange.
    round: u64,
    /// Which shards have published this round.
    arrived: Vec<bool>,
    /// Which shards have called exchange this round.
    exchanged: Vec<bool>,
    /// Shards that exited their run loop early and left the protocol.
    detached: Vec<bool>,
    snapshots: Vec<LoadSnapshot>,
    plan: Vec<Transfer>,
    plan_ready: bool,
    /// Per-thief inboxes of in-flight transfers.
    inboxes: Vec<Vec<(StolenQuery, StealLineage)>>,
    /// Consecutive rounds where every shard was done yet the plan still
    /// moved queries — the livelock breaker for work nothing can run.
    all_done_rounds: u32,
    stopped: bool,
}

/// Shared rendezvous state for `shards` shard threads. Create once, then
/// hand each shard thread a [`StealHandle`] via [`StealCoordinator::handle`].
pub struct StealCoordinator {
    epoch: SimDuration,
    shards: usize,
    state: Mutex<CoordState>,
    cv: Condvar,
}

impl StealCoordinator {
    /// A coordinator for `shards` shards pausing every `epoch`.
    pub fn new(shards: usize, epoch: SimDuration) -> Arc<Self> {
        Arc::new(Self {
            epoch,
            shards,
            state: Mutex::new(CoordState {
                round: 0,
                arrived: vec![false; shards],
                exchanged: vec![false; shards],
                detached: vec![false; shards],
                snapshots: vec![LoadSnapshot::default(); shards],
                plan: Vec::new(),
                plan_ready: false,
                inboxes: (0..shards).map(|_| Vec::new()).collect(),
                all_done_rounds: 0,
                stopped: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// The epoch length.
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// The handle shard `shard`'s thread drives the protocol through.
    /// `global_ids` is the shard's local-to-global id map (adopted queries
    /// extend it; released ones are recorded against it).
    pub fn handle(self: &Arc<Self>, shard: u16, global_ids: Vec<u64>) -> StealHandle {
        StealHandle {
            coord: Arc::clone(self),
            shard: shard as usize,
            round: 0,
            global_ids,
            released_slots: Vec::new(),
            lost: HashSet::new(),
        }
    }

    /// If every non-detached shard has published, close the publish phase:
    /// compute the plan, or stop the protocol when nothing is left to do.
    fn try_finish_publish(&self, st: &mut CoordState) {
        if st.stopped || st.plan_ready {
            return;
        }
        let all_in = st.arrived.iter().zip(&st.detached).all(|(&a, &d)| a || d);
        if !all_in {
            return;
        }
        let plan = transfer_plan(&st.snapshots, st.round);
        let all_done = st.snapshots.iter().zip(&st.detached).all(|(s, &d)| s.done || d);
        if all_done {
            if plan.is_empty() || st.all_done_rounds >= self.shards as u32 {
                // Nothing to move — or the remaining queries have already
                // been offered to every shard (rotated tie-break) and
                // nothing could run them: stop instead of bouncing them
                // between wedged shards forever.
                st.stopped = true;
                self.cv.notify_all();
                return;
            }
            st.all_done_rounds += 1;
        } else {
            st.all_done_rounds = 0;
        }
        st.plan = plan;
        st.plan_ready = true;
        self.cv.notify_all();
    }

    /// If every non-detached shard has exchanged, advance to the next round.
    fn try_finish_exchange(&self, st: &mut CoordState) {
        if st.stopped || !st.plan_ready {
            return;
        }
        let all_in = st.exchanged.iter().zip(&st.detached).all(|(&e, &d)| e || d);
        if !all_in {
            return;
        }
        st.round += 1;
        st.arrived.iter_mut().for_each(|a| *a = false);
        st.exchanged.iter_mut().for_each(|e| *e = false);
        st.plan = Vec::new();
        st.plan_ready = false;
        self.cv.notify_all();
    }
}

/// One shard thread's view of the rendezvous protocol. Drives three calls
/// per round — [`rendezvous`](StealHandle::rendezvous), zero or more
/// [`deposit`](StealHandle::deposit)s, then
/// [`exchange`](StealHandle::exchange) — or [`detach`](StealHandle::detach)
/// to leave for good.
pub struct StealHandle {
    coord: Arc<StealCoordinator>,
    shard: usize,
    round: u64,
    /// Local query id -> global query id; adopted queries push onto it.
    global_ids: Vec<u64>,
    /// Local record slots this shard released — each slot went stale the
    /// moment its query left (a re-adoption gets a *fresh* slot, so stale
    /// slots never come back to life).
    released_slots: Vec<u64>,
    /// Global ids this shard released and never re-adopted — its audit
    /// fold for them is a stale fragment (the final owner has the full
    /// story). Release inserts, adoption removes, so ping-pong transfers
    /// settle on the true final owner.
    lost: HashSet<u64>,
}

impl StealHandle {
    /// This handle's shard id.
    pub fn shard(&self) -> u16 {
        self.shard as u16
    }

    /// The next epoch boundary this shard must rendezvous at.
    pub fn next_boundary(&self) -> SimTime {
        SimTime::from_micros(self.coord.epoch.as_micros() * (self.round + 1))
    }

    /// The (extended) local-to-global id map, the stale local record
    /// slots, and the global ids this shard no longer owns.
    pub fn into_maps(mut self) -> (Vec<u64>, Vec<u64>, HashSet<u64>) {
        (
            std::mem::take(&mut self.global_ids),
            std::mem::take(&mut self.released_slots),
            std::mem::take(&mut self.lost),
        )
    }

    /// Publishes this shard's snapshot for the current round and blocks
    /// until the plan is ready (or the protocol stopped).
    pub fn rendezvous(&mut self, snapshot: LoadSnapshot) -> Rendezvous {
        let coord = Arc::clone(&self.coord);
        let mut st = coord.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.stopped {
            return Rendezvous::Stop;
        }
        debug_assert_eq!(st.round, self.round, "shard rendezvoused out of round");
        st.snapshots[self.shard] = snapshot;
        st.arrived[self.shard] = true;
        coord.try_finish_publish(&mut st);
        while !st.stopped && !st.plan_ready {
            st = coord.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.stopped {
            return Rendezvous::Stop;
        }
        Rendezvous::Round(st.plan.clone())
    }

    /// Deposits released queries for `transfer.thief`'s inbox, stamping
    /// each with this round's lineage. Call between
    /// [`rendezvous`](StealHandle::rendezvous) and
    /// [`exchange`](StealHandle::exchange), only for transfers whose victim
    /// is this shard.
    pub fn deposit(&self, transfer: &Transfer, queries: Vec<StolenQuery>) {
        debug_assert_eq!(transfer.victim, self.shard as u16);
        let lineage = StealLineage {
            epoch: self.round.min(u32::MAX as u64) as u32,
            victim: transfer.victim,
            thief: transfer.thief,
            victim_depth: transfer.victim_depth,
            thief_depth: transfer.thief_depth,
        };
        let coord = &self.coord;
        let mut st = coord.state.lock().unwrap_or_else(|e| e.into_inner());
        st.inboxes[transfer.thief as usize].extend(queries.into_iter().map(|q| (q, lineage)));
    }

    /// Marks this shard's deposits complete, waits for every shard's, and
    /// collects this shard's inbox — sorted by `(victim, global id)` so
    /// adoption order never depends on victim thread timing. Advances the
    /// handle to the next round.
    pub fn exchange(&mut self) -> Vec<(StolenQuery, StealLineage)> {
        let coord = Arc::clone(&self.coord);
        let mut st = coord.state.lock().unwrap_or_else(|e| e.into_inner());
        st.exchanged[self.shard] = true;
        coord.try_finish_exchange(&mut st);
        while !st.stopped && st.round == self.round {
            st = coord.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let mut mine = std::mem::take(&mut st.inboxes[self.shard]);
        drop(st);
        self.round += 1;
        mine.sort_by_key(|(q, lin)| (lin.victim, q.query.id));
        mine
    }

    /// Leaves the protocol permanently (early exit: wedge breaker, channel
    /// disconnect, or normal end after a [`Rendezvous::Stop`], where it is
    /// a no-op). The barriers recompute without this shard, so the others
    /// never block on it again.
    pub fn detach(&mut self) {
        let coord = Arc::clone(&self.coord);
        let mut st = coord.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.stopped || st.detached[self.shard] {
            return;
        }
        st.detached[self.shard] = true;
        st.snapshots[self.shard] = LoadSnapshot { depth: 0, backlog_us: 0, done: true };
        coord.try_finish_publish(&mut st);
        coord.try_finish_exchange(&mut st);
        coord.cv.notify_all();
    }
}

impl Drop for StealHandle {
    /// A shard thread that unwinds mid-protocol (panic, bug) must not
    /// leave its peers blocked at a barrier forever: dropping the handle
    /// detaches, so the panic surfaces at `join` instead of deadlocking.
    fn drop(&mut self) {
        self.detach();
    }
}

/// Executes one rendezvoused round for this shard: releases and deposits
/// what the plan demands, exchanges, adopts, and — only if this shard
/// actually transferred something — re-plans via
/// [`PipelineEngine::on_rebalanced`]. Returns whether anything moved here
/// (a zero-transfer round leaves the engine byte-untouched).
pub fn execute_steal_round(
    engine: &mut dyn PipelineEngine,
    backend: &mut dyn ExecutionBackend,
    handle: &mut StealHandle,
    plan: &[Transfer],
    now: SimTime,
) -> bool {
    let me = handle.shard();
    let mut released_any = false;
    for transfer in plan.iter().filter(|t| t.victim == me) {
        let mut queries = engine.release_for_steal(transfer.count as usize, now);
        debug_assert_eq!(
            queries.len(),
            transfer.count as usize,
            "snapshot promised more eligible queries than release found"
        );
        for q in &mut queries {
            // Cross the shard boundary under the *global* id; the thief
            // re-localises at adoption.
            let global = handle.global_ids[q.query.id as usize];
            handle.released_slots.push(q.query.id);
            handle.lost.insert(global);
            q.query.id = global;
        }
        released_any = true;
        handle.deposit(transfer, queries);
    }
    let adopted = handle.exchange();
    let adopted_any = !adopted.is_empty();
    for (stolen, lineage) in adopted {
        let global = stolen.query.id;
        let local = engine.adopt_stolen(stolen, lineage, now);
        debug_assert_eq!(local as usize, handle.global_ids.len());
        handle.global_ids.push(global);
        handle.lost.remove(&global);
    }
    if released_any || adopted_any {
        engine.on_rebalanced(now, backend);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(depth: u64, backlog_us: u64) -> LoadSnapshot {
        LoadSnapshot { depth, backlog_us, done: false }
    }

    #[test]
    fn balanced_load_plans_no_transfers() {
        let snaps = [snap(3, 300), snap(3, 300), snap(3, 300)];
        assert!(transfer_plan(&snaps, 0).is_empty());
        // A gap within one average query cost is left alone too.
        let close = [snap(3, 300), snap(3, 250)];
        assert!(transfer_plan(&close, 0).is_empty());
    }

    #[test]
    fn skewed_load_moves_queries_toward_the_idle_shard() {
        let snaps = [snap(8, 8_000), snap(0, 0)];
        let plan = transfer_plan(&snaps, 0);
        assert_eq!(plan.len(), 1);
        let t = plan[0];
        assert_eq!((t.victim, t.thief), (0, 1));
        // Greedy equalisation: moves stop once the gap closes to within one
        // average cost — about half the queue.
        assert!((3..=4).contains(&t.count), "moved {} of 8", t.count);
        assert_eq!((t.victim_depth, t.thief_depth), (8, 0));
    }

    #[test]
    fn plan_is_a_pure_function_of_snapshots_and_round() {
        let snaps = [snap(10, 5_000), snap(2, 400), snap(0, 0), snap(5, 2_500)];
        for round in [0u64, 1, 7] {
            assert_eq!(transfer_plan(&snaps, round), transfer_plan(&snaps, round));
        }
        // The rotated tie-break resolves exact ties differently across
        // rounds without ever consulting anything but (snapshots, round):
        // exactly one query moves here, and the two idle shards tie for it.
        let tied = [snap(2, 1_200), snap(0, 0), snap(0, 0)];
        let r0 = transfer_plan(&tied, 0);
        let r1 = transfer_plan(&tied, 1);
        assert_eq!(r0.iter().map(|t| t.count).sum::<u32>(), 1);
        assert_eq!(r1.iter().map(|t| t.count).sum::<u32>(), 1);
        assert_ne!(r0[0].thief, r1[0].thief, "rotation should re-order tied thieves");
    }

    #[test]
    fn plan_never_moves_more_than_the_victim_holds() {
        let snaps = [snap(2, 1_000_000), snap(0, 0), snap(0, 0)];
        let plan = transfer_plan(&snaps, 3);
        let from0: u32 = plan.iter().filter(|t| t.victim == 0).map(|t| t.count).sum();
        assert!(from0 <= 2, "victim held 2, plan moved {from0}");
        assert!(plan.iter().all(|t| t.victim != t.thief));
        // Single shard: nothing to pair with.
        assert!(transfer_plan(&[snap(9, 9_000)], 0).is_empty());
    }

    #[test]
    fn coordinator_runs_rounds_then_stops_when_all_done() {
        let coord = StealCoordinator::new(2, SimDuration::from_millis(10));
        let a = coord.handle(0, vec![0, 2, 4]);
        let b = coord.handle(1, vec![1, 3]);
        let run = |mut h: StealHandle, loaded: bool| {
            std::thread::spawn(move || {
                assert_eq!(h.next_boundary(), SimTime::from_millis(10));
                // Round 0: one side overloaded — a transfer must be planned.
                let snapshot = if loaded {
                    snap(4, 4_000)
                } else {
                    LoadSnapshot { depth: 0, backlog_us: 0, done: true }
                };
                let plan = match h.rendezvous(snapshot) {
                    Rendezvous::Round(p) => p,
                    Rendezvous::Stop => panic!("stopped with work pending"),
                };
                assert_eq!(plan.len(), 1);
                assert_eq!(plan[0].victim, 0);
                assert_eq!(plan[0].thief, 1);
                // No actual engine here: deposit nothing, just exchange.
                let inbox = h.exchange();
                assert!(inbox.is_empty());
                assert_eq!(h.next_boundary(), SimTime::from_millis(20));
                // Round 1: everyone done and empty — protocol stops.
                let done = LoadSnapshot { depth: 0, backlog_us: 0, done: true };
                assert!(matches!(h.rendezvous(done), Rendezvous::Stop));
                // Detach after stop is a harmless no-op.
                h.detach();
            })
        };
        let ta = run(a, true);
        let tb = run(b, false);
        ta.join().unwrap();
        tb.join().unwrap();
    }

    #[test]
    fn detach_releases_a_waiting_peer() {
        let coord = StealCoordinator::new(2, SimDuration::from_millis(5));
        let mut a = coord.handle(0, Vec::new());
        let b = coord.handle(1, Vec::new());
        let tb = std::thread::spawn(move || {
            let mut b = b;
            // Peer is alone once `a` detaches: all-done with an empty plan
            // stops the protocol rather than waiting for the detached shard.
            matches!(
                b.rendezvous(LoadSnapshot { depth: 0, backlog_us: 0, done: true }),
                Rendezvous::Stop
            )
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        a.detach();
        assert!(tb.join().unwrap(), "peer should observe Stop after detach");
    }
}
