//! The threaded execution backend.
//!
//! [`ThreadedBackend`] implements [`ExecutionBackend`] over a
//! [`WorkerPool`]: `start_task` samples the task's synthetic execution time
//! (same latency models and RNG stream discipline as the simulator) and
//! hands it to the executor's worker thread, which sleeps the dilated
//! duration and reports completion. FIFO backlogs for the
//! immediate-selection pipelines live here, mirroring the simulator's
//! split between a server's running slot and its queue; per-executor
//! backlog length is bounded by `queue_capacity`.
//!
//! Faults: [`ThreadedBackend::with_faults`] installs the same seeded
//! [`FaultPlan`] semantics the simulator honours — each task's fate
//! (straggler-stretched duration, transient failure, timeout) is drawn from
//! the dedicated `"faults"` RNG stream at submission, and crash windows
//! surface as [`BackendEvent::ExecutorDown`]/[`BackendEvent::ExecutorUp`]
//! via [`ThreadedBackend::take_due_fault_events`]. A worker killed by a
//! crash keeps sleeping (threads cannot be cancelled); its eventual report
//! is recorded as a *zombie* and swallowed. Dead worker threads (panics)
//! are detected by [`ThreadedBackend::reap_dead`] and fold into the same
//! executor-down path, permanently.
//!
//! All methods run on the runtime's scheduler thread; the shared
//! [`RuntimeMetrics`] atomics exist so observer threads can snapshot state
//! without locks.

use crate::clock::DilatedClock;
use crate::worker::WorkerPool;
use rand::rngs::StdRng;
use schemble_core::backend::{BackendEvent, ExecutionBackend, ExecutorUsage};
use schemble_metrics::RuntimeMetrics;
use schemble_sim::rng::stream_rng;
use schemble_sim::{
    BatchConfig, FaultPlan, FaultState, FaultTransition, LatencyModel, SimDuration, SimTime,
};
use schemble_trace::{TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

struct RunningTask {
    query: u64,
    /// Sampled execution time, charged to busy accounting at completion.
    duration: SimDuration,
    /// `started + duration`: the availability estimate while running.
    completes_at: SimTime,
}

/// A not-yet-launched cross-query batch: `(query, sampled duration, doomed)`
/// members accumulated while the executor idles, launched when full or when
/// the batching window expires.
struct OpenBatch {
    members: Vec<(u64, SimDuration, bool)>,
    opened_at: SimTime,
}

/// A launched batch: one worker job (keyed by `rep`) stands in for the whole
/// pass; member fates are resolved together when its report arrives.
struct RunningBatch {
    rep: u64,
    /// `(query, doomed)` per member.
    members: Vec<(u64, bool)>,
    /// Batch-curve-dilated service time of the whole pass.
    duration: SimDuration,
    completes_at: SimTime,
}

/// [`ExecutionBackend`] over per-executor worker threads.
pub struct ThreadedBackend {
    latencies: Vec<LatencyModel>,
    rng: StdRng,
    pool: WorkerPool,
    clock: DilatedClock,
    running: Vec<Option<RunningTask>>,
    /// FIFO backlog per executor: `(query, sampled duration, doomed)`,
    /// duration and fate drawn at enqueue time like the simulator's
    /// `Server::enqueue`.
    backlog: Vec<VecDeque<(u64, SimDuration, bool)>>,
    queue_capacity: usize,
    /// Pending wake-ups requested by the engine.
    wakes: BinaryHeap<Reverse<SimTime>>,
    busy: Vec<SimDuration>,
    tasks: Vec<u64>,
    metrics: Arc<RuntimeMetrics>,
    trace: Arc<TraceSink>,
    /// Seeded fault-fate sampler; `None` without a plan.
    faults: Option<FaultState>,
    /// Crash/recovery schedule, sorted by time; `cursor` marks the next
    /// transition not yet surfaced.
    transitions: Vec<FaultTransition>,
    cursor: usize,
    /// Per-task timeout derived from the plan's latency quantile.
    timeouts: Vec<Option<SimDuration>>,
    down: Vec<bool>,
    /// Worker thread exited (panic); never recovers.
    dead: Vec<bool>,
    /// Queries whose running task was killed while the worker slept: the
    /// worker's eventual report must be swallowed, in FIFO order.
    zombies: Vec<VecDeque<u64>>,
    /// Cross-query batching; `None` keeps every path byte-identical to an
    /// unbatched backend.
    batching: Option<BatchConfig>,
    open_batches: Vec<Option<OpenBatch>>,
    running_batches: Vec<Option<RunningBatch>>,
    /// Monotonic batch-id source for [`TraceEvent::BatchFormed`].
    batch_seq: u64,
}

impl ThreadedBackend {
    /// A backend with one worker per entry of `latencies`, sampling
    /// execution times from the `(seed, stream)` RNG stream.
    pub fn new(
        latencies: Vec<LatencyModel>,
        seed: u64,
        stream: &str,
        pool: WorkerPool,
        clock: DilatedClock,
        queue_capacity: usize,
        metrics: Arc<RuntimeMetrics>,
    ) -> Self {
        assert_eq!(pool.len(), latencies.len(), "one worker per executor");
        assert_eq!(metrics.executors.len(), latencies.len());
        let n = latencies.len();
        Self {
            latencies,
            rng: stream_rng(seed, stream),
            pool,
            clock,
            running: (0..n).map(|_| None).collect(),
            backlog: (0..n).map(|_| VecDeque::new()).collect(),
            queue_capacity,
            wakes: BinaryHeap::new(),
            busy: vec![SimDuration::ZERO; n],
            tasks: vec![0; n],
            metrics: Arc::clone(&metrics),
            trace: TraceSink::disabled(),
            faults: None,
            transitions: Vec::new(),
            cursor: 0,
            timeouts: vec![None; n],
            down: vec![false; n],
            dead: vec![false; n],
            zombies: (0..n).map(|_| VecDeque::new()).collect(),
            batching: None,
            open_batches: (0..n).map(|_| None).collect(),
            running_batches: (0..n).map(|_| None).collect(),
            batch_seq: 0,
        }
    }

    /// Enables cross-query batching. An inactive config (`batch_max <= 1`)
    /// is ignored, keeping the backend byte-identical to an unbatched one.
    pub fn with_batching(mut self, config: BatchConfig) -> Self {
        if config.active() {
            self.batching = Some(config);
        }
        self
    }

    /// Emits task lifecycle events into `trace` (dilated-sim timestamps).
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Installs a seeded fault plan: identical fate-draw discipline to
    /// [`SimBackend::with_faults`](schemble_core::backend::SimBackend), so a
    /// wall run and a virtual run under the same plan inject the same
    /// per-task fates. A no-op plan changes nothing.
    pub fn with_faults(mut self, plan: FaultPlan, seed: u64) -> Self {
        if plan.is_noop() {
            return self;
        }
        let state = FaultState::new(plan.clone(), seed);
        self.timeouts = self.latencies.iter().map(|l| state.timeout_for(l)).collect();
        self.transitions = plan.transitions();
        self.faults = Some(state);
        self
    }

    /// Access to the worker pool (fault-injection tests poison workers).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    fn fate(&mut self, executor: usize, now: SimTime) -> (SimDuration, bool) {
        let sampled = self.latencies[executor].sample(&mut self.rng);
        match &mut self.faults {
            Some(f) => {
                let fate = f.task_fate(executor, now, sampled, self.timeouts[executor]);
                (fate.duration, fate.failed)
            }
            None => (sampled, false),
        }
    }

    fn launch(
        &mut self,
        executor: usize,
        query: u64,
        duration: SimDuration,
        doomed: bool,
        now: SimTime,
    ) {
        debug_assert!(self.running[executor].is_none());
        self.pool.submit(executor, query, self.clock.dilate(duration), doomed);
        self.running[executor] =
            Some(RunningTask { query, duration, completes_at: now + duration });
        self.metrics.counters.tasks_started.fetch_add(1, Relaxed);
        self.metrics.executors[executor].running.store(1, Relaxed);
        self.trace.emit(TraceEvent::TaskStart { t: now, query, executor: executor as u16 });
    }

    fn start_backlog_next(&mut self, executor: usize, now: SimTime) {
        if self.down[executor] {
            return;
        }
        if let Some((next_query, dur, doomed)) = self.backlog[executor].pop_front() {
            self.metrics.executors[executor]
                .queue_depth
                .store(self.backlog[executor].len() as u64, Relaxed);
            self.launch(executor, next_query, dur, doomed, now);
        }
    }

    /// Retires `executor`'s finished task and starts its next backlog task,
    /// if any. Call on receipt of the worker's completion message, before
    /// handing the event to the engine (mirrors `SimBackend::pop_event`).
    /// Returns `false` when the report belonged to a task already killed by
    /// a crash (a zombie) and must not reach the engine.
    pub fn complete(&mut self, executor: usize, query: u64, now: SimTime) -> bool {
        if self.zombies[executor].front() == Some(&query) {
            self.zombies[executor].pop_front();
            return false;
        }
        let task = self.running[executor].take().expect("completion from idle executor");
        assert_eq!(task.query, query, "completion for the wrong task");
        self.busy[executor] = self.busy[executor] + task.duration;
        self.tasks[executor] += 1;
        let g = &self.metrics.executors[executor];
        g.running.store(0, Relaxed);
        g.busy_micros.fetch_add(task.duration.as_micros(), Relaxed);
        g.tasks.fetch_add(1, Relaxed);
        self.metrics.counters.tasks_completed.fetch_add(1, Relaxed);
        self.trace.emit(TraceEvent::TaskDone { t: now, query, executor: executor as u16 });
        self.start_backlog_next(executor, now);
        true
    }

    /// Retires `executor`'s *failed* task (transient fault or timeout): its
    /// time is charged to busy accounting but it does not count as a
    /// completion. Returns `false` for zombie reports, like
    /// [`Self::complete`].
    pub fn fail(&mut self, executor: usize, query: u64, now: SimTime) -> bool {
        if self.zombies[executor].front() == Some(&query) {
            self.zombies[executor].pop_front();
            return false;
        }
        let task = self.running[executor].take().expect("failure from idle executor");
        assert_eq!(task.query, query, "failure for the wrong task");
        self.busy[executor] = self.busy[executor] + task.duration;
        let g = &self.metrics.executors[executor];
        g.running.store(0, Relaxed);
        g.busy_micros.fetch_add(task.duration.as_micros(), Relaxed);
        self.trace.emit(TraceEvent::TaskFailed { t: now, query, executor: executor as u16 });
        self.start_backlog_next(executor, now);
        true
    }

    /// Marks `executor` down: kills its running task (the worker keeps
    /// sleeping; the report becomes a zombie), drops its backlog, and
    /// returns the events the engine must observe, `ExecutorDown` first.
    fn bring_down(&mut self, executor: usize, now: SimTime) -> Vec<BackendEvent> {
        let mut out = Vec::new();
        self.down[executor] = true;
        self.metrics.executors[executor].up.store(0, Relaxed);
        self.trace.emit(TraceEvent::ExecutorDown { t: now, executor: executor as u16 });
        out.push(BackendEvent::ExecutorDown { executor });
        if let Some(task) = self.running[executor].take() {
            self.zombies[executor].push_back(task.query);
            // Charge only the time actually spent before the crash.
            let left = task.completes_at.saturating_since(now);
            let spent = SimDuration::from_micros(
                task.duration.as_micros().saturating_sub(left.as_micros()),
            );
            self.busy[executor] = self.busy[executor] + spent;
            let g = &self.metrics.executors[executor];
            g.running.store(0, Relaxed);
            g.busy_micros.fetch_add(spent.as_micros(), Relaxed);
            self.trace.emit(TraceEvent::TaskFailed {
                t: now,
                query: task.query,
                executor: executor as u16,
            });
            out.push(BackendEvent::TaskFailed { executor, query: task.query });
        }
        let mut casualties: Vec<u64> =
            self.backlog[executor].drain(..).map(|(q, _, _)| q).collect();
        self.metrics.executors[executor].queue_depth.store(0, Relaxed);
        // Batch members die with the executor: open members never ran; a
        // launched batch charges the time spent before the crash and its
        // rep's eventual worker report becomes a zombie.
        if let Some(open) = self.open_batches[executor].take() {
            casualties.extend(open.members.iter().map(|&(q, _, _)| q));
        }
        if let Some(run) = self.running_batches[executor].take() {
            self.zombies[executor].push_back(run.rep);
            let left = run.completes_at.saturating_since(now);
            let spent =
                SimDuration::from_micros(run.duration.as_micros().saturating_sub(left.as_micros()));
            self.busy[executor] = self.busy[executor] + spent;
            let g = &self.metrics.executors[executor];
            g.running.store(0, Relaxed);
            g.busy_micros.fetch_add(spent.as_micros(), Relaxed);
            casualties.extend(run.members.iter().map(|&(q, _)| q));
        }
        for query in casualties {
            self.trace.emit(TraceEvent::TaskFailed { t: now, query, executor: executor as u16 });
            out.push(BackendEvent::TaskFailed { executor, query });
        }
        out
    }

    /// Surfaces fault-plan transitions due at or before `now` as backend
    /// events (executor down/up plus the tasks a crash killed). Call at the
    /// top of the scheduler loop, before waiting on the channel.
    pub fn take_due_fault_events(&mut self, now: SimTime) -> Vec<BackendEvent> {
        let mut out = Vec::new();
        while self.cursor < self.transitions.len() && self.transitions[self.cursor].at <= now {
            let tr = self.transitions[self.cursor];
            self.cursor += 1;
            if tr.executor >= self.latencies.len() {
                continue;
            }
            if tr.up {
                if self.dead[tr.executor] {
                    continue; // a dead worker never recovers
                }
                self.down[tr.executor] = false;
                self.metrics.executors[tr.executor].up.store(1, Relaxed);
                self.trace.emit(TraceEvent::ExecutorUp { t: now, executor: tr.executor as u16 });
                out.push(BackendEvent::ExecutorUp { executor: tr.executor });
            } else if !self.down[tr.executor] {
                out.extend(self.bring_down(tr.executor, now));
            }
        }
        out
    }

    /// Detects worker threads that died (panicked) and marks their
    /// executors permanently down, returning the resulting events. Poll
    /// this from the scheduler loop's timeout path.
    pub fn reap_dead(&mut self, now: SimTime) -> Vec<BackendEvent> {
        let mut out = Vec::new();
        for e in 0..self.latencies.len() {
            if self.dead[e] || !self.pool.is_finished(e) {
                continue;
            }
            self.dead[e] = true;
            if !self.down[e] {
                out.extend(self.bring_down(e, now));
            }
        }
        out
    }

    /// Launches `executor`'s open batch: one worker job covering every
    /// member, with the service time of the longest member scaled by the
    /// batch curve. The job is keyed by the first member (`rep`); member
    /// fates are resolved together when its report arrives.
    fn launch_batch(&mut self, executor: usize, now: SimTime) {
        let Some(open) = self.open_batches[executor].take() else { return };
        let cfg = self.batching.expect("batching configured");
        let size = open.members.len();
        let longest = open.members.iter().map(|&(_, d, _)| d).max().expect("non-empty batch");
        let duration = cfg.curve.scale(longest, size);
        let rep = open.members[0].0;
        // The rep job is a pure timer for the batched pass: per-member fates
        // are applied at retirement, so it always reports `TaskDone`.
        self.pool.submit(executor, rep, self.clock.dilate(duration), false);
        let batch = self.batch_seq;
        self.batch_seq += 1;
        self.metrics.counters.tasks_started.fetch_add(size as u64, Relaxed);
        self.metrics.counters.tasks_batched.fetch_add(size as u64, Relaxed);
        self.metrics.batch_size.record(size as f64);
        self.metrics.executors[executor].running.store(1, Relaxed);
        let mut members = Vec::with_capacity(size);
        for &(query, _, doomed) in &open.members {
            self.trace.emit(TraceEvent::TaskStart { t: now, query, executor: executor as u16 });
            members.push((query, doomed));
        }
        self.trace.emit(TraceEvent::BatchFormed {
            t: now,
            executor: executor as u16,
            batch,
            size: size as u32,
        });
        self.running_batches[executor] =
            Some(RunningBatch { rep, members, duration, completes_at: now + duration });
    }

    /// Launches every open batch whose window expired at or before `now`.
    /// Poll from the scheduler loop's top, before waiting on the channel
    /// ([`Self::next_wake`] includes the earliest launch deadline).
    pub fn launch_due_batches(&mut self, now: SimTime) {
        let Some(cfg) = self.batching else { return };
        for k in 0..self.latencies.len() {
            if self.down[k] || self.running_batches[k].is_some() {
                continue;
            }
            let due = match &self.open_batches[k] {
                Some(open) => open.opened_at + cfg.window <= now,
                None => false,
            };
            if due {
                self.launch_batch(k, now);
            }
        }
    }

    /// Resolves a worker report that stands in for a whole batched pass: if
    /// `query` is the rep of `executor`'s running batch, the batch is
    /// retired (busy charged once, per-member lifecycle traces emitted) and
    /// its `(query, doomed)` members are returned for the caller to fan out
    /// to the engine. `None` means the report was an ordinary single task
    /// (or a zombie) and must take the normal [`Self::complete`] path.
    pub fn batch_members(
        &mut self,
        executor: usize,
        query: u64,
        now: SimTime,
    ) -> Option<Vec<(u64, bool)>> {
        if self.running_batches[executor].as_ref().map(|b| b.rep) != Some(query) {
            return None;
        }
        let run = self.running_batches[executor].take().expect("matched above");
        self.busy[executor] = self.busy[executor] + run.duration;
        let g = &self.metrics.executors[executor];
        g.running.store(0, Relaxed);
        g.busy_micros.fetch_add(run.duration.as_micros(), Relaxed);
        for &(q, doomed) in &run.members {
            if doomed {
                self.trace.emit(TraceEvent::TaskFailed {
                    t: now,
                    query: q,
                    executor: executor as u16,
                });
            } else {
                self.tasks[executor] += 1;
                g.tasks.fetch_add(1, Relaxed);
                self.metrics.counters.tasks_completed.fetch_add(1, Relaxed);
                self.trace.emit(TraceEvent::TaskDone {
                    t: now,
                    query: q,
                    executor: executor as u16,
                });
            }
        }
        Some(run.members)
    }

    /// True when no executor is running or holding backlog.
    pub fn all_idle(&self) -> bool {
        self.running.iter().all(Option::is_none)
            && self.backlog.iter().all(VecDeque::is_empty)
            && self.open_batches.iter().all(Option::is_none)
            && self.running_batches.iter().all(Option::is_none)
    }

    /// Earliest pending wake-up, fault transition, or batch-window expiry.
    pub fn next_wake(&self) -> Option<SimTime> {
        let wake = self.wakes.peek().map(|Reverse(t)| *t);
        let fault = self.transitions.get(self.cursor).map(|t| t.at);
        let launch = self.batching.and_then(|cfg| {
            self.open_batches.iter().flatten().map(|open| open.opened_at + cfg.window).min()
        });
        [wake, fault, launch].into_iter().flatten().min()
    }

    /// Pops one wake-up due at or before `now`; true if one fired.
    pub fn take_due_wake(&mut self, now: SimTime) -> bool {
        if self.wakes.peek().is_some_and(|Reverse(t)| *t <= now) {
            self.wakes.pop();
            true
        } else {
            false
        }
    }

    /// Stops the worker threads (after their current tasks) and joins them.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

impl ExecutionBackend for ThreadedBackend {
    fn executors(&self) -> usize {
        self.latencies.len()
    }

    fn is_idle(&self, executor: usize) -> bool {
        // An *open* batch leaves the executor idle — it is still accepting
        // members; only a launched batch occupies it.
        !self.down[executor]
            && self.running[executor].is_none()
            && self.running_batches[executor].is_none()
    }

    fn is_up(&self, executor: usize) -> bool {
        !self.down[executor]
    }

    fn idle_executors(&self) -> Vec<usize> {
        (0..self.running.len()).filter(|&k| self.is_idle(k)).collect()
    }

    fn available_at(&self, executor: usize, now: SimTime) -> SimTime {
        let mut at = match &self.running[executor] {
            Some(task) => task.completes_at.max(now),
            None => now,
        };
        for (_, dur, _) in &self.backlog[executor] {
            at += *dur;
        }
        if let Some(run) = &self.running_batches[executor] {
            at = at.max(run.completes_at);
        }
        if let (Some(cfg), Some(open)) = (&self.batching, &self.open_batches[executor]) {
            // Quote the *marginal* cost of joining the open batch (same
            // arithmetic as `SimBackend::available_at`): it launches at
            // `opened_at + window` at the latest and would then run one pass
            // of `s + 1` members, so `available_at + planned` equals the
            // predicted joined finish.
            let planned = self.latencies[executor].planned();
            let gamma = cfg.curve.gamma(open.members.len() + 1);
            let marginal = SimDuration::from_micros(
                (planned.as_micros() as f64 * (gamma - 1.0)).round() as u64,
            );
            at = at.max(open.opened_at + cfg.window + marginal);
        }
        if self.down[executor] {
            // A crashed executor frees up at its scheduled recovery; a dead
            // worker never does (steer the planner far away).
            let recovery = self.transitions[self.cursor..]
                .iter()
                .find(|t| t.executor == executor && t.up && t.at > now)
                .map(|t| t.at);
            at = match recovery {
                Some(r) if !self.dead[executor] => at.max(r),
                _ => at.max(now + SimDuration::from_micros(3_600_000_000)),
            };
        }
        at
    }

    fn start_task(&mut self, executor: usize, query: u64, now: SimTime) {
        assert!(self.running[executor].is_none(), "start_task on a busy executor");
        debug_assert!(!self.down[executor], "start_task on a down executor");
        debug_assert!(
            self.open_batches[executor].is_none() && self.running_batches[executor].is_none(),
            "start_task alongside a batch on executor {executor}"
        );
        let (duration, doomed) = self.fate(executor, now);
        self.launch(executor, query, duration, doomed, now);
    }

    fn submit_batch(&mut self, executor: usize, query: u64, now: SimTime) {
        let Some(cfg) = self.batching else {
            self.start_task(executor, query, now);
            return;
        };
        assert!(!self.down[executor], "submit_batch on a down executor");
        debug_assert!(
            self.running[executor].is_none() && self.running_batches[executor].is_none(),
            "open batches only exist while executor {executor} is idle"
        );
        // Same draw discipline as `start_task`: duration then fate, in
        // submission order, so a fixed seed yields the same per-task numbers
        // whether or not tasks end up co-batched.
        let (duration, doomed) = self.fate(executor, now);
        // `TaskEnqueue` marks the batch-queue wait; `TaskStart` lands at the
        // launch instant, so exporters see queue-wait vs service split.
        self.trace.emit(TraceEvent::TaskEnqueue { t: now, query, executor: executor as u16 });
        let batch = self.open_batches[executor]
            .get_or_insert_with(|| OpenBatch { members: Vec::new(), opened_at: now });
        batch.members.push((query, duration, doomed));
        if batch.members.len() >= cfg.batch_max {
            self.launch_batch(executor, now);
        }
    }

    fn open_batch_len(&self, executor: usize) -> usize {
        self.open_batches[executor].as_ref().map_or(0, |b| b.members.len())
    }

    fn enqueue_task(&mut self, executor: usize, query: u64, now: SimTime) {
        debug_assert!(!self.down[executor], "enqueue_task on a down executor");
        let (duration, doomed) = self.fate(executor, now);
        if self.running[executor].is_none() {
            self.launch(executor, query, duration, doomed, now);
            return;
        }
        assert!(
            self.backlog[executor].len() < self.queue_capacity,
            "executor {executor} backlog exceeded queue capacity {}",
            self.queue_capacity
        );
        self.backlog[executor].push_back((query, duration, doomed));
        self.metrics.executors[executor]
            .queue_depth
            .store(self.backlog[executor].len() as u64, Relaxed);
        self.trace.emit(TraceEvent::TaskEnqueue { t: now, query, executor: executor as u16 });
    }

    fn cancel_task(&mut self, executor: usize, query: u64, now: SimTime) -> bool {
        // A member of a not-yet-launched open batch never ran: remove it
        // outright, no busy time, no worker job.
        if let Some(open) = self.open_batches[executor].as_mut() {
            if let Some(i) = open.members.iter().position(|&(q, _, _)| q == query) {
                open.members.remove(i);
                if open.members.is_empty() {
                    self.open_batches[executor] = None;
                }
                return true;
            }
        }
        // A launched batch shares one worker pass; a single member cannot be
        // shed mid-flight. Refuse — the caller keeps it and its completion
        // lands normally.
        if self.running_batches[executor]
            .as_ref()
            .is_some_and(|b| b.members.iter().any(|&(q, _)| q == query))
        {
            return false;
        }
        if self.running[executor].as_ref().map(|t| t.query) != Some(query) {
            return false;
        }
        let task = self.running[executor].take().expect("matched above");
        // The worker keeps sleeping (threads cannot be cancelled); its
        // eventual report must be swallowed, exactly like a crash kill. The
        // backlog is untouched — unlike `bring_down`, the executor is fine.
        self.zombies[executor].push_back(task.query);
        // Charge only the time actually spent before the cancellation.
        let left = task.completes_at.saturating_since(now);
        let spent =
            SimDuration::from_micros(task.duration.as_micros().saturating_sub(left.as_micros()));
        self.busy[executor] = self.busy[executor] + spent;
        let g = &self.metrics.executors[executor];
        g.running.store(0, Relaxed);
        g.busy_micros.fetch_add(spent.as_micros(), Relaxed);
        self.start_backlog_next(executor, now);
        true
    }

    fn request_wake(&mut self, at: SimTime) {
        self.wakes.push(Reverse(at));
    }

    fn usage(&self) -> Vec<ExecutorUsage> {
        (0..self.latencies.len())
            .map(|k| ExecutorUsage { busy_secs: self.busy[k].as_secs_f64(), tasks: self.tasks[k] })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::RuntimeMsg;
    use schemble_sim::SimTime;
    use std::time::Duration;

    fn backend(
        ms: &[f64],
        dilation: f64,
    ) -> (ThreadedBackend, std::sync::mpsc::Receiver<RuntimeMsg>) {
        let latencies: Vec<LatencyModel> =
            ms.iter().map(|&m| LatencyModel::constant_millis(m)).collect();
        let (tx, rx) = std::sync::mpsc::sync_channel(64);
        let pool = WorkerPool::spawn(latencies.len(), tx);
        let clock = DilatedClock::start(dilation);
        let metrics = Arc::new(RuntimeMetrics::new(latencies.len()));
        (ThreadedBackend::new(latencies, 1, "test", pool, clock, 8, metrics), rx)
    }

    #[test]
    fn started_tasks_complete_through_workers() {
        let (mut b, rx) = backend(&[5.0, 5.0], 50.0);
        let now = SimTime::ZERO;
        b.start_task(0, 1, now);
        assert!(!b.is_idle(0));
        let msg = rx.recv_timeout(Duration::from_secs(2)).expect("completion");
        assert_eq!(msg, RuntimeMsg::TaskDone { executor: 0, query: 1 });
        assert!(b.complete(0, 1, now + SimDuration::from_millis(5)));
        assert!(b.is_idle(0));
        assert!(b.all_idle());
        assert_eq!(b.usage()[0].tasks, 1);
        b.shutdown();
    }

    #[test]
    fn backlog_feeds_executor_on_completion() {
        let (mut b, rx) = backend(&[2.0], 50.0);
        let now = SimTime::ZERO;
        b.enqueue_task(0, 1, now);
        b.enqueue_task(0, 2, now);
        assert_eq!(
            b.available_at(0, now),
            now + SimDuration::from_millis(4),
            "running + backlog at sampled durations"
        );
        let first = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(first, RuntimeMsg::TaskDone { executor: 0, query: 1 });
        assert!(b.complete(0, 1, now + SimDuration::from_millis(2)));
        // complete() must have launched query 2 automatically.
        let second = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(second, RuntimeMsg::TaskDone { executor: 0, query: 2 });
        assert!(b.complete(0, 2, now + SimDuration::from_millis(4)));
        assert!(b.all_idle());
        b.shutdown();
    }

    #[test]
    fn wake_heap_orders_and_fires() {
        let (mut b, _rx) = backend(&[1.0], 1000.0);
        b.request_wake(SimTime::from_millis(30));
        b.request_wake(SimTime::from_millis(10));
        assert_eq!(b.next_wake(), Some(SimTime::from_millis(10)));
        assert!(!b.take_due_wake(SimTime::from_millis(5)));
        assert!(b.take_due_wake(SimTime::from_millis(10)));
        assert_eq!(b.next_wake(), Some(SimTime::from_millis(30)));
        b.shutdown();
    }

    #[test]
    fn crash_window_downs_executor_and_swallows_zombie() {
        let (b, rx) = backend(&[5.0], 100.0);
        let mut plan = FaultPlan::default();
        plan.crashes.push(schemble_sim::CrashWindow {
            executor: 0,
            from: SimTime::from_millis(1),
            until: SimTime::from_millis(20),
        });
        let mut b = b.with_faults(plan, 1);
        b.start_task(0, 7, SimTime::ZERO);
        assert_eq!(b.next_wake(), Some(SimTime::from_millis(1)));
        let events = b.take_due_fault_events(SimTime::from_millis(1));
        assert_eq!(
            events,
            vec![
                BackendEvent::ExecutorDown { executor: 0 },
                BackendEvent::TaskFailed { executor: 0, query: 7 },
            ]
        );
        assert!(!b.is_up(0) && !b.is_idle(0));
        // Down executor advertises its recovery time.
        assert_eq!(b.available_at(0, SimTime::from_millis(1)), SimTime::from_millis(20));
        // The worker's late report is a zombie: swallowed, not delivered.
        let msg = rx.recv_timeout(Duration::from_secs(2)).expect("zombie report");
        assert_eq!(msg, RuntimeMsg::TaskDone { executor: 0, query: 7 });
        assert!(!b.complete(0, 7, SimTime::from_millis(5)));
        let events = b.take_due_fault_events(SimTime::from_millis(20));
        assert_eq!(events, vec![BackendEvent::ExecutorUp { executor: 0 }]);
        assert!(b.is_up(0) && b.is_idle(0));
        b.shutdown();
    }

    #[test]
    fn cancel_frees_executor_and_swallows_zombie_report() {
        let (mut b, rx) = backend(&[5.0], 100.0);
        b.start_task(0, 3, SimTime::ZERO);
        assert!(b.cancel_task(0, 3, SimTime::from_millis(2)));
        assert!(b.is_idle(0), "cancelled executor is free for new work");
        assert_eq!(b.usage()[0].tasks, 0, "a quit task is not a completion");
        // A second cancel (or one for a query not running) is refused.
        assert!(!b.cancel_task(0, 3, SimTime::from_millis(2)));
        // The worker's late report is a zombie: swallowed, not delivered.
        let msg = rx.recv_timeout(Duration::from_secs(2)).expect("zombie report");
        assert_eq!(msg, RuntimeMsg::TaskDone { executor: 0, query: 3 });
        assert!(!b.complete(0, 3, SimTime::from_millis(5)));
        b.shutdown();
    }

    #[test]
    fn full_batch_launches_and_resolves_members_from_one_report() {
        let (b, rx) = backend(&[5.0], 100.0);
        let mut b = b.with_batching(BatchConfig::new(2, SimDuration::from_millis(2)));
        let now = SimTime::ZERO;
        b.submit_batch(0, 1, now);
        assert_eq!(b.open_batch_len(0), 1);
        assert!(b.is_idle(0), "an open batch keeps the executor joinable");
        assert!(!b.all_idle(), "an open batch holds work");
        b.submit_batch(0, 2, now);
        // Full: launched as one worker job keyed by the first member.
        assert_eq!(b.open_batch_len(0), 0);
        assert!(!b.is_idle(0));
        let msg = rx.recv_timeout(Duration::from_secs(2)).expect("rep report");
        assert_eq!(msg, RuntimeMsg::TaskDone { executor: 0, query: 1 });
        // gamma(2) = 1.15 scales the 5ms pass to 5.75ms.
        let done = now + SimDuration::from_micros(5_750);
        assert_eq!(b.batch_members(0, 9, done), None, "not the rep");
        let members = b.batch_members(0, 1, done).expect("rep resolves the batch");
        assert_eq!(members, vec![(1, false), (2, false)]);
        assert!(b.all_idle());
        assert_eq!(b.usage()[0].tasks, 2, "both members completed");
        assert!((b.usage()[0].busy_secs - 0.00575).abs() < 1e-9, "busy charged once per pass");
        b.shutdown();
    }

    #[test]
    fn window_expiry_launches_the_open_batch() {
        let (b, rx) = backend(&[5.0], 100.0);
        let mut b = b.with_batching(BatchConfig::new(4, SimDuration::from_millis(2)));
        b.submit_batch(0, 7, SimTime::ZERO);
        assert_eq!(b.next_wake(), Some(SimTime::from_millis(2)), "launch deadline is a wake");
        b.launch_due_batches(SimTime::from_millis(1));
        assert_eq!(b.open_batch_len(0), 1, "window not expired yet");
        b.launch_due_batches(SimTime::from_millis(2));
        assert_eq!(b.open_batch_len(0), 0);
        let msg = rx.recv_timeout(Duration::from_secs(2)).expect("rep report");
        assert_eq!(msg, RuntimeMsg::TaskDone { executor: 0, query: 7 });
        // A singleton pass runs at gamma(1) = 1: plain 5ms.
        let members = b.batch_members(0, 7, SimTime::from_millis(7)).expect("resolved");
        assert_eq!(members, vec![(7, false)]);
        assert!(b.all_idle());
        b.shutdown();
    }

    #[test]
    fn cancel_removes_open_member_but_refuses_launched_member() {
        let (b, _rx) = backend(&[5.0], 100.0);
        let mut b = b.with_batching(BatchConfig::new(2, SimDuration::from_millis(2)));
        b.submit_batch(0, 1, SimTime::ZERO);
        assert!(b.cancel_task(0, 1, SimTime::ZERO), "open member is removable");
        assert!(b.all_idle(), "cancelled singleton dissolves the batch");
        b.submit_batch(0, 2, SimTime::ZERO);
        b.submit_batch(0, 3, SimTime::ZERO); // full → launched
        assert!(!b.cancel_task(0, 3, SimTime::from_millis(1)), "launched member is committed");
        b.shutdown();
    }

    #[test]
    fn crash_kills_batches_and_swallows_the_rep_report() {
        let (b, rx) = backend(&[5.0], 100.0);
        let mut plan = FaultPlan::default();
        plan.crashes.push(schemble_sim::CrashWindow {
            executor: 0,
            from: SimTime::from_millis(1),
            until: SimTime::from_millis(20),
        });
        let b = b.with_faults(plan, 1);
        let mut b = b.with_batching(BatchConfig::new(2, SimDuration::from_millis(2)));
        b.submit_batch(0, 4, SimTime::ZERO);
        b.submit_batch(0, 5, SimTime::ZERO); // full → launched
        let events = b.take_due_fault_events(SimTime::from_millis(1));
        assert_eq!(
            events,
            vec![
                BackendEvent::ExecutorDown { executor: 0 },
                BackendEvent::TaskFailed { executor: 0, query: 4 },
                BackendEvent::TaskFailed { executor: 0, query: 5 },
            ]
        );
        // The rep's late report is a zombie: no batch left to resolve, and
        // the ordinary completion path swallows it.
        let msg = rx.recv_timeout(Duration::from_secs(2)).expect("zombie rep report");
        assert_eq!(msg, RuntimeMsg::TaskDone { executor: 0, query: 4 });
        assert_eq!(b.batch_members(0, 4, SimTime::from_millis(6)), None);
        assert!(!b.complete(0, 4, SimTime::from_millis(6)));
        b.shutdown();
    }

    #[test]
    fn reap_dead_marks_poisoned_worker_down_forever() {
        let (mut b, _rx) = backend(&[1.0, 1.0], 1000.0);
        b.pool().poison(0);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !b.pool().is_finished(0) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let events = b.reap_dead(SimTime::from_millis(3));
        assert_eq!(events, vec![BackendEvent::ExecutorDown { executor: 0 }]);
        assert!(!b.is_up(0));
        assert!(b.is_up(1));
        assert!(b.reap_dead(SimTime::from_millis(4)).is_empty(), "reported once");
        // Far-future availability steers the planner away for good.
        assert!(b.available_at(0, SimTime::from_millis(4)) > SimTime::from_secs_f64(60.0));
        b.shutdown();
    }
}
