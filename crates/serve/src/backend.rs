//! The threaded execution backend.
//!
//! [`ThreadedBackend`] implements [`ExecutionBackend`] over a
//! [`WorkerPool`]: `start_task` samples the task's synthetic execution time
//! (same latency models and RNG stream discipline as the simulator) and
//! hands it to the executor's worker thread, which sleeps the dilated
//! duration and reports completion. FIFO backlogs for the
//! immediate-selection pipelines live here, mirroring the simulator's
//! split between a server's running slot and its queue; per-executor
//! backlog length is bounded by `queue_capacity`.
//!
//! All methods run on the runtime's scheduler thread; the shared
//! [`RuntimeMetrics`] atomics exist so observer threads can snapshot state
//! without locks.

use crate::clock::DilatedClock;
use crate::worker::WorkerPool;
use rand::rngs::StdRng;
use schemble_core::backend::{ExecutionBackend, ExecutorUsage};
use schemble_metrics::RuntimeMetrics;
use schemble_sim::rng::stream_rng;
use schemble_sim::{LatencyModel, SimDuration, SimTime};
use schemble_trace::{TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

struct RunningTask {
    query: u64,
    /// Sampled execution time, charged to busy accounting at completion.
    duration: SimDuration,
    /// `started + duration`: the availability estimate while running.
    completes_at: SimTime,
}

/// [`ExecutionBackend`] over per-executor worker threads.
pub struct ThreadedBackend {
    latencies: Vec<LatencyModel>,
    rng: StdRng,
    pool: WorkerPool,
    clock: DilatedClock,
    running: Vec<Option<RunningTask>>,
    /// FIFO backlog per executor: `(query, sampled duration)`, duration
    /// drawn at enqueue time like the simulator's `Server::enqueue`.
    backlog: Vec<VecDeque<(u64, SimDuration)>>,
    queue_capacity: usize,
    /// Pending wake-ups requested by the engine.
    wakes: BinaryHeap<Reverse<SimTime>>,
    busy: Vec<SimDuration>,
    tasks: Vec<u64>,
    metrics: Arc<RuntimeMetrics>,
    trace: Arc<TraceSink>,
}

impl ThreadedBackend {
    /// A backend with one worker per entry of `latencies`, sampling
    /// execution times from the `(seed, stream)` RNG stream.
    pub fn new(
        latencies: Vec<LatencyModel>,
        seed: u64,
        stream: &str,
        pool: WorkerPool,
        clock: DilatedClock,
        queue_capacity: usize,
        metrics: Arc<RuntimeMetrics>,
    ) -> Self {
        assert_eq!(pool.len(), latencies.len(), "one worker per executor");
        assert_eq!(metrics.executors.len(), latencies.len());
        let n = latencies.len();
        Self {
            latencies,
            rng: stream_rng(seed, stream),
            pool,
            clock,
            running: (0..n).map(|_| None).collect(),
            backlog: (0..n).map(|_| VecDeque::new()).collect(),
            queue_capacity,
            wakes: BinaryHeap::new(),
            busy: vec![SimDuration::ZERO; n],
            tasks: vec![0; n],
            metrics: Arc::clone(&metrics),
            trace: TraceSink::disabled(),
        }
    }

    /// Emits task lifecycle events into `trace` (dilated-sim timestamps).
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    fn launch(&mut self, executor: usize, query: u64, duration: SimDuration, now: SimTime) {
        debug_assert!(self.running[executor].is_none());
        self.pool.submit(executor, query, self.clock.dilate(duration));
        self.running[executor] =
            Some(RunningTask { query, duration, completes_at: now + duration });
        self.metrics.counters.tasks_started.fetch_add(1, Relaxed);
        self.metrics.executors[executor].running.store(1, Relaxed);
        self.trace.emit(TraceEvent::TaskStart { t: now, query, executor: executor as u16 });
    }

    /// Retires `executor`'s finished task and starts its next backlog task,
    /// if any. Call on receipt of the worker's completion message, before
    /// handing the event to the engine (mirrors `SimBackend::pop_event`).
    pub fn complete(&mut self, executor: usize, query: u64, now: SimTime) {
        let task = self.running[executor].take().expect("completion from idle executor");
        assert_eq!(task.query, query, "completion for the wrong task");
        self.busy[executor] = self.busy[executor] + task.duration;
        self.tasks[executor] += 1;
        let g = &self.metrics.executors[executor];
        g.running.store(0, Relaxed);
        g.busy_micros.fetch_add(task.duration.as_micros(), Relaxed);
        g.tasks.fetch_add(1, Relaxed);
        self.metrics.counters.tasks_completed.fetch_add(1, Relaxed);
        self.trace.emit(TraceEvent::TaskDone { t: now, query, executor: executor as u16 });
        if let Some((next_query, dur)) = self.backlog[executor].pop_front() {
            g.queue_depth.store(self.backlog[executor].len() as u64, Relaxed);
            self.launch(executor, next_query, dur, now);
        }
    }

    /// True when no executor is running or holding backlog.
    pub fn all_idle(&self) -> bool {
        self.running.iter().all(Option::is_none) && self.backlog.iter().all(VecDeque::is_empty)
    }

    /// Earliest pending wake-up, if any.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.wakes.peek().map(|Reverse(t)| *t)
    }

    /// Pops one wake-up due at or before `now`; true if one fired.
    pub fn take_due_wake(&mut self, now: SimTime) -> bool {
        if self.wakes.peek().is_some_and(|Reverse(t)| *t <= now) {
            self.wakes.pop();
            true
        } else {
            false
        }
    }

    /// Stops the worker threads (after their current tasks) and joins them.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

impl ExecutionBackend for ThreadedBackend {
    fn executors(&self) -> usize {
        self.latencies.len()
    }

    fn is_idle(&self, executor: usize) -> bool {
        self.running[executor].is_none()
    }

    fn idle_executors(&self) -> Vec<usize> {
        (0..self.running.len()).filter(|&k| self.running[k].is_none()).collect()
    }

    fn available_at(&self, executor: usize, now: SimTime) -> SimTime {
        let mut at = match &self.running[executor] {
            Some(task) => task.completes_at.max(now),
            None => now,
        };
        for (_, dur) in &self.backlog[executor] {
            at += *dur;
        }
        at
    }

    fn start_task(&mut self, executor: usize, query: u64, now: SimTime) {
        assert!(self.running[executor].is_none(), "start_task on a busy executor");
        let duration = self.latencies[executor].sample(&mut self.rng);
        self.launch(executor, query, duration, now);
    }

    fn enqueue_task(&mut self, executor: usize, query: u64, now: SimTime) {
        let duration = self.latencies[executor].sample(&mut self.rng);
        if self.running[executor].is_none() {
            self.launch(executor, query, duration, now);
            return;
        }
        assert!(
            self.backlog[executor].len() < self.queue_capacity,
            "executor {executor} backlog exceeded queue capacity {}",
            self.queue_capacity
        );
        self.backlog[executor].push_back((query, duration));
        self.metrics.executors[executor]
            .queue_depth
            .store(self.backlog[executor].len() as u64, Relaxed);
        self.trace.emit(TraceEvent::TaskEnqueue { t: now, query, executor: executor as u16 });
    }

    fn request_wake(&mut self, at: SimTime) {
        self.wakes.push(Reverse(at));
    }

    fn usage(&self) -> Vec<ExecutorUsage> {
        (0..self.latencies.len())
            .map(|k| ExecutorUsage { busy_secs: self.busy[k].as_secs_f64(), tasks: self.tasks[k] })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::RuntimeMsg;
    use std::time::Duration;

    fn backend(
        ms: &[f64],
        dilation: f64,
    ) -> (ThreadedBackend, std::sync::mpsc::Receiver<RuntimeMsg>) {
        let latencies: Vec<LatencyModel> =
            ms.iter().map(|&m| LatencyModel::constant_millis(m)).collect();
        let (tx, rx) = std::sync::mpsc::sync_channel(64);
        let pool = WorkerPool::spawn(latencies.len(), tx);
        let clock = DilatedClock::start(dilation);
        let metrics = Arc::new(RuntimeMetrics::new(latencies.len()));
        (ThreadedBackend::new(latencies, 1, "test", pool, clock, 8, metrics), rx)
    }

    #[test]
    fn started_tasks_complete_through_workers() {
        let (mut b, rx) = backend(&[5.0, 5.0], 50.0);
        let now = SimTime::ZERO;
        b.start_task(0, 1, now);
        assert!(!b.is_idle(0));
        let msg = rx.recv_timeout(Duration::from_secs(2)).expect("completion");
        assert_eq!(msg, RuntimeMsg::TaskDone { executor: 0, query: 1 });
        b.complete(0, 1, now + SimDuration::from_millis(5));
        assert!(b.is_idle(0));
        assert!(b.all_idle());
        assert_eq!(b.usage()[0].tasks, 1);
        b.shutdown();
    }

    #[test]
    fn backlog_feeds_executor_on_completion() {
        let (mut b, rx) = backend(&[2.0], 50.0);
        let now = SimTime::ZERO;
        b.enqueue_task(0, 1, now);
        b.enqueue_task(0, 2, now);
        assert_eq!(
            b.available_at(0, now),
            now + SimDuration::from_millis(4),
            "running + backlog at sampled durations"
        );
        let first = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(first, RuntimeMsg::TaskDone { executor: 0, query: 1 });
        b.complete(0, 1, now + SimDuration::from_millis(2));
        // complete() must have launched query 2 automatically.
        let second = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(second, RuntimeMsg::TaskDone { executor: 0, query: 2 });
        b.complete(0, 2, now + SimDuration::from_millis(4));
        assert!(b.all_idle());
        b.shutdown();
    }

    #[test]
    fn wake_heap_orders_and_fires() {
        let (mut b, _rx) = backend(&[1.0], 1000.0);
        b.request_wake(SimTime::from_millis(30));
        b.request_wake(SimTime::from_millis(10));
        assert_eq!(b.next_wake(), Some(SimTime::from_millis(10)));
        assert!(!b.take_due_wake(SimTime::from_millis(5)));
        assert!(b.take_due_wake(SimTime::from_millis(10)));
        assert_eq!(b.next_wake(), Some(SimTime::from_millis(30)));
        b.shutdown();
    }
}
