//! Per-executor worker threads.
//!
//! Each executor (base-model instance) gets one OS thread that realises
//! synthetic model latencies as actual (dilated) sleeps. Work reaches a
//! worker over a **bounded** channel sized for the single running task —
//! backlog queues live in the backend, mirroring the simulator's
//! [`Server`](schemble_sim::Server) split between the running slot and the
//! FIFO queue. Completions flow back to the runtime loop over a shared
//! bounded channel, so a stalled scheduler exerts backpressure instead of
//! accumulating unbounded buffers.
//!
//! Faults: a task submitted with `failed = true` (its fate was drawn from
//! the run's [`FaultPlan`](schemble_sim::FaultPlan)) still occupies the
//! worker for its sampled time but reports [`RuntimeMsg::TaskFailed`]
//! instead of a completion. A worker thread that *dies* (panics) is visible
//! through [`WorkerPool::is_finished`]; the backend folds that into the
//! executor-down path.

use crate::clock::precise_sleep;
use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages to a worker thread.
pub enum WorkerMsg {
    /// Realise one task: sleep `wall`, then report completion or failure.
    Run {
        /// Query the task belongs to.
        query: u64,
        /// Dilated wall-clock execution time.
        wall: Duration,
        /// The task's predetermined fate: report `TaskFailed` instead of
        /// `TaskDone` after the sleep.
        failed: bool,
    },
    /// Panic the worker thread. Fault-injection instrumentation: lets tests
    /// prove a dead worker is detected and degraded around, not hung on.
    Poison,
    /// Exit the worker loop.
    Shutdown,
}

/// Messages into the runtime's scheduler loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMsg {
    /// The load generator delivered query `workload.queries[i]`.
    Arrive(usize),
    /// `executor` finished its task for `query`.
    TaskDone {
        /// Executor index.
        executor: usize,
        /// Query id.
        query: u64,
    },
    /// `executor`'s task for `query` failed (transient fault or timeout).
    TaskFailed {
        /// Executor index.
        executor: usize,
        /// Query id.
        query: u64,
    },
    /// The load generator replayed the whole trace.
    ArrivalsDone,
}

/// Handles to the spawned worker threads.
pub struct WorkerPool {
    senders: Vec<SyncSender<WorkerMsg>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns one worker per executor, reporting completions to `done_tx`.
    pub fn spawn(executors: usize, done_tx: SyncSender<RuntimeMsg>) -> Self {
        let mut senders = Vec::with_capacity(executors);
        let mut handles = Vec::with_capacity(executors);
        for executor in 0..executors {
            // Small bound: normally holds just the running task plus a
            // shutdown message. Crash/recovery cycles can resubmit while the
            // worker is still sleeping off a killed (zombie) task, so leave
            // a little headroom before try_send would fail.
            let (tx, rx) = std::sync::mpsc::sync_channel::<WorkerMsg>(8);
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("schemble-worker-{executor}"))
                .spawn(move || worker_loop(executor, rx, done))
                .expect("spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True when the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// True when `executor`'s thread has exited — after [`Self::shutdown`],
    /// or because it panicked. The runtime polls this to detect dead
    /// workers and mark their executors down.
    pub fn is_finished(&self, executor: usize) -> bool {
        self.handles[executor].is_finished()
    }

    /// Hands `executor` a task. Panics if the worker's slot is full — the
    /// backend must only submit to idle executors (non-preemptive contract).
    pub fn submit(&self, executor: usize, query: u64, wall: Duration, failed: bool) {
        self.senders[executor]
            .try_send(WorkerMsg::Run { query, wall, failed })
            .expect("submitted to a busy executor");
    }

    /// Makes `executor`'s thread panic (fault injection for tests).
    pub fn poison(&self, executor: usize) {
        let _ = self.senders[executor].try_send(WorkerMsg::Poison);
    }

    /// Stops all workers after their current task and joins them.
    pub fn shutdown(self) {
        for tx in &self.senders {
            // A worker gone after a disconnect (panic) is already stopped.
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        drop(self.senders);
        for handle in self.handles {
            // A panicked worker joins with Err; shutdown proceeds anyway.
            let _ = handle.join();
        }
    }
}

fn worker_loop(executor: usize, rx: Receiver<WorkerMsg>, done: SyncSender<RuntimeMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Run { query, wall, failed } => {
                precise_sleep(wall);
                let report = if failed {
                    RuntimeMsg::TaskFailed { executor, query }
                } else {
                    RuntimeMsg::TaskDone { executor, query }
                };
                // The runtime dropping its receiver means shutdown; exit.
                if done.send(report).is_err() {
                    return;
                }
            }
            WorkerMsg::Poison => panic!("worker {executor} poisoned (fault injection)"),
            WorkerMsg::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_realise_tasks_and_report() {
        let (done_tx, done_rx) = std::sync::mpsc::sync_channel(16);
        let pool = WorkerPool::spawn(2, done_tx);
        assert_eq!(pool.len(), 2);
        pool.submit(0, 7, Duration::from_millis(2), false);
        pool.submit(1, 8, Duration::from_millis(1), false);
        let mut got: Vec<RuntimeMsg> = (0..2).map(|_| done_rx.recv().unwrap()).collect();
        got.sort_by_key(|m| match m {
            RuntimeMsg::TaskDone { executor, .. } => *executor,
            _ => usize::MAX,
        });
        assert_eq!(
            got,
            vec![
                RuntimeMsg::TaskDone { executor: 0, query: 7 },
                RuntimeMsg::TaskDone { executor: 1, query: 8 },
            ]
        );
        pool.shutdown();
    }

    #[test]
    fn doomed_tasks_report_failure() {
        let (done_tx, done_rx) = std::sync::mpsc::sync_channel(16);
        let pool = WorkerPool::spawn(1, done_tx);
        pool.submit(0, 3, Duration::from_millis(1), true);
        assert_eq!(done_rx.recv().unwrap(), RuntimeMsg::TaskFailed { executor: 0, query: 3 });
        pool.shutdown();
    }

    #[test]
    fn poisoned_worker_is_detected_and_shutdown_survives() {
        let (done_tx, _done_rx) = std::sync::mpsc::sync_channel(16);
        let pool = WorkerPool::spawn(2, done_tx);
        assert!(!pool.is_finished(0));
        pool.poison(0);
        // The panic unwinds promptly; poll until the handle reports it.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !pool.is_finished(0) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(pool.is_finished(0), "dead worker must be observable");
        assert!(!pool.is_finished(1), "healthy worker unaffected");
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_idle_workers() {
        let (done_tx, _done_rx) = std::sync::mpsc::sync_channel(1);
        let pool = WorkerPool::spawn(3, done_tx);
        pool.shutdown();
    }
}
