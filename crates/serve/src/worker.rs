//! Per-executor worker threads.
//!
//! Each executor (base-model instance) gets one OS thread that realises
//! synthetic model latencies as actual (dilated) sleeps. Work reaches a
//! worker over a **bounded** channel sized for the single running task —
//! backlog queues live in the backend, mirroring the simulator's
//! [`Server`](schemble_sim::Server) split between the running slot and the
//! FIFO queue. Completions flow back to the runtime loop over a shared
//! bounded channel, so a stalled scheduler exerts backpressure instead of
//! accumulating unbounded buffers.

use crate::clock::precise_sleep;
use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages to a worker thread.
pub enum WorkerMsg {
    /// Realise one task: sleep `wall`, then report completion.
    Run {
        /// Query the task belongs to.
        query: u64,
        /// Dilated wall-clock execution time.
        wall: Duration,
    },
    /// Exit the worker loop.
    Shutdown,
}

/// Messages into the runtime's scheduler loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMsg {
    /// The load generator delivered query `workload.queries[i]`.
    Arrive(usize),
    /// `executor` finished its task for `query`.
    TaskDone {
        /// Executor index.
        executor: usize,
        /// Query id.
        query: u64,
    },
    /// The load generator replayed the whole trace.
    ArrivalsDone,
}

/// Handles to the spawned worker threads.
pub struct WorkerPool {
    senders: Vec<SyncSender<WorkerMsg>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns one worker per executor, reporting completions to `done_tx`.
    pub fn spawn(executors: usize, done_tx: SyncSender<RuntimeMsg>) -> Self {
        let mut senders = Vec::with_capacity(executors);
        let mut handles = Vec::with_capacity(executors);
        for executor in 0..executors {
            // Capacity 2: the running task plus a shutdown message — the
            // backend only submits to idle executors, so this never blocks.
            let (tx, rx) = std::sync::mpsc::sync_channel::<WorkerMsg>(2);
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("schemble-worker-{executor}"))
                .spawn(move || worker_loop(executor, rx, done))
                .expect("spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True when the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Hands `executor` a task. Panics if the worker's slot is full — the
    /// backend must only submit to idle executors (non-preemptive contract).
    pub fn submit(&self, executor: usize, query: u64, wall: Duration) {
        self.senders[executor]
            .try_send(WorkerMsg::Run { query, wall })
            .expect("submitted to a busy executor");
    }

    /// Stops all workers after their current task and joins them.
    pub fn shutdown(self) {
        for tx in &self.senders {
            // A worker gone after a disconnect (panic) is already stopped.
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        drop(self.senders);
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(executor: usize, rx: Receiver<WorkerMsg>, done: SyncSender<RuntimeMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Run { query, wall } => {
                precise_sleep(wall);
                // The runtime dropping its receiver means shutdown; exit.
                if done.send(RuntimeMsg::TaskDone { executor, query }).is_err() {
                    return;
                }
            }
            WorkerMsg::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_realise_tasks_and_report() {
        let (done_tx, done_rx) = std::sync::mpsc::sync_channel(16);
        let pool = WorkerPool::spawn(2, done_tx);
        assert_eq!(pool.len(), 2);
        pool.submit(0, 7, Duration::from_millis(2));
        pool.submit(1, 8, Duration::from_millis(1));
        let mut got: Vec<RuntimeMsg> = (0..2).map(|_| done_rx.recv().unwrap()).collect();
        got.sort_by_key(|m| match m {
            RuntimeMsg::TaskDone { executor, .. } => *executor,
            _ => usize::MAX,
        });
        assert_eq!(
            got,
            vec![
                RuntimeMsg::TaskDone { executor: 0, query: 7 },
                RuntimeMsg::TaskDone { executor: 1, query: 8 },
            ]
        );
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_idle_workers() {
        let (done_tx, _done_rx) = std::sync::mpsc::sync_channel(1);
        let pool = WorkerPool::spawn(3, done_tx);
        pool.shutdown();
    }
}
