//! Properties of the sharded serving runtime.
//!
//! Conservation must hold *globally* — summed over every shard, each
//! submitted query resolves exactly once — and the merged outputs
//! (Prometheus text, audit line set, trace stream, per-query records) must
//! be invariant to thread interleaving: re-running the same sharded
//! configuration gives byte-identical merged artifacts even though the
//! shard threads race differently every time.

use proptest::prelude::*;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::schemble::SchembleConfig;
use schemble_core::pipeline::AdmissionMode;
use schemble_core::predictor::OnlineScorer;
use schemble_core::scheduler::DpScheduler;
use schemble_data::{TaskKind, Workload};
use schemble_models::Ensemble;
use schemble_serve::{serve_schemble, ClockMode, ServeConfig, ServeReport, ShardRouter};
use schemble_trace::{audit_records, prometheus_text, TraceSink};
use std::collections::HashSet;
use std::sync::Arc;

struct Fixture {
    ensemble: Ensemble,
    pipeline: SchembleConfig,
    workload: Workload,
    seed: u64,
}

fn fixture(seed: u64, n_queries: usize, rate: f64, deadline_ms: f64, force_all: bool) -> Fixture {
    let mut config = ExperimentConfig::small(TaskKind::TextMatching, seed);
    config.n_queries = n_queries;
    config.traffic = Traffic::Poisson { rate_per_sec: rate };
    let mut config = config.with_deadline_millis(deadline_ms);
    if force_all {
        config.admission = AdmissionMode::ForceAll;
    }
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;
    let seed = ctx.config.seed;
    Fixture { ensemble: ctx.ensemble, pipeline, workload, seed }
}

/// One sharded virtual-clock run; returns the report plus its exported
/// artifacts (Prometheus text sans wall-clock planning profile, audit
/// lines, merged trace length).
fn run_sharded(fx: &Fixture, shards: usize) -> (ServeReport, String, Vec<String>, usize) {
    let sink = TraceSink::enabled();
    let config = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        shards,
        ..ServeConfig::default()
    };
    let report = serve_schemble(&fx.ensemble, &fx.pipeline, &fx.workload, fx.seed, &config);
    let events = sink.drain();
    // The planning profile holds wall-clock measurements (genuinely
    // timing-dependent), so the determinism comparison renders without it.
    let prom = prometheus_text(&report.metrics, report.sim_secs, None);
    let audit: Vec<String> = audit_records(&events).iter().map(|r| r.to_json_line()).collect();
    (report, prom, audit, events.len())
}

proptest! {
    // Each case runs a full pipeline several times; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Global conservation across shards: submitted == completed + degraded
    /// + rejected + expired summed over shards, one record per query, and
    /// the merged record ids are exactly the workload's ids.
    #[test]
    fn sharded_serve_conserves_queries_globally(
        seed in 0u64..1000,
        shards in 2usize..=4,
        rate in 10.0f64..80.0,
        deadline_ms in 50.0f64..200.0,
        force_all in proptest::bool::ANY,
    ) {
        let fx = fixture(seed, 120, rate, deadline_ms, force_all);
        let n = fx.workload.len();
        let (report, _, audit, _) = run_sharded(&fx, shards);
        let s = &report.stats;
        prop_assert_eq!(s.submitted, n as u64, "every arrival submitted");
        prop_assert_eq!(
            s.submitted,
            s.completed + s.degraded + s.rejected + s.expired,
            "outcomes partition the submitted set"
        );
        prop_assert_eq!(s.open(), 0, "no query left open in any shard");
        prop_assert_eq!(report.summary.len(), n, "one record per query");
        let ids: HashSet<u64> = report.summary.records().iter().map(|r| r.id).collect();
        prop_assert_eq!(ids, (0..n as u64).collect::<HashSet<u64>>(), "global ids restored");
        prop_assert_eq!(audit.len(), n, "one audit line per query");
        // The merged runtime counters agree with the engine stats.
        prop_assert_eq!(report.snapshot.submitted, s.submitted);
        prop_assert_eq!(report.snapshot.completed, s.completed);
        prop_assert_eq!(report.snapshot.open, 0);
        if force_all {
            prop_assert_eq!(s.rejected, 0, "ForceAll never rejects");
        }
    }

    /// Interleaving invariance: the same sharded configuration re-run (with
    /// whatever thread schedule the OS picks this time) produces identical
    /// merged Prometheus text, identical audit line sets, and identical
    /// per-query records.
    #[test]
    fn sharded_outputs_are_invariant_to_interleaving(
        seed in 0u64..1000,
        shards in 2usize..=4,
    ) {
        let fx = fixture(seed, 100, 45.0, 120.0, false);
        let (report_a, prom_a, audit_a, trace_len_a) = run_sharded(&fx, shards);
        let (report_b, prom_b, audit_b, trace_len_b) = run_sharded(&fx, shards);
        prop_assert_eq!(prom_a, prom_b, "merged Prometheus text must be byte-identical");
        prop_assert_eq!(audit_a, audit_b, "audit line sets (in id order) must match");
        prop_assert_eq!(trace_len_a, trace_len_b, "merged trace length must match");
        prop_assert_eq!(report_a.stats, report_b.stats);
        prop_assert_eq!(
            report_a.summary.records(), report_b.summary.records(),
            "per-query outcomes must not depend on shard timing"
        );
        prop_assert_eq!(report_a.sim_secs, report_b.sim_secs);
    }
}

/// The router's partition is what the merged records reflect: each query's
/// record exists regardless of which shard served it, and shard assignment
/// is stable across runs.
#[test]
fn router_partition_matches_workload_split() {
    let fx = fixture(3, 200, 40.0, 150.0, false);
    let router = ShardRouter::new(3);
    let parts = fx.workload.partition(3, |q| router.route(q.key));
    let mut seen: Vec<u64> = Vec::new();
    for part in &parts {
        seen.extend(&part.global_ids);
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..200u64).collect::<Vec<_>>());
}

/// Wall-clock sharded serve: conservation and a drained shutdown hold when
/// every shard runs its own worker pool and load generator.
#[test]
fn wall_clock_sharded_serve_drains_cleanly() {
    let fx = fixture(7, 120, 60.0, 100.0, false);
    let config = ServeConfig {
        mode: ClockMode::Wall { dilation: 100.0 },
        shards: 4,
        ..ServeConfig::default()
    };
    let report = serve_schemble(&fx.ensemble, &fx.pipeline, &fx.workload, fx.seed, &config);
    let s = &report.stats;
    assert_eq!(s.submitted, 120);
    assert_eq!(s.submitted, s.completed + s.degraded + s.rejected + s.expired);
    assert_eq!(s.open(), 0);
    let snap = &report.snapshot;
    assert_eq!(snap.tasks_started, snap.tasks_completed, "all tasks returned before shutdown");
    assert!(snap.queue_depths.iter().all(|&d| d == 0), "backlogs drained");
    assert_eq!(
        snap.queue_depths.len(),
        4 * fx.ensemble.m(),
        "merged metrics expose every shard's executor replica"
    );
}
