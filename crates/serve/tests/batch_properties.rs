//! Properties of cross-query batched execution on the serving runtime.
//!
//! The load-bearing contract is the degradation guarantee: `batch_max = 1`
//! (and equally no batch config at all) must be *byte-identical* to an
//! unbatched build — same per-query records, same audit lines, same merged
//! Prometheus text — across shard counts. That identity is what lets the
//! feature ship default-off without re-validating every existing baseline.
//! Enabled batching keeps the conservation invariant (every member of every
//! batch resolves exactly once, faults included) and never co-batches two
//! tasks of the same query (a batch runs on one executor, and a query sends
//! at most one task per executor).

use proptest::prelude::*;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::schemble::SchembleConfig;
use schemble_core::predictor::OnlineScorer;
use schemble_core::scheduler::DpScheduler;
use schemble_data::{TaskKind, Workload};
use schemble_models::Ensemble;
use schemble_serve::{serve_schemble, ClockMode, ServeConfig, ServeReport};
use schemble_sim::{BatchConfig, FaultPlan, SimDuration};
use schemble_trace::{audit_records, prometheus_text, TraceEvent, TraceSink};
use std::collections::HashMap;
use std::sync::Arc;

struct Fixture {
    ensemble: Ensemble,
    pipeline: SchembleConfig,
    workload: Workload,
    seed: u64,
}

fn fixture(seed: u64, n_queries: usize, rate: f64, batching: Option<BatchConfig>) -> Fixture {
    let mut config = ExperimentConfig::small(TaskKind::TextMatching, seed);
    config.n_queries = n_queries;
    config.traffic = Traffic::Poisson { rate_per_sec: rate };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;
    pipeline.batching = batching;
    let seed = ctx.config.seed;
    Fixture { ensemble: ctx.ensemble, pipeline, workload, seed }
}

/// One virtual-clock run; returns the report plus its exported artifacts
/// (Prometheus text sans the wall-clock planning profile, audit lines, and
/// the raw trace events for membership checks).
fn run_once(
    fx: &Fixture,
    shards: usize,
    faults: Option<FaultPlan>,
) -> (ServeReport, String, Vec<String>, Vec<TraceEvent>) {
    let sink = TraceSink::enabled();
    let config = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        shards,
        faults,
        ..ServeConfig::default()
    };
    let report = serve_schemble(&fx.ensemble, &fx.pipeline, &fx.workload, fx.seed, &config);
    let events = sink.drain();
    let prom = prometheus_text(&report.metrics, report.sim_secs, None);
    let audit: Vec<String> = audit_records(&events).iter().map(|r| r.to_json_line()).collect();
    (report, prom, audit, events)
}

/// Groups `TaskStart` events by their launch instant per executor — the
/// same `(executor, t)` key the exporters use to recover batch membership —
/// and returns each group's query ids.
fn start_groups(events: &[TraceEvent]) -> HashMap<(u16, u64), Vec<u64>> {
    let mut groups: HashMap<(u16, u64), Vec<u64>> = HashMap::new();
    for event in events {
        if let TraceEvent::TaskStart { t, query, executor } = event {
            groups.entry((*executor, t.as_micros())).or_default().push(*query);
        }
    }
    groups
}

proptest! {
    // Each case runs several full pipelines; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The degradation guarantee: `batch_max = 1` and no batching at all
    /// produce byte-identical runs — records, stats, audit lines and
    /// Prometheus text — whether the runtime is single-shard or sharded.
    #[test]
    fn batch_max_one_is_byte_identical_to_none(
        seed in 0u64..1000,
        rate in 10.0f64..80.0,
        window_ms in 1u64..20,
        sharded in proptest::bool::ANY,
    ) {
        let shards = if sharded { 4 } else { 1 };
        let none = fixture(seed, 100, rate, None);
        let inert =
            fixture(seed, 100, rate, Some(BatchConfig::new(1, SimDuration::from_millis(window_ms))));
        let (report_a, prom_a, audit_a, _) = run_once(&none, shards, None);
        let (report_b, prom_b, audit_b, _) = run_once(&inert, shards, None);
        prop_assert_eq!(report_a.stats, report_b.stats, "engine stats must match");
        prop_assert_eq!(report_b.snapshot.tasks_batched, 0, "batch_max = 1 never batches");
        prop_assert_eq!(
            report_a.summary.records(), report_b.summary.records(),
            "per-query outcomes must be byte-identical"
        );
        prop_assert_eq!(audit_a, audit_b, "audit lines must be byte-identical");
        prop_assert_eq!(prom_a, prom_b, "Prometheus text must be byte-identical");
    }

    /// Enabled batching conserves queries, faults or not: every submitted
    /// query resolves exactly once even when whole batches are killed by a
    /// crash window mid-run.
    #[test]
    fn batching_conserves_queries_under_faults(
        seed in 0u64..1000,
        rate in 20.0f64..80.0,
        batch_max in 2usize..16,
        faulted in proptest::bool::ANY,
    ) {
        let fx = fixture(
            seed,
            100,
            rate,
            Some(BatchConfig::new(batch_max, SimDuration::from_millis(2))),
        );
        let faults = faulted
            .then(|| FaultPlan::parse("crash 0 0.3 0.8\ntransient 0.05").expect("valid plan"));
        let n = fx.workload.len();
        let (report, _, audit, _) = run_once(&fx, 1, faults);
        let s = &report.stats;
        prop_assert_eq!(s.submitted, n as u64, "every arrival submitted");
        prop_assert_eq!(
            s.submitted,
            s.completed + s.degraded + s.rejected + s.expired,
            "outcomes partition the submitted set"
        );
        prop_assert_eq!(s.open(), 0, "no query left open");
        prop_assert_eq!(report.summary.len(), n, "one record per query");
        prop_assert_eq!(audit.len(), n, "one audit line per query");
    }

    /// A batch never contains two tasks of the same query: every group of
    /// tasks launched together on one executor has distinct query ids.
    #[test]
    fn no_batch_holds_two_tasks_of_one_query(
        seed in 0u64..1000,
        rate in 20.0f64..80.0,
        batch_max in 2usize..16,
    ) {
        let fx = fixture(
            seed,
            120,
            rate,
            Some(BatchConfig::new(batch_max, SimDuration::from_millis(2))),
        );
        let (report, _, _, events) = run_once(&fx, 1, None);
        let mut saw_multi = false;
        for ((executor, t), queries) in start_groups(&events) {
            let mut unique = queries.clone();
            unique.sort_unstable();
            unique.dedup();
            prop_assert_eq!(
                unique.len(), queries.len(),
                "executor {} launched a duplicate query in one batch at t={}us: {:?}",
                executor, t, queries
            );
            prop_assert!(queries.len() <= batch_max, "batch exceeded batch_max");
            saw_multi |= queries.len() > 1;
        }
        // A multi-member launch group must be reflected in the counter.
        prop_assert!(!saw_multi || report.snapshot.tasks_batched > 0);
    }
}

/// Enabled batching actually batches on a loaded fixture, and a batched run
/// stays deterministic: re-running it reproduces every artifact.
#[test]
fn batching_is_deterministic_and_actually_batches() {
    let fx = fixture(11, 300, 60.0, Some(BatchConfig::new(8, SimDuration::from_millis(2))));
    let (report_a, prom_a, audit_a, _) = run_once(&fx, 1, None);
    assert!(report_a.snapshot.tasks_batched > 0, "a loaded run forms real batches");
    let (report_b, prom_b, audit_b, _) = run_once(&fx, 1, None);
    assert_eq!(report_a.stats, report_b.stats);
    assert_eq!(report_a.summary.records(), report_b.summary.records());
    assert_eq!(audit_a, audit_b);
    assert_eq!(prom_a, prom_b);
}
