//! Properties of the anytime early-exit policy on the serving runtime.
//!
//! The load-bearing contract is the off-switch: a configured-but-inactive
//! policy (threshold above 1.0) must be *byte-identical* to no policy at
//! all — same per-query records, same audit lines, same merged Prometheus
//! text — across shard counts. That identity is what lets the feature ship
//! default-off without re-validating every existing baseline. The enabled
//! mode keeps the conservation invariant (quit queries still resolve
//! exactly once) while actually saving work.

use proptest::prelude::*;
use schemble_core::engine::AnytimePolicy;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::schemble::SchembleConfig;
use schemble_core::predictor::OnlineScorer;
use schemble_core::scheduler::DpScheduler;
use schemble_data::{TaskKind, Workload};
use schemble_models::Ensemble;
use schemble_serve::{serve_schemble, ClockMode, ServeConfig, ServeReport};
use schemble_trace::{audit_records, prometheus_text, TraceSink};
use std::sync::Arc;

struct Fixture {
    ensemble: Ensemble,
    pipeline: SchembleConfig,
    workload: Workload,
    seed: u64,
}

fn fixture(seed: u64, n_queries: usize, rate: f64, anytime: Option<AnytimePolicy>) -> Fixture {
    let mut config = ExperimentConfig::small(TaskKind::TextMatching, seed);
    config.n_queries = n_queries;
    config.traffic = Traffic::Poisson { rate_per_sec: rate };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;
    pipeline.anytime = anytime;
    let seed = ctx.config.seed;
    Fixture { ensemble: ctx.ensemble, pipeline, workload, seed }
}

/// One virtual-clock run; returns the report plus its exported artifacts
/// (Prometheus text sans the wall-clock planning profile, audit lines).
fn run_once(fx: &Fixture, shards: usize) -> (ServeReport, String, Vec<String>) {
    let sink = TraceSink::enabled();
    let config = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        shards,
        ..ServeConfig::default()
    };
    let report = serve_schemble(&fx.ensemble, &fx.pipeline, &fx.workload, fx.seed, &config);
    let events = sink.drain();
    let prom = prometheus_text(&report.metrics, report.sim_secs, None);
    let audit: Vec<String> = audit_records(&events).iter().map(|r| r.to_json_line()).collect();
    (report, prom, audit)
}

proptest! {
    // Each case runs several full pipelines; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The off-switch identity: an inactive threshold (> 1.0) and no policy
    /// at all produce byte-identical runs — records, stats, audit lines and
    /// Prometheus text — whether the runtime is single-shard or sharded.
    #[test]
    fn inactive_policy_is_byte_identical_to_none(
        seed in 0u64..1000,
        rate in 10.0f64..80.0,
        threshold in 1.01f64..10.0,
        sharded in proptest::bool::ANY,
    ) {
        let shards = if sharded { 4 } else { 1 };
        let none = fixture(seed, 100, rate, None);
        let inert = fixture(seed, 100, rate, Some(AnytimePolicy { confidence_threshold: threshold }));
        let (report_a, prom_a, audit_a) = run_once(&none, shards);
        let (report_b, prom_b, audit_b) = run_once(&inert, shards);
        prop_assert_eq!(report_a.stats, report_b.stats, "engine stats must match");
        prop_assert_eq!(report_b.stats.tasks_saved, 0, "an inert policy never quits");
        prop_assert_eq!(
            report_a.summary.records(), report_b.summary.records(),
            "per-query outcomes must be byte-identical"
        );
        prop_assert_eq!(audit_a, audit_b, "audit lines must be byte-identical");
        prop_assert_eq!(prom_a, prom_b, "Prometheus text must be byte-identical");
    }

    /// Enabled mode: conservation still holds — every submitted query
    /// resolves exactly once even when parts of its plan were quit — and
    /// the runtime counters mirror the engine's saved-task count.
    #[test]
    fn enabled_policy_conserves_queries(
        seed in 0u64..1000,
        rate in 10.0f64..80.0,
        sharded in proptest::bool::ANY,
    ) {
        let shards = if sharded { 4 } else { 1 };
        let fx = fixture(seed, 100, rate, Some(AnytimePolicy::default()));
        let n = fx.workload.len();
        let (report, _, audit) = run_once(&fx, shards);
        let s = &report.stats;
        prop_assert_eq!(s.submitted, n as u64, "every arrival submitted");
        prop_assert_eq!(
            s.submitted,
            s.completed + s.degraded + s.rejected + s.expired,
            "outcomes partition the submitted set"
        );
        prop_assert_eq!(s.open(), 0, "no query left open");
        prop_assert_eq!(report.summary.len(), n, "one record per query");
        prop_assert_eq!(audit.len(), n, "one audit line per query");
        prop_assert_eq!(report.snapshot.tasks_saved, s.tasks_saved, "counters mirror stats");
    }
}

/// The default policy actually saves work on a loaded fixture, and a quit
/// run stays deterministic: re-running it reproduces every artifact.
#[test]
fn default_policy_saves_work_deterministically() {
    let fx = fixture(11, 300, 60.0, Some(AnytimePolicy::default()));
    let (report_a, prom_a, audit_a) = run_once(&fx, 1);
    assert!(report_a.stats.tasks_saved > 0, "the default threshold quits work under load");
    let (report_b, prom_b, audit_b) = run_once(&fx, 1);
    assert_eq!(report_a.stats, report_b.stats);
    assert_eq!(report_a.summary.records(), report_b.summary.records());
    assert_eq!(audit_a, audit_b);
    assert_eq!(prom_a, prom_b);
}
