//! Properties of deterministic inter-shard work stealing.
//!
//! The load-bearing contracts, in order of importance:
//!
//! 1. **Off means off**: `steal_epoch: None` takes exactly the code path
//!    main shipped before stealing existed, and an epoch so large that no
//!    boundary fires inside the run is *byte-identical* to `None` — same
//!    records, stats, audit lines, Prometheus text.
//! 2. **Determinism**: with stealing enabled the run is still a pure
//!    function of (workload, seed, config). Re-running the same skewed
//!    sharded configuration — whatever thread schedule the OS picks —
//!    reproduces every merged artifact byte-for-byte, at S = 2 and S = 4,
//!    with and without an injected fault plan.
//! 3. **Conservation**: every stolen query resolves exactly once, on some
//!    shard. Globally `submitted == completed + degraded + rejected +
//!    expired`, `stolen_in == stolen_out`, one record and one audit line
//!    per query, and the merged id set is exactly the workload's.

use proptest::prelude::*;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::schemble::SchembleConfig;
use schemble_core::pipeline::AdmissionMode;
use schemble_core::predictor::OnlineScorer;
use schemble_core::scheduler::DpScheduler;
use schemble_data::{TaskKind, Workload};
use schemble_models::Ensemble;
use schemble_serve::{serve_schemble, ClockMode, ServeConfig, ServeReport};
use schemble_sim::{FaultPlan, SimDuration};
use schemble_trace::{audit_records, prometheus_text, TraceSink};
use std::collections::HashSet;
use std::sync::Arc;

struct Fixture {
    ensemble: Ensemble,
    pipeline: SchembleConfig,
    workload: Workload,
    seed: u64,
}

/// A hot-key fixture: queries are re-keyed with a Zipfian draw over `keys`
/// keys at skew `theta`, so the hash router concentrates load on few
/// shards — the regime stealing exists for.
fn fixture(seed: u64, n_queries: usize, rate: f64, keys: usize, theta: f64) -> Fixture {
    let mut config = ExperimentConfig::small(TaskKind::TextMatching, seed);
    config.n_queries = n_queries;
    config.traffic = Traffic::Poisson { rate_per_sec: rate };
    let mut config = config.with_deadline_millis(150.0);
    config.admission = AdmissionMode::ForceAll;
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload().with_zipf_keys(keys, theta, seed);
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;
    let seed = ctx.config.seed;
    Fixture { ensemble: ctx.ensemble, pipeline, workload, seed }
}

/// One sharded virtual-clock run; returns the report plus its exported
/// artifacts (Prometheus text sans the wall-clock planning profile, audit
/// lines in id order).
fn run_once(
    fx: &Fixture,
    shards: usize,
    steal_epoch: Option<SimDuration>,
    faults: Option<FaultPlan>,
) -> (ServeReport, String, Vec<String>) {
    let sink = TraceSink::enabled();
    let config = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        shards,
        steal_epoch,
        faults,
        ..ServeConfig::default()
    };
    let report = serve_schemble(&fx.ensemble, &fx.pipeline, &fx.workload, fx.seed, &config);
    let events = sink.drain();
    let prom = prometheus_text(&report.metrics, report.sim_secs, None);
    let audit: Vec<String> = audit_records(&events).iter().map(|r| r.to_json_line()).collect();
    (report, prom, audit)
}

fn assert_conserved(report: &ServeReport, audit: &[String], n: usize) {
    let s = &report.stats;
    assert_eq!(s.submitted, n as u64, "every arrival submitted");
    assert_eq!(
        s.submitted,
        s.completed + s.degraded + s.rejected + s.expired,
        "outcomes partition the submitted set"
    );
    assert_eq!(s.open(), 0, "no query left open on any shard");
    assert_eq!(s.stolen_in, s.stolen_out, "every released query was adopted");
    assert_eq!(report.summary.len(), n, "one record per query");
    let ids: HashSet<u64> = report.summary.records().iter().map(|r| r.id).collect();
    assert_eq!(ids, (0..n as u64).collect::<HashSet<u64>>(), "global ids restored");
    assert_eq!(audit.len(), n, "one audit line per query");
    assert_eq!(report.snapshot.open, 0);
    assert_eq!(report.snapshot.queries_stolen, s.stolen_in, "runtime counter tracks adoptions");
}

proptest! {
    // Each case runs several full pipelines; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An epoch that never fires inside the run is byte-identical to
    /// stealing disabled: same stats, records, audit lines, Prometheus
    /// text, and the stolen counters stay zero.
    #[test]
    fn idle_epoch_is_byte_identical_to_off(
        seed in 0u64..1000,
        shards in 2usize..=4,
        rate in 20.0f64..80.0,
    ) {
        let fx = fixture(seed, 100, rate, 8, 1.5);
        let (report_off, prom_off, audit_off) = run_once(&fx, shards, None, None);
        // Far beyond any 100-query run's horizon: the first boundary never
        // fires, so the coordinator sees one all-done rendezvous and stops.
        let idle = Some(SimDuration::from_millis(3_600_000));
        let (report_on, prom_on, audit_on) = run_once(&fx, shards, idle, None);
        prop_assert_eq!(report_on.stats.stolen_in, 0, "no boundary, no steals");
        prop_assert_eq!(&report_off.stats, &report_on.stats, "engine stats must match");
        prop_assert_eq!(
            report_off.summary.records(), report_on.summary.records(),
            "per-query outcomes must be byte-identical"
        );
        prop_assert_eq!(audit_off, audit_on, "audit lines must be byte-identical");
        prop_assert_eq!(prom_off, prom_on, "Prometheus text must be byte-identical");
        prop_assert_eq!(report_off.sim_secs, report_on.sim_secs);
    }

    /// With stealing enabled on a hot-key workload the run is invariant to
    /// thread interleaving: re-running the same configuration produces
    /// byte-identical merged artifacts at any shard count.
    #[test]
    fn stealing_runs_are_invariant_to_interleaving(
        seed in 0u64..1000,
        wide in proptest::bool::ANY,
        rate in 40.0f64..120.0,
        epoch_ms in 10u64..80,
    ) {
        let shards = if wide { 4usize } else { 2 };
        let fx = fixture(seed, 150, rate, 8, 2.0);
        let epoch = Some(SimDuration::from_millis(epoch_ms));
        let (report_a, prom_a, audit_a) = run_once(&fx, shards, epoch, None);
        let (report_b, prom_b, audit_b) = run_once(&fx, shards, epoch, None);
        prop_assert_eq!(&report_a.stats, &report_b.stats, "engine stats must match");
        prop_assert_eq!(
            report_a.summary.records(), report_b.summary.records(),
            "per-query outcomes must not depend on shard timing"
        );
        prop_assert_eq!(audit_a, audit_b, "audit lines must be byte-identical");
        prop_assert_eq!(prom_a, prom_b, "Prometheus text must be byte-identical");
        prop_assert_eq!(report_a.sim_secs, report_b.sim_secs);
    }

    /// Conservation holds with stealing enabled, faults or not: every query
    /// — stolen, re-stolen, or killed by a crash window — resolves exactly
    /// once, and the released/adopted counters balance globally.
    #[test]
    fn stealing_conserves_queries_under_faults(
        seed in 0u64..1000,
        shards in 2usize..=4,
        rate in 40.0f64..120.0,
        faulted in proptest::bool::ANY,
    ) {
        let fx = fixture(seed, 150, rate, 8, 2.0);
        let faults = faulted
            .then(|| FaultPlan::parse("crash 0 0.3 0.9\ntransient 0.05").expect("valid plan"));
        let n = fx.workload.len();
        let epoch = Some(SimDuration::from_millis(25));
        let (report, _, audit) = run_once(&fx, shards, epoch, faults);
        assert_conserved(&report, &audit, n);
    }
}

/// A saturated hot-key run at S = 4 actually steals — the counters move,
/// the balance holds, and re-running reproduces every artifact including
/// the steal lineage baked into the audit lines.
#[test]
fn hot_key_load_actually_steals_and_stays_deterministic() {
    let fx = fixture(11, 400, 120.0, 8, 2.5);
    let epoch = Some(SimDuration::from_millis(25));
    let (report_a, prom_a, audit_a) = run_once(&fx, 4, epoch, None);
    assert!(report_a.stats.stolen_in > 0, "a saturated hot shard must shed work");
    assert_conserved(&report_a, &audit_a, 400);
    assert!(
        audit_a.iter().any(|line| line.contains("\"stolen\"")),
        "steal lineage reaches the audit export"
    );
    let (report_b, prom_b, audit_b) = run_once(&fx, 4, epoch, None);
    assert_eq!(report_a.stats, report_b.stats);
    assert_eq!(report_a.summary.records(), report_b.summary.records());
    assert_eq!(audit_a, audit_b);
    assert_eq!(prom_a, prom_b);
}

/// Stealing under a total blackout (every executor down mid-run) still
/// drains: the wedge-breaker and the steal rendezvous compose without
/// deadlocking a shard, and the run stays deterministic.
#[test]
fn stealing_survives_a_blackout_deterministically() {
    let fx = fixture(23, 200, 80.0, 8, 2.0);
    let plan = "crash 0 0.5 3.0\ncrash 1 0.5 3.0\ncrash 2 0.5 3.0";
    let faults = FaultPlan::parse(plan).expect("valid plan");
    let epoch = Some(SimDuration::from_millis(25));
    let (report_a, prom_a, audit_a) = run_once(&fx, 4, epoch, Some(faults.clone()));
    assert_conserved(&report_a, &audit_a, 200);
    let (report_b, prom_b, audit_b) = run_once(&fx, 4, epoch, Some(faults));
    assert_eq!(report_a.stats, report_b.stats);
    assert_eq!(audit_a, audit_b);
    assert_eq!(prom_a, prom_b);
    assert_eq!(report_a.summary.records(), report_b.summary.records());
}

/// Wall-clock sharded serve with stealing: conservation and a drained
/// shutdown hold when shard threads hit real rendezvous barriers.
#[test]
fn wall_clock_stealing_drains_cleanly() {
    let fx = fixture(7, 150, 80.0, 8, 2.0);
    let config = ServeConfig {
        mode: ClockMode::Wall { dilation: 100.0 },
        shards: 4,
        steal_epoch: Some(SimDuration::from_millis(25)),
        ..ServeConfig::default()
    };
    let report = serve_schemble(&fx.ensemble, &fx.pipeline, &fx.workload, fx.seed, &config);
    let s = &report.stats;
    assert_eq!(s.submitted, 150);
    assert_eq!(s.submitted, s.completed + s.degraded + s.rejected + s.expired);
    assert_eq!(s.open(), 0);
    assert_eq!(s.stolen_in, s.stolen_out);
    let snap = &report.snapshot;
    assert_eq!(snap.tasks_started, snap.tasks_completed, "all tasks returned before shutdown");
    assert!(snap.queue_depths.iter().all(|&d| d == 0), "backlogs drained");
}
