//! Properties of the serving runtime.
//!
//! Conservation: every submitted query is resolved — completed, rejected or
//! expired — exactly once, whatever the seed, traffic intensity, deadline
//! tightness or admission mode. Shutdown: when the runtime returns, worker
//! queues have drained and every started task has finished.

use proptest::prelude::*;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::schemble::SchembleConfig;
use schemble_core::pipeline::AdmissionMode;
use schemble_core::predictor::OnlineScorer;
use schemble_core::scheduler::DpScheduler;
use schemble_data::TaskKind;
use schemble_metrics::QueryOutcome;
use schemble_serve::{serve_schemble, ClockMode, ServeConfig, ServeReport};
use std::collections::HashSet;

fn serve(
    seed: u64,
    n_queries: usize,
    rate: f64,
    deadline_ms: f64,
    force_all: bool,
    mode: ClockMode,
) -> (ServeReport, usize) {
    let mut config = ExperimentConfig::small(TaskKind::TextMatching, seed);
    config.n_queries = n_queries;
    config.traffic = Traffic::Poisson { rate_per_sec: rate };
    let mut config = config.with_deadline_millis(deadline_ms);
    if force_all {
        config.admission = AdmissionMode::ForceAll;
    }
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;
    let serve_cfg = ServeConfig { mode, ..ServeConfig::default() };
    let report = serve_schemble(&ctx.ensemble, &pipeline, &workload, ctx.config.seed, &serve_cfg);
    (report, workload.len())
}

/// Each query appears in the records exactly once, and the engine's
/// counters partition the submitted set.
fn assert_conserved(report: &ServeReport, n: usize) {
    let s = &report.stats;
    prop_assert_eq!(s.submitted, n as u64, "every arrival submitted");
    prop_assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.expired,
        "completed + rejected + expired must partition the submitted set"
    );
    prop_assert_eq!(s.open(), 0, "no query left open");
    prop_assert_eq!(report.summary.len(), n, "one record per query");
    let ids: HashSet<u64> = report.summary.records().iter().map(|r| r.id).collect();
    prop_assert_eq!(ids.len(), n, "record ids are unique");
    let completed = report.summary.records().iter().filter(|r| r.completion.is_some()).count();
    prop_assert_eq!(completed as u64, s.completed, "records agree with the counters");
}

proptest! {
    // Each case is a full pipeline run; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Virtual-clock conservation under arbitrary seeds, load levels,
    /// deadline tightness and both admission modes.
    #[test]
    fn every_query_is_resolved_exactly_once(
        seed in 0u64..1000,
        rate in 10.0f64..80.0,
        deadline_ms in 50.0f64..200.0,
        force_all in proptest::bool::ANY,
    ) {
        let (report, n) =
            serve(seed, 150, rate, deadline_ms, force_all, ClockMode::Virtual);
        assert_conserved(&report, n);
        if force_all {
            prop_assert_eq!(report.stats.rejected, 0, "ForceAll never rejects");
            // ForceAll also never drops admitted queries.
            prop_assert_eq!(report.stats.completed, n as u64);
        }
        // Rejected/expired queries are recorded as missed, not completed.
        for r in report.summary.records() {
            let missed = matches!(r.outcome, QueryOutcome::Missed);
            prop_assert_eq!(missed, r.completion.is_none());
        }
    }
}

/// Wall-clock conservation and drained shutdown: the threaded runtime under
/// an overloaded trace still resolves every query exactly once, and when it
/// returns no task is running and no backlog remains.
#[test]
fn wall_clock_shutdown_drains_all_queues() {
    let (report, n) = serve(7, 120, 60.0, 80.0, false, ClockMode::Wall { dilation: 100.0 });
    let s = &report.stats;
    assert_eq!(s.submitted, n as u64);
    assert_eq!(s.submitted, s.completed + s.rejected + s.expired);
    assert_eq!(s.open(), 0);

    let snap = &report.snapshot;
    assert_eq!(
        snap.tasks_started, snap.tasks_completed,
        "every task handed to a worker came back before shutdown"
    );
    assert!(snap.queue_depths.iter().all(|&d| d == 0), "backlogs drained: {:?}", snap.queue_depths);
    assert!(!snap.running.iter().any(|&r| r), "no worker mid-task at shutdown");
}

/// ForceAll on the wall clock: heavy overload, yet nothing is lost and the
/// run still terminates (drain logic never strands a query).
#[test]
fn wall_clock_force_all_completes_everything() {
    let (report, n) = serve(11, 100, 80.0, 60.0, true, ClockMode::Wall { dilation: 100.0 });
    assert_eq!(report.stats.completed, n as u64);
    assert_eq!(report.stats.rejected + report.stats.expired, 0);
    assert_eq!(report.snapshot.tasks_started, report.snapshot.tasks_completed);
}
