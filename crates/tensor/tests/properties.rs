//! Property-based tests of the numeric kernels.

use proptest::prelude::*;
use schemble_tensor::dist::{euclidean_sq, js_divergence, kl_divergence, total_variation};
use schemble_tensor::prob::{argmax, entropy, rescale_probs, softmax};
use schemble_tensor::stats::{histogram, mean, percentile, MinMax, ZScore};
use schemble_tensor::Matrix;

fn prob_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-6.0f64..6.0, len).prop_map(|logits| softmax(&logits))
}

proptest! {
    #[test]
    fn softmax_is_a_distribution(logits in proptest::collection::vec(-50.0f64..50.0, 1..8)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Softmax preserves the argmax of the logits.
        prop_assert_eq!(argmax(&p), argmax(&logits));
    }

    #[test]
    fn kl_is_nonnegative_and_zero_on_self(p in prob_vec(4), q in prob_vec(4)) {
        prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-9);
    }

    #[test]
    fn js_bounded_by_tv_relation(p in prob_vec(3), q in prob_vec(3)) {
        // JS ≤ TV·ln2 + something? Use the standard bound JS ≤ ln2 and
        // JS = 0 ⇔ TV = 0 (within numerics).
        let js = js_divergence(&p, &q);
        let tv = total_variation(&p, &q);
        prop_assert!(js <= std::f64::consts::LN_2 + 1e-12);
        if tv < 1e-9 {
            prop_assert!(js < 1e-6);
        }
    }

    #[test]
    fn temperature_one_is_identity(p in prob_vec(5)) {
        let q = rescale_probs(&p, 1.0);
        for (a, b) in p.iter().zip(&q) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_temperature_raises_entropy(p in prob_vec(4), t in 1.1f64..8.0) {
        let soft = rescale_probs(&p, t);
        prop_assert!(entropy(&soft) >= entropy(&p) - 1e-9);
    }

    #[test]
    fn zscore_then_stats_are_standard(xs in proptest::collection::vec(-100.0f64..100.0, 3..40)) {
        let z = ZScore::fit(&xs);
        let t: Vec<f64> = xs.iter().map(|&x| z.apply(x)).collect();
        prop_assert!(mean(&t).abs() < 1e-6);
    }

    #[test]
    fn minmax_is_idempotent_on_unit_interval(xs in proptest::collection::vec(0.0f64..1.0, 2..30)) {
        let mm = MinMax::fit(&xs);
        for &x in &xs {
            let y = mm.apply(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn percentile_is_monotone(xs in proptest::collection::vec(-50.0f64..50.0, 1..30),
                              a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-12);
    }

    #[test]
    fn histogram_conserves_count(xs in proptest::collection::vec(-2.0f64..3.0, 0..50)) {
        let h = histogram(&xs, 0.0, 1.0, 7);
        prop_assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in proptest::collection::vec(-3.0f64..3.0, 6),
        b in proptest::collection::vec(-3.0f64..3.0, 6),
        c in proptest::collection::vec(-3.0f64..3.0, 6),
    ) {
        let a = Matrix::from_vec(2, 3, a);
        let b = Matrix::from_vec(3, 2, b);
        let c = Matrix::from_vec(3, 2, c);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_reverses_matmul(
        a in proptest::collection::vec(-3.0f64..3.0, 6),
        b in proptest::collection::vec(-3.0f64..3.0, 6),
    ) {
        let a = Matrix::from_vec(2, 3, a);
        let b = Matrix::from_vec(3, 2, b);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn euclidean_sq_is_square_of_norm(a in proptest::collection::vec(-9.0f64..9.0, 4)) {
        let zero = vec![0.0; 4];
        let d2 = euclidean_sq(&a, &zero);
        let norm = Matrix::row_vector(&a).frobenius_norm();
        prop_assert!((d2 - norm * norm).abs() < 1e-9);
    }
}
