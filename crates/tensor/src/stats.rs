//! Scalar statistics shared by profiling, normalisation and evaluation code.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Z-score normalisation parameters fitted on a reference sample.
///
/// The discrepancy score normalises each base model's distance distribution
/// before averaging, "to diminish the contribution of inaccurate models and
/// keep all distances at the same scale" (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZScore {
    /// Fitted mean.
    pub mean: f64,
    /// Fitted standard deviation (floored to avoid division by ~0).
    pub std: f64,
}

impl ZScore {
    /// Fits normalisation parameters on `xs`.
    pub fn fit(xs: &[f64]) -> Self {
        Self { mean: mean(xs), std: std_dev(xs).max(1e-9) }
    }

    /// Applies the transform.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        (x - self.mean) / self.std
    }
}

/// Min-max rescaling to `[0, 1]` fitted on a reference sample; values outside
/// the fitted range clamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    /// Fitted minimum.
    pub min: f64,
    /// Fitted maximum.
    pub max: f64,
}

impl MinMax {
    /// Fits the range on `xs`. An empty or constant sample maps everything
    /// to 0.
    pub fn fit(xs: &[f64]) -> Self {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !min.is_finite() || !max.is_finite() {
            return Self { min: 0.0, max: 1.0 };
        }
        Self { min, max }
    }

    /// Applies the transform, clamping to `[0, 1]`.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        let span = self.max - self.min;
        if span <= 0.0 {
            return 0.0;
        }
        ((x - self.min) / span).clamp(0.0, 1.0)
    }
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `0.0` when either sample is constant (the convention used by the
/// Fig. 5 correlation-matrix experiment, where a degenerate preference vector
/// carries no signal).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Percentile via linear interpolation on the sorted sample (the same
/// definition numpy uses for `interpolation='linear'`). `q` is in `[0, 100]`.
///
/// Returns `0.0` for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = (q / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Histogram of `xs` over `bins` equal-width bins spanning `[lo, hi]`;
/// values outside the range clamp into the edge bins. Used to print the
/// Fig. 4a score-distribution series.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    assert!(hi > lo, "empty histogram range");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(percentile(&[], 95.0), 0.0);
    }

    #[test]
    fn zscore_standardises() {
        let xs = [2.0, 4.0, 6.0, 8.0];
        let z = ZScore::fit(&xs);
        let transformed: Vec<f64> = xs.iter().map(|&x| z.apply(x)).collect();
        assert!(mean(&transformed).abs() < 1e-12);
        assert!((std_dev(&transformed) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minmax_maps_to_unit_interval_and_clamps() {
        let mm = MinMax::fit(&[10.0, 20.0]);
        assert_eq!(mm.apply(10.0), 0.0);
        assert_eq!(mm.apply(20.0), 1.0);
        assert_eq!(mm.apply(15.0), 0.5);
        assert_eq!(mm.apply(-5.0), 0.0);
        assert_eq!(mm.apply(50.0), 1.0);
    }

    #[test]
    fn minmax_constant_sample_maps_to_zero() {
        let mm = MinMax::fit(&[3.0, 3.0, 3.0]);
        assert_eq!(mm.apply(3.0), 0.0);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [0.05, 0.15, 0.15, 0.95, 1.5, -0.5];
        let h = histogram(&xs, 0.0, 1.0, 10);
        assert_eq!(h.iter().sum::<usize>(), xs.len());
        assert_eq!(h[0], 2); // 0.05 and clamped -0.5
        assert_eq!(h[1], 2);
        assert_eq!(h[9], 2); // 0.95 and clamped 1.5
    }
}
