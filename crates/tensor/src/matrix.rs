//! Row-major dense `f64` matrix with the operations the NN crate needs.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A row-major dense matrix of `f64`.
///
/// The matrices in this project are small (layer weights of lightweight
/// predictor networks), so the implementation favours clarity over blocked
/// or SIMD kernels; the inner matmul loop is still written in the
/// cache-friendly `ikj` order.
///
/// # Examples
///
/// ```
/// use schemble_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let i = Matrix::identity(2);
/// assert_eq!(a.matmul(&i), a);
/// assert_eq!(a.transpose()[(0, 1)], a[(1, 0)]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// A `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj order: the innermost loop walks contiguous memory in both
        // `rhs` and `out`, which matters even for the small matrices here.
        for i in 0..self.rows {
            let out_row = i * rhs.cols;
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// `self + scale * rhs`, in place. The workhorse of the optimisers.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, scale: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// Multiply every element by `s`, in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `bias` (a 1×cols row vector) to every row; used by dense layers.
    ///
    /// # Panics
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sum over rows, producing a 1×cols row vector (used for bias gradients).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Number of stored elements (`rows * cols`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r as f64) * 10.0 + c as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], a[(1, 2)]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_every_row() {
        let a = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -2.0]);
        let out = a.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out[(r, 0)], 1.0);
            assert_eq!(out[(r, 1)], -2.0);
        }
    }

    #[test]
    fn sum_rows_reduces_to_row_vector() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = a.sum_rows();
        assert_eq!(s.shape(), (1, 2));
        assert_eq!(s[(0, 0)], 4.0);
        assert_eq!(s[(0, 1)], 6.0);
    }

    #[test]
    fn axpy_accumulates_scaled() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let g = Matrix::filled(2, 2, 2.0);
        a.axpy(-0.5, &g);
        assert_eq!(a, Matrix::zeros(2, 2));
    }

    #[test]
    fn hadamard_is_elementwise() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn frobenius_norm_of_unit_axes() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
