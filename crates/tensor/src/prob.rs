//! Probability utilities: softmax, logits, entropy and temperature scaling.
//!
//! Temperature scaling (Guo et al., ICML'17) is the post-hoc calibration the
//! paper applies to classifier outputs before computing discrepancy scores:
//! badly calibrated deep models emit near-one-hot distributions whose raw
//! divergences swamp the score, so each model's logits are divided by a
//! scalar temperature fitted on held-out data.

/// Numerically stable softmax.
///
/// # Examples
///
/// ```
/// let p = schemble_tensor::prob::softmax(&[0.0, 0.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax with temperature `t` (`t > 1` softens, `t < 1` sharpens).
///
/// # Panics
/// Panics if `t <= 0`.
pub fn softmax_with_temperature(logits: &[f64], t: f64) -> Vec<f64> {
    assert!(t > 0.0, "temperature must be positive, got {t}");
    let scaled: Vec<f64> = logits.iter().map(|&x| x / t).collect();
    softmax(&scaled)
}

/// Recovers logits (up to an additive constant) from a probability vector, so
/// an already-softmaxed output can be re-calibrated with a new temperature.
pub fn logits_from_probs(probs: &[f64]) -> Vec<f64> {
    probs.iter().map(|&p| p.max(crate::dist::EPS).ln()).collect()
}

/// Applies temperature scaling directly to a probability vector.
pub fn rescale_probs(probs: &[f64], t: f64) -> Vec<f64> {
    softmax_with_temperature(&logits_from_probs(probs), t)
}

/// Shannon entropy in nats.
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().map(|&pi| if pi <= 0.0 { 0.0 } else { -pi * pi.max(crate::dist::EPS).ln() }).sum()
}

/// Index of the maximum element (prediction argmax). Ties break toward the
/// lower index, matching the deterministic tie-break used throughout.
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Negative log-likelihood of `label` under distribution `p`; the objective
/// minimised when fitting a calibration temperature.
pub fn nll(p: &[f64], label: usize) -> f64 {
    -p[label].max(crate::dist::EPS).ln()
}

/// Fits a calibration temperature by golden-section search on held-out
/// `(probability vector, label)` pairs, minimising average NLL.
///
/// This is the one-parameter optimisation from Guo et al.; the search
/// interval `[0.05, 20]` comfortably covers the miscalibration range of the
/// synthetic models.
pub fn fit_temperature(outputs: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(outputs.len(), labels.len(), "outputs/labels length mismatch");
    assert!(!outputs.is_empty(), "cannot fit temperature on empty data");
    let loss = |t: f64| -> f64 {
        outputs.iter().zip(labels).map(|(p, &y)| nll(&rescale_probs(p, t), y)).sum::<f64>()
            / outputs.len() as f64
    };
    golden_section_min(loss, 0.05, 20.0, 1e-4)
}

/// Golden-section minimisation of a unimodal function on `[a, b]`.
fn golden_section_min(f: impl Fn(f64) -> f64, mut a: f64, mut b: f64, tol: f64) -> f64 {
    let inv_phi = (5f64.sqrt() - 1.0) / 2.0;
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_prob_vector(p: &[f64]) {
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_sums_to_one_and_orders_by_logit() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert_prob_vector(&p);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let p1 = softmax(&[1.0, 2.0, 3.0]);
        let p2 = softmax(&[1001.0, 1002.0, 1003.0]);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn high_temperature_flattens() {
        let sharp = softmax_with_temperature(&[0.0, 4.0], 1.0);
        let flat = softmax_with_temperature(&[0.0, 4.0], 10.0);
        assert!(flat[1] < sharp[1]);
        assert!(flat[1] > 0.5, "order must be preserved");
    }

    #[test]
    fn rescale_probs_roundtrips_at_t1() {
        let p = softmax(&[0.3, -1.2, 2.0]);
        let q = rescale_probs(&p, 1.0);
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn entropy_max_for_uniform() {
        let u = [0.25; 4];
        let skew = [0.97, 0.01, 0.01, 0.01];
        assert!(entropy(&u) > entropy(&skew));
        assert!((entropy(&u) - (4f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 1.0, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
    }

    #[test]
    fn fit_temperature_softens_overconfident_model() {
        // Model says 0.99 for class 0 but is right only ~70% of the time:
        // the fitted temperature must be > 1 (softening).
        let mut outputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            outputs.push(vec![0.99, 0.01]);
            labels.push(if i % 10 < 7 { 0 } else { 1 });
        }
        let t = fit_temperature(&outputs, &labels);
        assert!(t > 1.5, "expected strong softening, got t = {t}");
    }

    #[test]
    fn fit_temperature_keeps_calibrated_model_near_one() {
        // Model says 0.7/0.3 and is right exactly 70% of the time.
        let mut outputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            outputs.push(vec![0.7, 0.3]);
            labels.push(if i % 10 < 7 { 0 } else { 1 });
        }
        let t = fit_temperature(&outputs, &labels);
        assert!((t - 1.0).abs() < 0.25, "calibrated model should keep t ≈ 1, got {t}");
    }
}
