//! Minimal dense linear algebra and probability-distance kernels.
//!
//! This crate is the numeric substrate for the Schemble reproduction. It
//! provides exactly what the upper layers need and nothing more:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the handful of BLAS-like
//!   operations the neural-network crate uses (matmul, transpose, elementwise
//!   maps, row/column reductions).
//! * [`dist`] — distances between probability distributions (KL, symmetric
//!   KL, Jensen–Shannon) and vectors (Euclidean), used by the discrepancy
//!   score (Eq. 1 of the paper) and the ensemble-agreement baseline.
//! * [`prob`] — softmax / log-softmax / entropy / temperature scaling helpers.
//! * [`stats`] — scalar statistics (mean, variance, z-score and min-max
//!   normalisation, percentiles, Pearson correlation) shared across profiling
//!   and evaluation code.
//!
//! Everything operates on `f64`: the matrices involved are tiny (predictor
//! networks with a few thousand weights), so simplicity and numerical headroom
//! beat `f32` throughput here.

pub mod dist;
pub mod matrix;
pub mod prob;
pub mod stats;

pub use matrix::Matrix;
