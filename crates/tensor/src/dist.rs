//! Distances between model outputs.
//!
//! The discrepancy score (paper Eq. 1) measures the distance between each
//! base model's output and the ensemble's output — Jensen–Shannon divergence
//! for classification tasks, Euclidean distance for regression. The
//! ensemble-agreement baseline uses symmetric KL between base-model pairs.
//!
//! All divergence functions accept *probability vectors* (non-negative,
//! roughly summing to one). A tiny epsilon guards the logarithms so that
//! hard one-hot outputs from overconfident (badly calibrated) models do not
//! produce infinities.

/// Floor applied inside logarithms to keep divergences finite for
/// zero-probability entries.
pub const EPS: f64 = 1e-12;

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats.
///
/// # Panics
/// Panics if `p` and `q` have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| if pi <= 0.0 { 0.0 } else { pi * ((pi.max(EPS)) / (qi.max(EPS))).ln() })
        .sum()
}

/// Symmetric KL divergence `KL(p‖q) + KL(q‖p)` — the agreement distance used
/// by the ensemble-agreement metric of Carlini et al. that the paper compares
/// against.
pub fn symmetric_kl(p: &[f64], q: &[f64]) -> f64 {
    kl_divergence(p, q) + kl_divergence(q, p)
}

/// Jensen–Shannon divergence in nats.
///
/// `JS(p, q) = ½ KL(p ‖ m) + ½ KL(q ‖ m)` with `m = ½(p + q)`.
/// It is symmetric and bounded by `ln 2`, which keeps per-model distances on a
/// comparable scale before normalisation (part of why the paper prefers it to
/// raw KL for the discrepancy score).
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Euclidean (L2) distance between two vectors; the regression-task distance
/// in Eq. 1 (vehicle counting outputs scalar counts).
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Squared Euclidean distance (avoids the sqrt when only ordering matters,
/// e.g. inside the KNN missing-value filler).
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum::<f64>()
}

/// Total variation distance `½ Σ |p_i − q_i|`; used in tests as an independent
/// cross-check on the divergences above.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN2: f64 = std::f64::consts::LN_2;

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = [0.8, 0.2];
        let q = [0.3, 0.7];
        let d1 = kl_divergence(&p, &q);
        let d2 = kl_divergence(&q, &p);
        assert!((d1 - d2).abs() > 1e-6);
    }

    #[test]
    fn symmetric_kl_is_symmetric() {
        let p = [0.8, 0.2];
        let q = [0.3, 0.7];
        assert!((symmetric_kl(&p, &q) - symmetric_kl(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn js_is_symmetric_and_bounded_by_ln2() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let d = js_divergence(&p, &q);
        assert!((d - LN2).abs() < 1e-9, "disjoint supports should reach ln 2, got {d}");
        assert!((js_divergence(&p, &q) - js_divergence(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn js_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn js_handles_hard_onehots_without_nan() {
        let p = [1.0, 0.0, 0.0];
        let q = [1.0, 0.0, 0.0];
        assert!(js_divergence(&p, &q).is_finite());
        assert!(js_divergence(&p, &q).abs() < 1e-9);
    }

    #[test]
    fn euclidean_matches_pythagoras() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn total_variation_bounds_js_pinsker_style() {
        // JS >= 0.5 * tv^2 ... loose sanity relation: JS small => TV small.
        let p = [0.5, 0.5];
        let q = [0.51, 0.49];
        assert!(js_divergence(&p, &q) < 0.01);
        assert!(total_variation(&p, &q) < 0.02);
    }
}
