//! Streaming calibration-drift detection.
//!
//! Two detectors, both pure integer folds over the trace stream:
//!
//! * **Difficulty calibration** — pairs each query's predicted difficulty
//!   bin ([`TraceEvent::Scored`]) with the bin its *realized* discrepancy
//!   falls into ([`TraceEvent::Realized`]) and accumulates agreement /
//!   distance counters. A predictor in calibration keeps the mean bin
//!   distance near zero; drift shows up as a growing distance-per-pair.
//! * **Executor latency** — compares each completed task's observed service
//!   time (`TaskDone.t − TaskStart.t`) against the executor's profiled
//!   planned latency, accumulating observed vs. expected microsecond sums
//!   and a count of tasks deviating beyond a fixed ±25% guard band.
//!
//! [`TraceEvent::Scored`]: schemble_trace::TraceEvent::Scored
//! [`TraceEvent::Realized`]: schemble_trace::TraceEvent::Realized

use schemble_sim::SimTime;
use std::collections::HashMap;

/// Fixed guard band for the latency detector: a task deviating more than
/// this fraction from its profiled latency counts as an outlier.
const LATENCY_BAND_PCT: u64 = 25;

/// Per-executor latency-drift counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorDrift {
    /// Completed tasks measured.
    pub tasks: u64,
    /// Sum of observed service times, microseconds.
    pub observed_us: u64,
    /// Sum of profiled (expected) service times, microseconds.
    pub expected_us: u64,
    /// Tasks whose observed time left the ±25% band around the profile.
    pub outliers: u64,
}

/// The streaming drift state.
#[derive(Debug, Clone, Default)]
pub struct DriftState {
    /// Difficulty bins in play (0 disables the calibration detector).
    bins: usize,
    /// Profiled planned latency per (local) executor, microseconds. A
    /// sharded stream's global executor `k` maps back to profile
    /// `k % profiled.len()`.
    profiled_us: Vec<u64>,
    /// Predicted bin per open query.
    predicted: HashMap<u64, u8>,
    /// Start instant of each in-flight task.
    starts: HashMap<(u64, u16), SimTime>,
    /// (predicted, realized) bin pairs observed.
    pub pairs: u64,
    /// Pairs where predicted == realized bin.
    pub agree: u64,
    /// Σ |predicted − realized| over all pairs.
    pub distance: u64,
    /// Realized answers that were incorrect.
    pub incorrect: u64,
    /// Pairs per predicted bin.
    pub per_bin_predicted: Vec<u64>,
    /// Pairs per realized bin.
    pub per_bin_realized: Vec<u64>,
    /// Per-executor latency counters, indexed by global executor id.
    pub executors: Vec<ExecutorDrift>,
}

impl DriftState {
    /// A detector over `bins` difficulty bins and the given per-executor
    /// profiled latencies (µs). Either may be empty to disable that side.
    pub fn new(bins: usize, profiled_us: Vec<u64>) -> Self {
        Self {
            bins,
            profiled_us,
            per_bin_predicted: vec![0; bins],
            per_bin_realized: vec![0; bins],
            ..Self::default()
        }
    }

    /// The realized bin a fixed-point score falls into (mirrors
    /// `AccuracyProfile::bin_of` over the ×10⁶ representation).
    pub fn bin_of_fp(&self, score_fp: u32) -> u8 {
        if self.bins == 0 {
            return 0;
        }
        ((score_fp as u64 * self.bins as u64 / 1_000_000).min(self.bins as u64 - 1)) as u8
    }

    /// A query was scored at admission.
    pub fn on_scored(&mut self, query: u64, bin: u8) {
        self.predicted.insert(query, bin);
    }

    /// A query's assembled answer was evaluated.
    pub fn on_realized(&mut self, query: u64, score_fp: u32, correct: bool) {
        self.incorrect += (!correct) as u64;
        let Some(pred) = self.predicted.remove(&query) else { return };
        if self.bins == 0 {
            return;
        }
        let real = self.bin_of_fp(score_fp);
        self.pairs += 1;
        self.agree += (pred == real) as u64;
        self.distance += (pred as i64 - real as i64).unsigned_abs();
        if let Some(slot) = self.per_bin_predicted.get_mut(pred as usize) {
            *slot += 1;
        }
        if let Some(slot) = self.per_bin_realized.get_mut(real as usize) {
            *slot += 1;
        }
    }

    /// A task started on `executor`.
    pub fn on_task_start(&mut self, query: u64, executor: u16, t: SimTime) {
        self.starts.insert((query, executor), t);
    }

    /// A task failed; its start no longer produces a latency sample.
    pub fn on_task_failed(&mut self, query: u64, executor: u16) {
        self.starts.remove(&(query, executor));
    }

    /// A task completed; fold its observed service time into the detector.
    pub fn on_task_done(&mut self, query: u64, executor: u16, t: SimTime) {
        let Some(start) = self.starts.remove(&(query, executor)) else { return };
        if self.profiled_us.is_empty() {
            return;
        }
        let observed = t.saturating_since(start).as_micros();
        let expected = self.profiled_us[executor as usize % self.profiled_us.len()];
        if self.executors.len() <= executor as usize {
            self.executors.resize(executor as usize + 1, ExecutorDrift::default());
        }
        let e = &mut self.executors[executor as usize];
        e.tasks += 1;
        e.observed_us += observed;
        e.expected_us += expected;
        let band = expected * LATENCY_BAND_PCT / 100;
        if observed > expected + band || observed + band < expected {
            e.outliers += 1;
        }
    }

    /// A query left the system without evaluation; forget its prediction.
    pub fn on_query_closed(&mut self, query: u64) {
        self.predicted.remove(&query);
        self.starts.retain(|&(q, _), _| q != query);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn calibration_pairs_accumulate_agreement_and_distance() {
        let mut d = DriftState::new(4, vec![]);
        d.on_scored(0, 1);
        d.on_realized(0, 300_000, true); // bin 1 of 4 → agree
        d.on_scored(1, 0);
        d.on_realized(1, 999_999, false); // bin 3 → distance 3
        assert_eq!(d.pairs, 2);
        assert_eq!(d.agree, 1);
        assert_eq!(d.distance, 3);
        assert_eq!(d.incorrect, 1);
        assert_eq!(d.per_bin_predicted, vec![1, 1, 0, 0]);
        assert_eq!(d.per_bin_realized, vec![0, 1, 0, 1]);
    }

    #[test]
    fn realized_bin_clamps_to_the_top_bin() {
        let d = DriftState::new(4, vec![]);
        assert_eq!(d.bin_of_fp(0), 0);
        assert_eq!(d.bin_of_fp(249_999), 0);
        assert_eq!(d.bin_of_fp(250_000), 1);
        assert_eq!(d.bin_of_fp(1_000_000), 3, "score 1.0 clamps into the last bin");
    }

    #[test]
    fn latency_detector_tracks_observed_vs_profile_and_outliers() {
        let mut d = DriftState::new(0, vec![10_000, 20_000]);
        d.on_task_start(0, 0, us(0));
        d.on_task_done(0, 0, us(10_000)); // exactly on profile
        d.on_task_start(1, 1, us(0));
        d.on_task_done(1, 1, us(40_000)); // 2× profile → outlier
        d.on_task_start(2, 0, us(0));
        d.on_task_failed(2, 0); // failed tasks produce no sample
        d.on_task_done(2, 0, us(99_000)); // no matching start: ignored
        assert_eq!(
            d.executors[0],
            ExecutorDrift { tasks: 1, observed_us: 10_000, expected_us: 10_000, outliers: 0 }
        );
        assert_eq!(
            d.executors[1],
            ExecutorDrift { tasks: 1, observed_us: 40_000, expected_us: 20_000, outliers: 1 }
        );
    }

    #[test]
    fn sharded_executors_map_back_to_the_local_profile() {
        // Global executor 3 with a 2-model profile uses profile[1].
        let mut d = DriftState::new(0, vec![10_000, 20_000]);
        d.on_task_start(0, 3, us(0));
        d.on_task_done(0, 3, us(20_000));
        assert_eq!(d.executors[3].expected_us, 20_000);
        assert_eq!(d.executors[3].outliers, 0);
    }

    #[test]
    fn unrealized_queries_never_pair() {
        let mut d = DriftState::new(4, vec![]);
        d.on_scored(7, 2);
        d.on_query_closed(7); // expired before evaluation
        d.on_realized(7, 0, true); // stale event: no prediction left
        assert_eq!(d.pairs, 0);
    }
}
