//! Plan explainability: reconstructing one query's causal timeline.
//!
//! [`explain_query`] folds a drained trace stream into a [`PlanExplain`]
//! record — the predicted difficulty bin, the plan lineage (every
//! re-assignment with its predicted finish and the planning pass's
//! candidate-frontier width), the task/retry/failure history, and the
//! terminal outcome with realized score. [`PlanExplain::render`] turns it
//! into the human-readable timeline the `schemble explain` subcommand
//! prints.

use schemble_sim::SimTime;
use schemble_trace::{set_members, AdmissionVerdict, TraceEvent};

/// One (re-)assignment in a query's plan lineage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssignStep {
    /// When the planning pass ran.
    pub t: SimTime,
    /// Assigned model set (bit mask; 0 = revoked).
    pub set: u32,
    /// The plan's own predicted completion instant.
    pub predicted_finish: SimTime,
    /// Candidate-frontier width of the pass (0 = untracked scheduler).
    pub frontier: u32,
}

/// One task-level step in the query's execution history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskStep {
    /// Event time.
    pub t: SimTime,
    /// Executor involved.
    pub executor: u16,
    /// What happened.
    pub kind: TaskStepKind,
}

/// Task-step discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStepKind {
    /// Task began executing.
    Start,
    /// Task finished.
    Done,
    /// Task failed.
    Failed,
    /// Task was re-dispatched (`attempt` = retry number).
    Retried(u8),
    /// Task was quit early by the anytime policy.
    Quit,
}

/// This query's membership in one launched cross-query batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchStep {
    /// Launch instant.
    pub t: SimTime,
    /// Executor that ran the batched pass.
    pub executor: u16,
    /// Backend-assigned batch id.
    pub batch: u64,
    /// Total members in the batch (this query included).
    pub size: u32,
    /// The other queries co-batched into the same pass.
    pub co_queries: Vec<u64>,
    /// How long this query's task waited in the open batch before the
    /// launch, µs (the queue-wait half of its latency; the service half is
    /// the start→done span).
    pub queue_wait_us: u64,
}

/// One inter-shard transfer in a query's steal lineage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealStep {
    /// The epoch boundary the transfer resolved at.
    pub t: SimTime,
    /// Steal epoch index.
    pub epoch: u32,
    /// Shard the query left.
    pub victim: u16,
    /// Shard that adopted it.
    pub thief: u16,
}

/// How the query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Full result assembled over `set`.
    Completed {
        /// Completion instant.
        t: SimTime,
        /// Assembled model set.
        set: u32,
    },
    /// Partial-ensemble answer over `set`.
    Degraded {
        /// Completion instant.
        t: SimTime,
        /// Assembled model set.
        set: u32,
    },
    /// Dropped after admission.
    Expired {
        /// Expiry instant.
        t: SimTime,
    },
    /// Refused at arrival.
    Rejected {
        /// Rejection instant.
        t: SimTime,
    },
    /// Still in flight when the trace ended.
    Open,
}

/// Everything the trace recorded about one query's scheduling story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanExplain {
    /// The query.
    pub query: u64,
    /// Arrival instant.
    pub arrival: Option<SimTime>,
    /// Absolute deadline.
    pub deadline: Option<SimTime>,
    /// Admission verdict, as a stable label.
    pub admission: Option<&'static str>,
    /// Predicted difficulty bin.
    pub bin: Option<u8>,
    /// Predicted discrepancy score, ×10⁶.
    pub score_fp: Option<u32>,
    /// Plan lineage: every assignment change, oldest first.
    pub assigns: Vec<AssignStep>,
    /// Task history, oldest first.
    pub tasks: Vec<TaskStep>,
    /// Batches this query's tasks were launched in, oldest first.
    pub batches: Vec<BatchStep>,
    /// Work-steal lineage: every inter-shard transfer, oldest first (empty
    /// for the never-stolen common case, which renders unchanged).
    pub steals: Vec<StealStep>,
    /// Realized discrepancy score ×10⁶ (set on evaluation).
    pub realized_fp: Option<u32>,
    /// Whether the assembled answer was correct.
    pub correct: Option<bool>,
    /// Terminal outcome.
    pub outcome: Outcome,
}

impl PlanExplain {
    /// The shard the query was admitted on: the first steal's victim.
    /// `None` when the query was never stolen (unsharded runs, or a query
    /// that stayed home — the trace only records shard identity on
    /// transfers).
    pub fn home_shard(&self) -> Option<u16> {
        self.steals.first().map(|s| s.victim)
    }

    /// The shard that ultimately served the query: the last steal's thief.
    pub fn serving_shard(&self) -> Option<u16> {
        self.steals.last().map(|s| s.thief)
    }

    /// Deadline slack of the last plan, µs: positive means the plan expected
    /// to finish early. `None` until both a deadline and an assignment exist.
    pub fn predicted_slack_us(&self) -> Option<i64> {
        let deadline = self.deadline?;
        let last = self.assigns.last()?;
        Some(deadline.as_micros() as i64 - last.predicted_finish.as_micros() as i64)
    }

    /// Renders the timeline as indented human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let ms = |t: SimTime| t.as_micros() as f64 / 1000.0;
        let _ = writeln!(out, "query {}", self.query);
        if let (Some(a), Some(d)) = (self.arrival, self.deadline) {
            let _ = writeln!(out, "  arrival {:.3} ms, deadline {:.3} ms", ms(a), ms(d));
        }
        if let Some(v) = self.admission {
            let _ = writeln!(out, "  admission: {v}");
        }
        if let (Some(bin), Some(fp)) = (self.bin, self.score_fp) {
            let _ =
                writeln!(out, "  predicted difficulty: bin {bin} (score {:.6})", fp as f64 / 1e6);
        }
        if let (Some(home), Some(serving)) = (self.home_shard(), self.serving_shard()) {
            let _ = writeln!(out, "  home shard {home}, served by shard {serving}");
            for s in &self.steals {
                let _ = writeln!(
                    out,
                    "  stolen @ {:.3} ms: epoch {}, shard {} -> shard {}",
                    ms(s.t),
                    s.epoch,
                    s.victim,
                    s.thief
                );
            }
        }
        for a in &self.assigns {
            let members = set_members(a.set);
            let _ = writeln!(
                out,
                "  plan @ {:.3} ms: set {:?}, predicted finish {:.3} ms, frontier {}",
                ms(a.t),
                members,
                ms(a.predicted_finish),
                a.frontier
            );
        }
        if let Some(slack) = self.predicted_slack_us() {
            let _ = writeln!(out, "  predicted deadline slack: {:.3} ms", slack as f64 / 1000.0);
        }
        for task in &self.tasks {
            let what = match task.kind {
                TaskStepKind::Start => "start".to_string(),
                TaskStepKind::Done => "done".to_string(),
                TaskStepKind::Failed => "FAILED".to_string(),
                TaskStepKind::Retried(n) => format!("retry #{n}"),
                TaskStepKind::Quit => "QUIT (anytime)".to_string(),
            };
            let _ =
                writeln!(out, "  task @ {:.3} ms: executor {} {what}", ms(task.t), task.executor);
        }
        for b in &self.batches {
            let _ = writeln!(
                out,
                "  batch #{} @ {:.3} ms: executor {}, size {}, co-batched with {:?}, queue-wait {:.3} ms",
                b.batch,
                ms(b.t),
                b.executor,
                b.size,
                b.co_queries,
                b.queue_wait_us as f64 / 1000.0
            );
        }
        if let Some(fp) = self.realized_fp {
            let _ = writeln!(
                out,
                "  realized score {:.6}, correct: {}",
                fp as f64 / 1e6,
                self.correct.unwrap_or(false)
            );
        }
        let verdict = match self.outcome {
            Outcome::Completed { t, set } => {
                format!("completed @ {:.3} ms over set {:?}", ms(t), set_members(set))
            }
            Outcome::Degraded { t, set } => {
                format!("DEGRADED @ {:.3} ms over set {:?}", ms(t), set_members(set))
            }
            Outcome::Expired { t } => format!("EXPIRED @ {:.3} ms", ms(t)),
            Outcome::Rejected { t } => format!("rejected @ {:.3} ms", ms(t)),
            Outcome::Open => "still open at end of trace".to_string(),
        };
        let _ = writeln!(out, "  outcome: {verdict}");
        out
    }
}

/// Folds `events` into one query's [`PlanExplain`]. Returns `None` if the
/// stream never mentions the query.
pub fn explain_query(events: &[TraceEvent], query: u64) -> Option<PlanExplain> {
    let mut e = PlanExplain {
        query,
        arrival: None,
        deadline: None,
        admission: None,
        bin: None,
        score_fp: None,
        assigns: Vec::new(),
        tasks: Vec::new(),
        batches: Vec::new(),
        steals: Vec::new(),
        realized_fp: None,
        correct: None,
        outcome: Outcome::Open,
    };
    let mut seen = false;
    for ev in events {
        if ev.query() != Some(query) {
            continue;
        }
        seen = true;
        match *ev {
            TraceEvent::Arrival { t, deadline, .. } => {
                e.arrival = Some(t);
                e.deadline = Some(deadline);
            }
            TraceEvent::Admission { verdict, .. } => {
                e.admission = Some(match verdict {
                    AdmissionVerdict::Buffered => "buffered",
                    AdmissionVerdict::FastPath { .. } => "fast-path",
                    AdmissionVerdict::Selected { .. } => "selected",
                    AdmissionVerdict::Rejected => "rejected",
                });
                if let AdmissionVerdict::Rejected = verdict {
                    e.outcome = Outcome::Rejected { t: ev.time() };
                }
            }
            TraceEvent::Scored { bin, score_fp, .. } => {
                e.bin = Some(bin);
                e.score_fp = Some(score_fp);
            }
            TraceEvent::PlanAssign { t, set, predicted_finish, frontier, .. } => {
                e.assigns.push(AssignStep { t, set, predicted_finish, frontier });
            }
            TraceEvent::TaskEnqueue { .. } => {}
            TraceEvent::TaskStart { t, executor, .. } => {
                e.tasks.push(TaskStep { t, executor, kind: TaskStepKind::Start });
            }
            TraceEvent::TaskDone { t, executor, .. } => {
                e.tasks.push(TaskStep { t, executor, kind: TaskStepKind::Done });
            }
            TraceEvent::TaskFailed { t, executor, .. } => {
                e.tasks.push(TaskStep { t, executor, kind: TaskStepKind::Failed });
            }
            TraceEvent::TaskRetried { t, executor, attempt, .. } => {
                e.tasks.push(TaskStep { t, executor, kind: TaskStepKind::Retried(attempt) });
            }
            TraceEvent::Realized { score_fp, correct, .. } => {
                e.realized_fp = Some(score_fp);
                e.correct = Some(correct);
            }
            TraceEvent::QueryDone { t, set, .. } => e.outcome = Outcome::Completed { t, set },
            TraceEvent::DegradedAnswer { t, set, .. } => e.outcome = Outcome::Degraded { t, set },
            TraceEvent::QueryExpired { t, .. } => e.outcome = Outcome::Expired { t },
            TraceEvent::TaskQuit { t, executor, .. } => {
                e.tasks.push(TaskStep { t, executor, kind: TaskStepKind::Quit });
            }
            TraceEvent::QueryStolen { t, epoch, victim, thief, arrival, deadline, bin, .. } => {
                e.steals.push(StealStep { t, epoch, victim, thief });
                // A thief-side stream may never have seen the victim's
                // Arrival/Scored; the steal carries the admission state.
                e.arrival.get_or_insert(arrival);
                e.deadline.get_or_insert(deadline);
                e.bin.get_or_insert(bin);
            }
            // The per-decision summary adds nothing beyond its TaskQuit events.
            TraceEvent::WorkSaved { .. } => {}
            // Carries no query id; membership is recovered in the second
            // pass below from the shared (executor, launch-instant) key.
            TraceEvent::BatchFormed { .. } => {}
            TraceEvent::Plan { .. }
            | TraceEvent::ExecutorDown { .. }
            | TraceEvent::ExecutorUp { .. } => {}
        }
    }
    if !seen {
        return None;
    }
    // Batch membership: a launch emits every member's TaskStart and then one
    // BatchFormed, all at the launch instant on the launching executor — so
    // a BatchFormed sharing (executor, t) with one of this query's starts is
    // a batch containing it, and the other starts at that key are its
    // co-members. Queue-wait is measured from the member's TaskEnqueue.
    let starts: Vec<(SimTime, u16)> = e
        .tasks
        .iter()
        .filter(|s| s.kind == TaskStepKind::Start)
        .map(|s| (s.t, s.executor))
        .collect();
    for ev in events {
        if let TraceEvent::BatchFormed { t, executor, batch, size } = *ev {
            if !starts.contains(&(t, executor)) {
                continue;
            }
            let co_queries: Vec<u64> = events
                .iter()
                .filter_map(|other| match *other {
                    TraceEvent::TaskStart { t: t2, query: q2, executor: k2 }
                        if t2 == t && k2 == executor && q2 != query =>
                    {
                        Some(q2)
                    }
                    _ => None,
                })
                .collect();
            let queue_wait_us = events
                .iter()
                .filter_map(|other| match *other {
                    TraceEvent::TaskEnqueue { t: t2, query: q2, executor: k2 }
                        if q2 == query && k2 == executor && t2 <= t =>
                    {
                        Some(t2)
                    }
                    _ => None,
                })
                .max()
                .map_or(0, |t0| t.saturating_since(t0).as_micros());
            e.batches.push(BatchStep { t, executor, batch, size, co_queries, queue_wait_us });
        }
    }
    Some(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn story() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Arrival { t: at(0), query: 3, deadline: at(100) },
            TraceEvent::Admission { t: at(0), query: 3, verdict: AdmissionVerdict::Buffered },
            TraceEvent::Scored { t: at(0), query: 3, bin: 2, score_fp: 612_500 },
            TraceEvent::PlanAssign {
                t: at(1),
                query: 3,
                set: 0b11,
                predicted_finish: at(60),
                frontier: 12,
            },
            TraceEvent::TaskStart { t: at(2), query: 3, executor: 0 },
            TraceEvent::TaskFailed { t: at(10), query: 3, executor: 0 },
            TraceEvent::TaskRetried { t: at(15), query: 3, executor: 0, attempt: 1 },
            TraceEvent::PlanAssign {
                t: at(20),
                query: 3,
                set: 0b01,
                predicted_finish: at(80),
                frontier: 9,
            },
            TraceEvent::TaskStart { t: at(20), query: 3, executor: 0 },
            TraceEvent::TaskDone { t: at(70), query: 3, executor: 0 },
            TraceEvent::Realized { t: at(70), query: 3, score_fp: 550_000, correct: true },
            TraceEvent::DegradedAnswer { t: at(70), query: 3, set: 0b01 },
            // Noise from other queries must be ignored.
            TraceEvent::Arrival { t: at(5), query: 4, deadline: at(50) },
            TraceEvent::QueryExpired { t: at(50), query: 4 },
        ]
    }

    #[test]
    fn unknown_query_yields_none_not_an_empty_timeline() {
        // The CLI maps `None` to a non-zero exit with a clear error; a
        // `Some` with an empty timeline would silently exit 0 instead.
        assert!(explain_query(&story(), 99).is_none());
        assert!(explain_query(&[], 0).is_none());
    }

    #[test]
    fn reconstructs_the_full_lineage() {
        let e = explain_query(&story(), 3).expect("query 3 is in the stream");
        assert_eq!(e.arrival, Some(at(0)));
        assert_eq!(e.deadline, Some(at(100)));
        assert_eq!(e.admission, Some("buffered"));
        assert_eq!(e.bin, Some(2));
        assert_eq!(e.assigns.len(), 2);
        assert_eq!(e.assigns[1].set, 0b01);
        assert_eq!(e.assigns[1].frontier, 9);
        assert_eq!(e.predicted_slack_us(), Some(20_000), "deadline 100ms − finish 80ms");
        assert_eq!(e.tasks.len(), 5, "start, fail, retry, restart, done");
        assert_eq!(e.tasks[1].kind, TaskStepKind::Failed);
        assert_eq!(e.realized_fp, Some(550_000));
        assert_eq!(e.outcome, Outcome::Degraded { t: at(70), set: 0b01 });
    }

    #[test]
    fn render_mentions_every_section() {
        let e = explain_query(&story(), 3).unwrap();
        let text = e.render();
        for needle in [
            "query 3",
            "deadline 100.000 ms",
            "bin 2",
            "frontier 12",
            "predicted deadline slack: 20.000 ms",
            "retry #1",
            "DEGRADED",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn batch_membership_is_recovered_from_the_shared_launch_instant() {
        let events = vec![
            TraceEvent::Arrival { t: at(0), query: 7, deadline: at(100) },
            TraceEvent::TaskEnqueue { t: at(1), query: 7, executor: 2 },
            TraceEvent::TaskEnqueue { t: at(2), query: 8, executor: 2 },
            // Launch at 3ms: both members start, then the batch marker.
            TraceEvent::TaskStart { t: at(3), query: 7, executor: 2 },
            TraceEvent::TaskStart { t: at(3), query: 8, executor: 2 },
            TraceEvent::BatchFormed { t: at(3), executor: 2, batch: 5, size: 2 },
            // An unrelated batch on another executor must not attach.
            TraceEvent::TaskStart { t: at(3), query: 9, executor: 0 },
            TraceEvent::BatchFormed { t: at(3), executor: 0, batch: 6, size: 1 },
            TraceEvent::TaskDone { t: at(10), query: 7, executor: 2 },
            TraceEvent::QueryDone { t: at(10), query: 7, set: 0b100 },
        ];
        let e = explain_query(&events, 7).expect("query 7 is in the stream");
        assert_eq!(e.batches.len(), 1);
        let b = &e.batches[0];
        assert_eq!((b.batch, b.size, b.executor), (5, 2, 2));
        assert_eq!(b.co_queries, vec![8]);
        assert_eq!(b.queue_wait_us, 2_000, "enqueued at 1ms, launched at 3ms");
        let text = e.render();
        assert!(text.contains("batch #5"), "render shows membership:\n{text}");
        assert!(text.contains("co-batched with [8]"), "{text}");
        assert!(text.contains("queue-wait 2.000 ms"), "{text}");
    }

    #[test]
    fn never_stolen_query_renders_unchanged() {
        // The steal-aware renderer must not add a single byte for a query
        // with no steal lineage: same fold, same render as a hand-built
        // explain with the steal fields absent.
        let e = explain_query(&story(), 3).unwrap();
        assert!(e.steals.is_empty());
        assert_eq!(e.home_shard(), None);
        assert_eq!(e.serving_shard(), None);
        let text = e.render();
        assert!(!text.contains("shard"), "no shard lines for a never-stolen query:\n{text}");
        assert!(!text.contains("stolen"), "{text}");
        let mut stripped = e.clone();
        stripped.steals = Vec::new();
        assert_eq!(stripped.render(), text);
    }

    #[test]
    fn steal_lineage_shows_home_and_serving_shard() {
        let mut events = story();
        events.insert(
            4,
            TraceEvent::QueryStolen {
                t: at(1),
                query: 3,
                epoch: 1,
                victim: 2,
                thief: 0,
                victim_depth: 7,
                thief_depth: 1,
                arrival: at(0),
                deadline: at(100),
                bin: 2,
                score_fp: 612_500,
            },
        );
        let e = explain_query(&events, 3).unwrap();
        assert_eq!(e.steals.len(), 1);
        assert_eq!(e.home_shard(), Some(2));
        assert_eq!(e.serving_shard(), Some(0));
        let text = e.render();
        assert!(text.contains("home shard 2, served by shard 0"), "{text}");
        assert!(text.contains("stolen @ 1.000 ms: epoch 1, shard 2 -> shard 0"), "{text}");

        // Thief-only stream (no Arrival): the steal seeds the admission
        // state so the timeline still has an arrival and deadline.
        let thief_stream =
            vec![events[4], TraceEvent::QueryDone { t: at(70), query: 3, set: 0b01 }];
        let t = explain_query(&thief_stream, 3).unwrap();
        assert_eq!(t.arrival, Some(at(0)));
        assert_eq!(t.deadline, Some(at(100)));
        assert_eq!(t.bin, Some(2));
    }

    #[test]
    fn absent_queries_and_expiries_are_reported() {
        assert_eq!(explain_query(&story(), 99), None);
        let e = explain_query(&story(), 4).unwrap();
        assert_eq!(e.outcome, Outcome::Expired { t: at(50) });
        assert_eq!(e.predicted_slack_us(), None, "no plan ever assigned");
    }
}
