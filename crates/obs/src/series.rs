//! Windowed SLO time-series over the trace stream.
//!
//! Backend time is divided into fixed-width windows; each window accumulates
//! integer aggregates (arrival/terminal counters, a log-bucketed latency
//! histogram, scheduler-overhead sums) inside a fixed-capacity ring keyed by
//! the *absolute* window index, so a long run holds the most recent
//! `capacity` windows and evicts the oldest in O(1). All aggregation is
//! integer arithmetic over event fields — folding the same stream always
//! yields byte-identical exports, which is what lets the DES and the
//! virtual-clock serve backend cross-validate their telemetry.

use schemble_sim::{SimDuration, SimTime};

/// Number of latency-histogram buckets (4 per octave over 20 octaves).
const LAT_BUCKETS: usize = 80;
/// Lower edge of bucket 0, microseconds.
const LAT_MIN_US: u64 = 100;
/// Buckets per factor-of-two.
const LAT_PER_OCTAVE: f64 = 4.0;
/// Ring-slot sentinel: no window stored.
const EMPTY_SLOT: u64 = u64::MAX;

/// A plain-integer log-bucketed latency histogram (microseconds).
///
/// The non-atomic sibling of `schemble_metrics::LatencyHistogram`, sized for
/// per-window use: quantiles are reported as integer bucket upper edges so
/// every derived number is exactly reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyWindow {
    buckets: Vec<u64>,
    underflow: u64,
    count: u64,
    sum_us: u64,
}

impl Default for LatencyWindow {
    fn default() -> Self {
        Self { buckets: vec![0; LAT_BUCKETS], underflow: 0, count: 0, sum_us: 0 }
    }
}

impl LatencyWindow {
    /// Lower edge of bucket `i`, microseconds (a pure function of `i`).
    fn edge_us(i: usize) -> u64 {
        (LAT_MIN_US as f64 * 2f64.powf(i as f64 / LAT_PER_OCTAVE)).round() as u64
    }

    fn bucket_of(us: u64) -> Option<usize> {
        if us < LAT_MIN_US {
            return None;
        }
        let idx = ((us as f64 / LAT_MIN_US as f64).log2() * LAT_PER_OCTAVE) as usize;
        Some(idx.min(LAT_BUCKETS - 1))
    }

    /// Records one latency observation, in microseconds.
    pub fn record_us(&mut self, us: u64) {
        match Self::bucket_of(us) {
            Some(i) => self.buckets[i] += 1,
            None => self.underflow += 1,
        }
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// The `q`-quantile as the *upper edge* (µs) of the bucket holding it —
    /// an integer, so exports built from it are byte-stable. `None` while
    /// empty; underflow observations report 0.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return Some(0);
        }
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(Self::edge_us(i + 1));
            }
        }
        Some(Self::edge_us(LAT_BUCKETS))
    }

    /// Folds `other` into `self` (bucket-wise, saturating on the sum).
    pub fn merge_from(&mut self, other: &LatencyWindow) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.underflow += other.underflow;
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

/// Aggregates for one time window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Absolute window index (`t / window_us`).
    pub index: u64,
    /// Query arrivals in the window.
    pub arrivals: u64,
    /// Queries completed with a full result.
    pub completed: u64,
    /// Queries answered from a partial ensemble.
    pub degraded: u64,
    /// Queries dropped after admission.
    pub expired: u64,
    /// Queries refused at arrival.
    pub rejected: u64,
    /// Terminal events landing past the query's deadline (expiry always;
    /// late completions and degradations too).
    pub missed: u64,
    /// Task failures observed.
    pub failures: u64,
    /// Task retries dispatched.
    pub retries: u64,
    /// Planning passes.
    pub plans: u64,
    /// Simulated scheduling cost charged, microseconds.
    pub sched_cost_us: u64,
    /// Abstract scheduler work units consumed.
    pub plan_work: u64,
    /// Queries adopted by a thief shard via work stealing.
    pub stolen: u64,
    /// End-to-end latency of queries closed in this window.
    pub latency: LatencyWindow,
    /// Open queries when the window closed (`None` until a later window
    /// opens; the export stamps the live value for the newest window).
    pub open_at_end: Option<u64>,
}

/// Run-level totals, exempt from ring eviction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloTotals {
    /// Query arrivals.
    pub arrivals: u64,
    /// Full completions.
    pub completed: u64,
    /// Degraded answers.
    pub degraded: u64,
    /// Post-admission expiries.
    pub expired: u64,
    /// Admission rejections.
    pub rejected: u64,
    /// Deadline misses (see [`WindowStats::missed`]).
    pub missed: u64,
    /// Task failures.
    pub failures: u64,
    /// Task retries.
    pub retries: u64,
    /// Planning passes.
    pub plans: u64,
    /// Scheduling cost, microseconds.
    pub sched_cost_us: u64,
    /// Scheduler work units.
    pub plan_work: u64,
    /// Queries transferred between shards by work stealing.
    pub stolen: u64,
}

/// The windowed ring: most recent `capacity` windows by absolute index.
#[derive(Debug, Clone)]
pub struct SloSeries {
    window_us: u64,
    slots: Vec<WindowStats>,
    /// Highest window index seen (`EMPTY_SLOT` until the first event).
    max_index: u64,
    /// Open queries right now (arrivals − terminals − rejections).
    live_open: u64,
    /// Run totals.
    pub totals: SloTotals,
}

impl SloSeries {
    /// A series with `window` wide windows and room for `capacity` of them.
    pub fn new(window: SimDuration, capacity: usize) -> Self {
        let mut slots = vec![WindowStats::default(); capacity.max(1)];
        for s in &mut slots {
            s.index = EMPTY_SLOT;
        }
        Self {
            window_us: window.as_micros().max(1),
            slots,
            max_index: EMPTY_SLOT,
            live_open: 0,
            totals: SloTotals::default(),
        }
    }

    /// Window width, microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Open queries right now.
    pub fn live_open(&self) -> u64 {
        self.live_open
    }

    fn index_of(&self, t: SimTime) -> u64 {
        t.as_micros() / self.window_us
    }

    /// Advances the ring to the window holding `t` and returns its slot
    /// index. Called *before* the event's own gauge updates so the closing
    /// window is stamped with the queue depth as it stood at the boundary.
    /// Returns `None` for an event older than the ring's oldest retained
    /// window — impossible for the sorted streams the fold consumes, but
    /// tolerated so a malformed input degrades to totals-only accounting.
    fn touch(&mut self, t: SimTime) -> Option<usize> {
        let idx = self.index_of(t);
        let cap = self.slots.len() as u64;
        if self.max_index == EMPTY_SLOT || idx > self.max_index {
            // Advancing: the previously-newest window is now closed; stamp
            // its end-of-window queue depth before any later event mutates
            // the live gauge.
            if self.max_index != EMPTY_SLOT {
                let prev = &mut self.slots[(self.max_index % cap) as usize];
                if prev.index == self.max_index {
                    prev.open_at_end = Some(self.live_open);
                }
            }
            self.max_index = idx;
        } else if idx + cap <= self.max_index {
            return None; // Older than anything retained.
        }
        let slot_idx = (idx % cap) as usize;
        let slot = &mut self.slots[slot_idx];
        if slot.index != idx {
            *slot = WindowStats { index: idx, ..WindowStats::default() };
        }
        Some(slot_idx)
    }

    /// Records a query arrival.
    pub fn on_arrival(&mut self, t: SimTime) {
        let slot = self.touch(t);
        self.totals.arrivals += 1;
        self.live_open += 1;
        if let Some(i) = slot {
            self.slots[i].arrivals += 1;
        }
    }

    /// Records an admission rejection.
    pub fn on_rejected(&mut self, t: SimTime) {
        let slot = self.touch(t);
        self.totals.rejected += 1;
        self.live_open = self.live_open.saturating_sub(1);
        if let Some(i) = slot {
            self.slots[i].rejected += 1;
        }
    }

    /// Records a full completion; `latency_us` is end-to-end, `missed` marks
    /// a past-deadline finish.
    pub fn on_completed(&mut self, t: SimTime, latency_us: u64, missed: bool) {
        let slot = self.touch(t);
        self.totals.completed += 1;
        self.totals.missed += missed as u64;
        self.live_open = self.live_open.saturating_sub(1);
        if let Some(i) = slot {
            let w = &mut self.slots[i];
            w.completed += 1;
            w.missed += missed as u64;
            w.latency.record_us(latency_us);
        }
    }

    /// Records a degraded answer.
    pub fn on_degraded(&mut self, t: SimTime, latency_us: u64, missed: bool) {
        let slot = self.touch(t);
        self.totals.degraded += 1;
        self.totals.missed += missed as u64;
        self.live_open = self.live_open.saturating_sub(1);
        if let Some(i) = slot {
            let w = &mut self.slots[i];
            w.degraded += 1;
            w.missed += missed as u64;
            w.latency.record_us(latency_us);
        }
    }

    /// Records a post-admission expiry (always a deadline miss).
    pub fn on_expired(&mut self, t: SimTime) {
        let slot = self.touch(t);
        self.totals.expired += 1;
        self.totals.missed += 1;
        self.live_open = self.live_open.saturating_sub(1);
        if let Some(i) = slot {
            let w = &mut self.slots[i];
            w.expired += 1;
            w.missed += 1;
        }
    }

    /// Records one planning pass.
    pub fn on_plan(&mut self, t: SimTime, cost: SimDuration, work: u64) {
        let slot = self.touch(t);
        self.totals.plans += 1;
        self.totals.sched_cost_us += cost.as_micros();
        self.totals.plan_work += work;
        if let Some(i) = slot {
            let w = &mut self.slots[i];
            w.plans += 1;
            w.sched_cost_us += cost.as_micros();
            w.plan_work += work;
        }
    }

    /// Records a task failure.
    pub fn on_task_failed(&mut self, t: SimTime) {
        let slot = self.touch(t);
        self.totals.failures += 1;
        if let Some(i) = slot {
            self.slots[i].failures += 1;
        }
    }

    /// Records a task retry.
    pub fn on_task_retried(&mut self, t: SimTime) {
        let slot = self.touch(t);
        self.totals.retries += 1;
        if let Some(i) = slot {
            self.slots[i].retries += 1;
        }
    }

    /// Records a work-steal adoption. The query stays open (stealing moves
    /// it between shards without closing it), so only the counters move.
    pub fn on_stolen(&mut self, t: SimTime) {
        let slot = self.touch(t);
        self.totals.stolen += 1;
        if let Some(i) = slot {
            self.slots[i].stolen += 1;
        }
    }

    /// The retained windows in ascending index order, with the newest
    /// window's queue depth stamped from the live gauge. A slot whose window
    /// was logically evicted by a far jump (its index now trails the newest
    /// by at least the capacity) is excluded even if nothing overwrote it.
    pub fn windows(&self) -> Vec<WindowStats> {
        let cap = self.slots.len() as u64;
        let mut out: Vec<WindowStats> = self
            .slots
            .iter()
            .filter(|s| s.index != EMPTY_SLOT && s.index + cap > self.max_index)
            .cloned()
            .collect();
        out.sort_by_key(|w| w.index);
        if let Some(last) = out.last_mut() {
            if last.open_at_end.is_none() {
                last.open_at_end = Some(self.live_open);
            }
        }
        out
    }

    /// Merges two series (e.g. per-shard folds) window-by-absolute-index:
    /// counters add, histograms merge, queue depths add (each shard's open
    /// set is disjoint). Both series must share the window width. The result
    /// keeps the larger capacity and the most recent windows.
    pub fn merged(&self, other: &SloSeries) -> SloSeries {
        assert_eq!(self.window_us, other.window_us, "window widths must match to merge");
        let mut out =
            SloSeries::new(SimDuration(self.window_us), self.slots.len().max(other.slots.len()));
        let mut all = self.windows();
        all.extend(other.windows());
        all.sort_by_key(|w| w.index);
        let cap = out.slots.len() as u64;
        for w in all {
            if out.max_index == EMPTY_SLOT || w.index > out.max_index {
                out.max_index = w.index;
            }
            if w.index + cap <= out.max_index {
                continue;
            }
            let slot = &mut out.slots[(w.index % cap) as usize];
            if slot.index != w.index {
                *slot = WindowStats { index: w.index, ..WindowStats::default() };
                slot.open_at_end = Some(0);
            }
            slot.arrivals += w.arrivals;
            slot.completed += w.completed;
            slot.degraded += w.degraded;
            slot.expired += w.expired;
            slot.rejected += w.rejected;
            slot.missed += w.missed;
            slot.failures += w.failures;
            slot.retries += w.retries;
            slot.plans += w.plans;
            slot.sched_cost_us += w.sched_cost_us;
            slot.plan_work += w.plan_work;
            slot.stolen += w.stolen;
            slot.latency.merge_from(&w.latency);
            slot.open_at_end = match (slot.open_at_end, w.open_at_end) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
        let t = &mut out.totals;
        for src in [&self.totals, &other.totals] {
            t.arrivals += src.arrivals;
            t.completed += src.completed;
            t.degraded += src.degraded;
            t.expired += src.expired;
            t.rejected += src.rejected;
            t.missed += src.missed;
            t.failures += src.failures;
            t.retries += src.retries;
            t.plans += src.plans;
            t.sched_cost_us += src.sched_cost_us;
            t.plan_work += src.plan_work;
            t.stolen += src.stolen;
        }
        out.live_open = self.live_open + other.live_open;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn windows_partition_time_and_aggregate_counts() {
        let mut s = SloSeries::new(SimDuration::from_millis(100), 16);
        s.on_arrival(at(10));
        s.on_arrival(at(20));
        s.on_completed(at(150), 140_000, false);
        s.on_expired(at(250));
        let ws = s.windows();
        assert_eq!(ws.len(), 3);
        assert_eq!((ws[0].index, ws[0].arrivals), (0, 2));
        assert_eq!((ws[1].index, ws[1].completed), (1, 1));
        assert_eq!((ws[2].index, ws[2].expired, ws[2].missed), (2, 1, 1));
        // Queue depth: 2 open after window 0, 1 after window 1, 0 now.
        assert_eq!(ws[0].open_at_end, Some(2));
        assert_eq!(ws[1].open_at_end, Some(1));
        assert_eq!(ws[2].open_at_end, Some(0));
        assert_eq!(s.totals.arrivals, 2);
        assert_eq!(s.totals.missed, 1);
    }

    #[test]
    fn ring_wraps_and_keeps_only_the_newest_windows() {
        let mut s = SloSeries::new(SimDuration::from_millis(10), 4);
        for w in 0..10u64 {
            s.on_arrival(SimTime::from_micros(w * 10_000 + 1));
            s.on_completed(SimTime::from_micros(w * 10_000 + 2), 500, false);
        }
        let ws = s.windows();
        assert_eq!(ws.len(), 4, "capacity bounds the retained windows");
        assert_eq!(ws.iter().map(|w| w.index).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        // Totals survive eviction.
        assert_eq!(s.totals.arrivals, 10);
        assert_eq!(s.totals.completed, 10);
        // A fresh arrival far in the future evicts everything else.
        s.on_arrival(SimTime::from_micros(100 * 10_000));
        let ws = s.windows();
        assert_eq!(ws.last().unwrap().index, 100);
        assert!(ws.iter().all(|w| w.index + 4 > 100));
    }

    #[test]
    fn sparse_streams_skip_empty_windows() {
        let mut s = SloSeries::new(SimDuration::from_millis(10), 8);
        s.on_arrival(at(5));
        s.on_completed(at(65), 60_000, true);
        let ws = s.windows();
        assert_eq!(ws.iter().map(|w| w.index).collect::<Vec<_>>(), vec![0, 6]);
        assert_eq!(ws[1].missed, 1);
    }

    #[test]
    fn quantiles_are_integer_bucket_edges() {
        let mut h = LatencyWindow::default();
        for _ in 0..99 {
            h.record_us(10_000);
        }
        h.record_us(1_000_000);
        let p50 = h.quantile_us(0.50).unwrap();
        let p99 = h.quantile_us(0.99).unwrap();
        assert!((8_000..=14_000).contains(&p50), "p50 {p50}");
        assert!((8_000..=14_000).contains(&p99), "p99 {p99}: 99 of 100 at 10ms");
        assert_eq!(h.quantile_us(1.0).map(|q| q > 800_000), Some(true));
        assert_eq!(LatencyWindow::default().quantile_us(0.5), None);
        let mut tiny = LatencyWindow::default();
        tiny.record_us(10); // below the first edge
        assert_eq!(tiny.quantile_us(0.5), Some(0));
    }

    #[test]
    fn merging_two_shards_adds_counts_and_depths() {
        let mut a = SloSeries::new(SimDuration::from_millis(100), 8);
        let mut b = SloSeries::new(SimDuration::from_millis(100), 8);
        a.on_arrival(at(10));
        a.on_completed(at(50), 40_000, false);
        b.on_arrival(at(20));
        b.on_arrival(at(120));
        let m = a.merged(&b);
        let ws = m.windows();
        assert_eq!(ws[0].arrivals, 2);
        assert_eq!(ws[0].completed, 1);
        assert_eq!(ws[1].arrivals, 1);
        assert_eq!(m.totals.arrivals, 3);
        assert_eq!(m.live_open(), 2);
        // Merge is symmetric.
        let m2 = b.merged(&a);
        assert_eq!(m.windows(), m2.windows());
        assert_eq!(m.totals, m2.totals);
    }
}
