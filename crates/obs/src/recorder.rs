//! The post-mortem flight recorder.
//!
//! A bounded ring of the most recent trace events, fed through the sink's
//! [`EventTap`] so it sees the stream even when the main trace ring is
//! disabled. Unlike [`TraceSink`] (which drops *new* events when full), the
//! recorder overwrites the *oldest* — a post-mortem wants the moments before
//! the failure, not the start of the run.
//!
//! The recorder trips at most once, on the first of:
//!
//! * **SLO breach** — the tap has counted `breach_expired` query expiries;
//! * **wedge** — the serve runtime's watchdog declared the run stalled;
//! * **worker panic** — a worker thread died and was reaped.
//!
//! Once tripped, [`FlightRecorder::dump_json`] renders the ring plus the
//! trip context as a single JSON document (validated in tests and CI by the
//! repo's hand-rolled `schemble_trace::json::validate`).
//!
//! [`TraceSink`]: schemble_trace::TraceSink
//! [`EventTap`]: schemble_trace::EventTap

use schemble_trace::json::escape;
use schemble_trace::{EventTap, TraceEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Mutex;

/// Why the recorder tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripReason {
    /// The expiry count crossed the configured SLO-breach threshold.
    SloBreach,
    /// The runtime's wedge watchdog fired (no progress across timeouts).
    Wedge,
    /// A worker thread panicked and was reaped.
    WorkerPanic,
}

impl TripReason {
    /// Stable label used in the dump.
    pub fn as_str(self) -> &'static str {
        match self {
            TripReason::SloBreach => "slo-breach",
            TripReason::Wedge => "wedge",
            TripReason::WorkerPanic => "worker-panic",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    ring: VecDeque<TraceEvent>,
    /// Events overwritten because the ring was full.
    overwritten: u64,
    /// `QueryExpired` events seen.
    expired: u64,
    reason: Option<TripReason>,
}

/// A lock-light bounded flight recorder (one short mutex hold per event).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    breach_expired: Option<u64>,
    tripped: AtomicBool,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events; `breach_expired`
    /// arms the SLO-breach trip at that many query expiries (`None` = never).
    pub fn new(capacity: usize, breach_expired: Option<u64>) -> Self {
        Self {
            capacity: capacity.max(1),
            breach_expired,
            tripped: AtomicBool::new(false),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking worker mid-record must not poison the post-mortem path.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Trips the recorder; the first reason wins. Returns whether this call
    /// set it.
    pub fn trip(&self, reason: TripReason) -> bool {
        let mut g = self.lock();
        if g.reason.is_some() {
            return false;
        }
        g.reason = Some(reason);
        self.tripped.store(true, Relaxed);
        true
    }

    /// The trip reason, if the recorder has tripped.
    pub fn tripped(&self) -> Option<TripReason> {
        if !self.tripped.load(Relaxed) {
            return None;
        }
        self.lock().reason
    }

    /// Events currently retained (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().ring.iter().copied().collect()
    }

    /// Renders the ring plus trip context as one JSON document.
    pub fn dump_json(&self) -> String {
        let g = self.lock();
        let mut out = String::with_capacity(64 + g.ring.len() * 96);
        out.push_str("{\"reason\":");
        match g.reason {
            Some(r) => {
                out.push('"');
                out.push_str(r.as_str());
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"expired\":{},\"overwritten\":{},\"events\":[",
            g.expired, g.overwritten
        ));
        for (i, ev) in g.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event_json(ev));
        }
        out.push_str("]}");
        out
    }
}

impl EventTap for FlightRecorder {
    fn on_event(&self, event: TraceEvent) {
        let mut g = self.lock();
        if g.ring.len() >= self.capacity {
            g.ring.pop_front();
            g.overwritten += 1;
        }
        g.ring.push_back(event);
        if let TraceEvent::QueryExpired { .. } = event {
            g.expired += 1;
            if let Some(threshold) = self.breach_expired {
                if g.expired >= threshold && g.reason.is_none() {
                    g.reason = Some(TripReason::SloBreach);
                    self.tripped.store(true, Relaxed);
                }
            }
        }
    }
}

/// One trace event as a self-describing JSON object (integer fields only, so
/// the encoding is exact).
pub fn event_json(ev: &TraceEvent) -> String {
    use schemble_trace::AdmissionVerdict as V;
    let t = ev.time().as_micros();
    match *ev {
        TraceEvent::Arrival { query, deadline, .. } => format!(
            "{{\"type\":\"arrival\",\"t_us\":{t},\"query\":{query},\"deadline_us\":{}}}",
            deadline.as_micros()
        ),
        TraceEvent::Admission { query, verdict, .. } => {
            let (label, extra) = match verdict {
                V::Buffered => ("buffered", String::new()),
                V::FastPath { executor } => ("fast-path", format!(",\"executor\":{executor}")),
                V::Selected { set } => ("selected", format!(",\"set\":{set}")),
                V::Rejected => ("rejected", String::new()),
            };
            format!(
                "{{\"type\":\"admission\",\"t_us\":{t},\"query\":{query},\"verdict\":\"{}\"{extra}}}",
                escape(label)
            )
        }
        TraceEvent::Plan { buffer, scheduled, work, cost, .. } => format!(
            "{{\"type\":\"plan\",\"t_us\":{t},\"buffer\":{buffer},\"scheduled\":{scheduled},\"work\":{work},\"cost_us\":{}}}",
            cost.as_micros()
        ),
        TraceEvent::TaskEnqueue { query, executor, .. } => format!(
            "{{\"type\":\"task-enqueue\",\"t_us\":{t},\"query\":{query},\"executor\":{executor}}}"
        ),
        TraceEvent::TaskStart { query, executor, .. } => format!(
            "{{\"type\":\"task-start\",\"t_us\":{t},\"query\":{query},\"executor\":{executor}}}"
        ),
        TraceEvent::TaskDone { query, executor, .. } => format!(
            "{{\"type\":\"task-done\",\"t_us\":{t},\"query\":{query},\"executor\":{executor}}}"
        ),
        TraceEvent::QueryDone { query, set, .. } => {
            format!("{{\"type\":\"query-done\",\"t_us\":{t},\"query\":{query},\"set\":{set}}}")
        }
        TraceEvent::QueryExpired { query, .. } => {
            format!("{{\"type\":\"query-expired\",\"t_us\":{t},\"query\":{query}}}")
        }
        TraceEvent::TaskFailed { query, executor, .. } => format!(
            "{{\"type\":\"task-failed\",\"t_us\":{t},\"query\":{query},\"executor\":{executor}}}"
        ),
        TraceEvent::TaskRetried { query, executor, attempt, .. } => format!(
            "{{\"type\":\"task-retried\",\"t_us\":{t},\"query\":{query},\"executor\":{executor},\"attempt\":{attempt}}}"
        ),
        TraceEvent::ExecutorDown { executor, .. } => {
            format!("{{\"type\":\"executor-down\",\"t_us\":{t},\"executor\":{executor}}}")
        }
        TraceEvent::ExecutorUp { executor, .. } => {
            format!("{{\"type\":\"executor-up\",\"t_us\":{t},\"executor\":{executor}}}")
        }
        TraceEvent::DegradedAnswer { query, set, .. } => {
            format!("{{\"type\":\"degraded\",\"t_us\":{t},\"query\":{query},\"set\":{set}}}")
        }
        TraceEvent::Scored { query, bin, score_fp, .. } => format!(
            "{{\"type\":\"scored\",\"t_us\":{t},\"query\":{query},\"bin\":{bin},\"score_fp\":{score_fp}}}"
        ),
        TraceEvent::PlanAssign { query, set, predicted_finish, frontier, .. } => format!(
            "{{\"type\":\"plan-assign\",\"t_us\":{t},\"query\":{query},\"set\":{set},\"predicted_finish_us\":{},\"frontier\":{frontier}}}",
            predicted_finish.as_micros()
        ),
        TraceEvent::Realized { query, score_fp, correct, .. } => format!(
            "{{\"type\":\"realized\",\"t_us\":{t},\"query\":{query},\"score_fp\":{score_fp},\"correct\":{correct}}}"
        ),
        TraceEvent::TaskQuit { query, executor, .. } => format!(
            "{{\"type\":\"task-quit\",\"t_us\":{t},\"query\":{query},\"executor\":{executor}}}"
        ),
        TraceEvent::WorkSaved { query, saved, .. } => {
            format!("{{\"type\":\"work-saved\",\"t_us\":{t},\"query\":{query},\"saved\":{saved}}}")
        }
        TraceEvent::BatchFormed { executor, batch, size, .. } => format!(
            "{{\"type\":\"batch-formed\",\"t_us\":{t},\"executor\":{executor},\"batch\":{batch},\"size\":{size}}}"
        ),
        TraceEvent::QueryStolen { query, epoch, victim, thief, .. } => format!(
            "{{\"type\":\"query-stolen\",\"t_us\":{t},\"query\":{query},\"epoch\":{epoch},\"victim\":{victim},\"thief\":{thief}}}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::{SimDuration, SimTime};
    use schemble_trace::json::validate;
    use schemble_trace::TraceSink;
    use std::sync::Arc;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let rec = FlightRecorder::new(3, None);
        for q in 0..5u64 {
            rec.on_event(TraceEvent::Arrival { t: at(q), query: q, deadline: at(q + 9) });
        }
        let kept: Vec<u64> = rec.events().iter().filter_map(|e| e.query()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events are overwritten");
        assert_eq!(rec.lock().overwritten, 2);
    }

    #[test]
    fn expiry_threshold_trips_slo_breach_once() {
        let rec = FlightRecorder::new(8, Some(2));
        rec.on_event(TraceEvent::QueryExpired { t: at(1), query: 0 });
        assert_eq!(rec.tripped(), None);
        rec.on_event(TraceEvent::QueryExpired { t: at(2), query: 1 });
        assert_eq!(rec.tripped(), Some(TripReason::SloBreach));
        // A later manual trip does not override the first reason.
        assert!(!rec.trip(TripReason::Wedge));
        assert_eq!(rec.tripped(), Some(TripReason::SloBreach));
    }

    #[test]
    fn manual_trip_wins_when_first() {
        let rec = FlightRecorder::new(8, Some(100));
        assert!(rec.trip(TripReason::WorkerPanic));
        assert_eq!(rec.tripped(), Some(TripReason::WorkerPanic));
    }

    #[test]
    fn dump_is_valid_json_covering_every_variant() {
        let rec = FlightRecorder::new(64, Some(1));
        // Feed one of every event variant through the tap entry point.
        let events = vec![
            TraceEvent::Arrival { t: at(0), query: 1, deadline: at(9) },
            TraceEvent::Admission {
                t: at(0),
                query: 1,
                verdict: schemble_trace::AdmissionVerdict::FastPath { executor: 2 },
            },
            TraceEvent::Plan {
                t: at(1),
                buffer: 2,
                scheduled: 1,
                work: 64,
                cost: SimDuration::from_micros(17),
            },
            TraceEvent::TaskEnqueue { t: at(1), query: 1, executor: 0 },
            TraceEvent::TaskStart { t: at(1), query: 1, executor: 0 },
            TraceEvent::TaskDone { t: at(2), query: 1, executor: 0 },
            TraceEvent::TaskFailed { t: at(2), query: 1, executor: 1 },
            TraceEvent::TaskRetried { t: at(3), query: 1, executor: 1, attempt: 1 },
            TraceEvent::ExecutorDown { t: at(3), executor: 1 },
            TraceEvent::ExecutorUp { t: at(4), executor: 1 },
            TraceEvent::Scored { t: at(4), query: 1, bin: 3, score_fp: 437_500 },
            TraceEvent::PlanAssign {
                t: at(4),
                query: 1,
                set: 0b101,
                predicted_finish: at(8),
                frontier: 6,
            },
            TraceEvent::Realized { t: at(5), query: 1, score_fp: 431_000, correct: true },
            TraceEvent::TaskQuit { t: at(5), query: 1, executor: 2 },
            TraceEvent::WorkSaved { t: at(5), query: 1, saved: 1 },
            TraceEvent::BatchFormed { t: at(5), executor: 1, batch: 3, size: 4 },
            TraceEvent::DegradedAnswer { t: at(5), query: 1, set: 0b001 },
            TraceEvent::QueryDone { t: at(5), query: 2, set: 0b111 },
            TraceEvent::QueryExpired { t: at(6), query: 3 },
        ];
        for ev in events {
            rec.on_event(ev);
        }
        assert_eq!(rec.tripped(), Some(TripReason::SloBreach));
        let dump = rec.dump_json();
        validate(&dump).expect("dump must be well-formed JSON");
        assert!(dump.starts_with("{\"reason\":\"slo-breach\""));
        assert!(dump.contains("\"type\":\"plan-assign\""));
        assert!(dump.contains("\"predicted_finish_us\":8000"));
    }

    #[test]
    fn untripped_dump_has_null_reason() {
        let rec = FlightRecorder::new(4, None);
        rec.on_event(TraceEvent::QueryExpired { t: at(1), query: 0 });
        let dump = rec.dump_json();
        validate(&dump).expect("valid JSON");
        assert!(dump.starts_with("{\"reason\":null,\"expired\":1"));
    }

    #[test]
    fn tap_wiring_reaches_the_recorder_with_the_ring_disabled() {
        let rec = Arc::new(FlightRecorder::new(8, None));
        let sink = TraceSink::disabled();
        sink.set_tap(Some(rec.clone()));
        sink.emit(TraceEvent::QueryExpired { t: at(1), query: 7 });
        assert_eq!(rec.events().len(), 1);
        assert_eq!(sink.drain().len(), 0, "the main ring stayed disabled");
    }
}
