//! `schemble-obs`: live introspection over the trace stream.
//!
//! Everything in this crate is a *pure fold* over the
//! [`TraceEvent`](schemble_trace::TraceEvent) stream the serving stack
//! already emits — no new instrumentation in the hot path, no wall-clock
//! reads, integer arithmetic throughout. Because the DES pipeline and the
//! virtual-clock serve backend produce byte-identical event streams (pinned
//! by the repo's `trace_export` test), every export this crate derives is
//! byte-identical between them *by construction*; the same argument covers
//! sharded runs, whose merged stream is invariant to shard interleaving.
//!
//! Four subsystems:
//!
//! * [`series`] — windowed SLO time-series (latency quantiles,
//!   deadline-miss / degraded rates, queue depth, scheduler overhead) in a
//!   fixed-capacity ring keyed by absolute window index, exported as NDJSON
//!   ([`ObsState::slo_ndjson`]) and Prometheus gauges
//!   ([`ObsState::prometheus`]).
//! * [`explain`] — per-query plan explainability: `schemble explain`
//!   reconstructs one query's causal timeline (predicted bin, plan lineage
//!   with frontier widths and predicted finishes, retries, outcome).
//! * [`drift`] — streaming calibration-drift detectors (predicted vs.
//!   realized difficulty bin; executor latency vs. its profiled curve).
//! * [`recorder`] — a bounded, overwrite-oldest flight recorder tapped into
//!   the sink, tripped on SLO breach / wedge / worker panic, dumping a
//!   schema-checked JSON post-mortem.

pub mod drift;
pub mod explain;
pub mod recorder;
pub mod series;

pub use drift::{DriftState, ExecutorDrift};
pub use explain::{explain_query, AssignStep, Outcome, PlanExplain, TaskStep, TaskStepKind};
pub use recorder::{event_json, FlightRecorder, TripReason};
pub use series::{LatencyWindow, SloSeries, SloTotals, WindowStats};

use schemble_sim::{SimDuration, SimTime};
use schemble_trace::{AdmissionVerdict, TraceEvent};
use std::collections::{BTreeMap, HashMap};

/// Configuration for an [`ObsState`] fold.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// SLO window width (default 1 s).
    pub window: SimDuration,
    /// Windows retained in the ring (default 512).
    pub capacity: usize,
    /// Difficulty bins for the calibration detector (0 disables it).
    pub bins: usize,
    /// Profiled planned latency per executor, microseconds (empty disables
    /// the latency-drift detector).
    pub profiled_latencies_us: Vec<u64>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            window: SimDuration::from_millis(1000),
            capacity: 512,
            bins: 0,
            profiled_latencies_us: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenQuery {
    arrival: SimTime,
    deadline: SimTime,
}

/// The full introspection fold: SLO series + drift detectors.
#[derive(Debug, Clone)]
pub struct ObsState {
    /// The windowed SLO time-series.
    pub series: SloSeries,
    /// The drift detectors.
    pub drift: DriftState,
    open: HashMap<u64, OpenQuery>,
    /// Last steal-eligible queue depth each shard published at a steal
    /// epoch (keyed by shard id; populated only by `QueryStolen` events, so
    /// runs without stealing carry — and export — nothing here).
    shard_backlog: BTreeMap<u16, u64>,
}

impl ObsState {
    /// An empty fold.
    pub fn new(config: &ObsConfig) -> Self {
        Self {
            series: SloSeries::new(config.window, config.capacity),
            drift: DriftState::new(config.bins, config.profiled_latencies_us.clone()),
            open: HashMap::new(),
            shard_backlog: BTreeMap::new(),
        }
    }

    /// Folds a whole drained stream.
    pub fn fold(config: &ObsConfig, events: &[TraceEvent]) -> Self {
        let mut state = Self::new(config);
        for ev in events {
            state.ingest(ev);
        }
        state
    }

    /// Folds one event. The stream must be time-sorted (both backends emit
    /// it that way, and the shard merge re-establishes it).
    pub fn ingest(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Arrival { t, query, deadline } => {
                self.series.on_arrival(t);
                self.open.insert(query, OpenQuery { arrival: t, deadline });
            }
            TraceEvent::Admission { t, query, verdict } => {
                if verdict == AdmissionVerdict::Rejected {
                    self.series.on_rejected(t);
                    self.open.remove(&query);
                }
            }
            TraceEvent::Plan { t, work, cost, .. } => self.series.on_plan(t, cost, work),
            TraceEvent::TaskEnqueue { .. } => {}
            TraceEvent::TaskStart { t, query, executor } => {
                self.drift.on_task_start(query, executor, t)
            }
            TraceEvent::TaskDone { t, query, executor } => {
                self.drift.on_task_done(query, executor, t)
            }
            TraceEvent::TaskFailed { t, query, executor } => {
                self.series.on_task_failed(t);
                self.drift.on_task_failed(query, executor);
            }
            TraceEvent::TaskRetried { t, .. } => self.series.on_task_retried(t),
            TraceEvent::QueryDone { t, query, .. } => {
                let (latency, missed) = self.close(query, t);
                self.series.on_completed(t, latency, missed);
                self.drift.on_query_closed(query);
            }
            TraceEvent::DegradedAnswer { t, query, .. } => {
                let (latency, missed) = self.close(query, t);
                self.series.on_degraded(t, latency, missed);
                self.drift.on_query_closed(query);
            }
            TraceEvent::QueryExpired { t, query } => {
                self.open.remove(&query);
                self.series.on_expired(t);
                self.drift.on_query_closed(query);
            }
            TraceEvent::ExecutorDown { .. } | TraceEvent::ExecutorUp { .. } => {}
            TraceEvent::Scored { query, bin, .. } => self.drift.on_scored(query, bin),
            TraceEvent::PlanAssign { .. } => {}
            TraceEvent::Realized { query, score_fp, correct, .. } => {
                self.drift.on_realized(query, score_fp, correct)
            }
            // A quit running task never completes, so discard its open start
            // like a failure would — a quit span must not feed the
            // latency-drift detector. WorkSaved is a summary of TaskQuit
            // events and changes no fold state.
            TraceEvent::TaskQuit { query, executor, .. } => {
                self.drift.on_task_failed(query, executor)
            }
            TraceEvent::WorkSaved { .. } => {}
            // Batch launches change no SLO or drift state: members' own
            // TaskStart/TaskDone events already carry their timings.
            TraceEvent::BatchFormed { .. } => {}
            // A steal moves the query between shards without closing it:
            // count it and remember the depths both sides published.
            TraceEvent::QueryStolen { t, victim, thief, victim_depth, thief_depth, .. } => {
                self.series.on_stolen(t);
                self.shard_backlog.insert(victim, victim_depth as u64);
                self.shard_backlog.insert(thief, thief_depth as u64);
            }
        }
    }

    fn close(&mut self, query: u64, t: SimTime) -> (u64, bool) {
        match self.open.remove(&query) {
            Some(q) => (t.saturating_since(q.arrival).as_micros(), t > q.deadline),
            None => (0, false),
        }
    }

    /// The SLO time-series as NDJSON, one line per retained window, oldest
    /// first. Integer fields only, so two folds of equal streams are
    /// byte-identical.
    pub fn slo_ndjson(&self) -> String {
        let window_us = self.series.window_us();
        // The `stolen` key is emitted only when the run actually stole work
        // (uniformly, on every line), so exports from runs without
        // `--steal-epoch-ms` keep their exact historical bytes.
        let with_steals = self.series.totals.stolen > 0;
        let mut out = String::new();
        for w in self.series.windows() {
            let stolen =
                if with_steals { format!(",\"stolen\":{}", w.stolen) } else { String::new() };
            out.push_str(&format!(
                "{{\"window\":{},\"start_us\":{},\"arrivals\":{},\"completed\":{},\
                 \"degraded\":{},\"expired\":{},\"rejected\":{},\"missed\":{},\
                 \"failures\":{},\"retries\":{},\"plans\":{},\"sched_cost_us\":{},\
                 \"plan_work\":{},\"p50_us\":{},\"p99_us\":{},\"latency_count\":{},\
                 \"latency_sum_us\":{},\"queue_depth\":{}{stolen}}}\n",
                w.index,
                w.index * window_us,
                w.arrivals,
                w.completed,
                w.degraded,
                w.expired,
                w.rejected,
                w.missed,
                w.failures,
                w.retries,
                w.plans,
                w.sched_cost_us,
                w.plan_work,
                w.latency.quantile_us(0.50).unwrap_or(0),
                w.latency.quantile_us(0.99).unwrap_or(0),
                w.latency.count(),
                w.latency.sum_us(),
                w.open_at_end.unwrap_or(0),
            ));
        }
        out
    }

    /// Prometheus text exposition of the fold: run totals, the newest
    /// window's gauges, and the drift counters. Integer samples only.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        };
        let t = &self.series.totals;
        counter("schemble_obs_arrivals_total", "Query arrivals observed.", t.arrivals);
        counter("schemble_obs_completed_total", "Full completions observed.", t.completed);
        counter("schemble_obs_degraded_total", "Degraded answers observed.", t.degraded);
        counter("schemble_obs_expired_total", "Post-admission expiries observed.", t.expired);
        counter("schemble_obs_rejected_total", "Admission rejections observed.", t.rejected);
        counter("schemble_obs_deadline_missed_total", "Terminal events past deadline.", t.missed);
        counter("schemble_obs_task_failures_total", "Task failures observed.", t.failures);
        counter("schemble_obs_task_retries_total", "Task retries observed.", t.retries);
        counter("schemble_obs_plans_total", "Planning passes observed.", t.plans);
        counter(
            "schemble_obs_sched_cost_micros_total",
            "Simulated scheduling cost charged, microseconds.",
            t.sched_cost_us,
        );
        counter("schemble_obs_plan_work_total", "Scheduler work units consumed.", t.plan_work);
        // Steal telemetry appears only when the run stole work, keeping
        // no-steal expositions byte-identical to historical output.
        if t.stolen > 0 {
            counter(
                "schemble_obs_queries_stolen_total",
                "Queries transferred between shards by work stealing.",
                t.stolen,
            );
        }
        let d = &self.drift;
        counter("schemble_obs_drift_pairs_total", "Predicted/realized bin pairs.", d.pairs);
        counter("schemble_obs_drift_agree_total", "Pairs with matching bins.", d.agree);
        counter(
            "schemble_obs_drift_distance_total",
            "Sum of |predicted - realized| bin distance.",
            d.distance,
        );
        counter("schemble_obs_drift_incorrect_total", "Incorrect assembled answers.", d.incorrect);

        let mut gauge = |name: &str, help: &str, value: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"));
        };
        gauge("schemble_obs_open_queries", "Queries in flight.", self.series.live_open());
        let windows = self.series.windows();
        gauge("schemble_obs_windows", "SLO windows retained.", windows.len() as u64);
        if let Some(w) = windows.last() {
            gauge("schemble_obs_window_index", "Newest window's absolute index.", w.index);
            gauge(
                "schemble_obs_window_p50_micros",
                "Newest window's p50 end-to-end latency, microseconds.",
                w.latency.quantile_us(0.50).unwrap_or(0),
            );
            gauge(
                "schemble_obs_window_p99_micros",
                "Newest window's p99 end-to-end latency, microseconds.",
                w.latency.quantile_us(0.99).unwrap_or(0),
            );
            gauge("schemble_obs_window_missed", "Newest window's deadline misses.", w.missed);
            gauge("schemble_obs_window_degraded", "Newest window's degraded answers.", w.degraded);
            gauge(
                "schemble_obs_window_queue_depth",
                "Open queries at the newest window's close.",
                w.open_at_end.unwrap_or(0),
            );
            gauge(
                "schemble_obs_window_sched_cost_micros",
                "Newest window's scheduling cost, microseconds.",
                w.sched_cost_us,
            );
        }
        if !self.shard_backlog.is_empty() {
            out.push_str(
                "# HELP schemble_obs_shard_backlog Steal-eligible queue depth each shard last published at a steal epoch.\n# TYPE schemble_obs_shard_backlog gauge\n",
            );
            for (shard, depth) in &self.shard_backlog {
                out.push_str(&format!("schemble_obs_shard_backlog{{shard=\"{shard}\"}} {depth}\n"));
            }
        }
        if !d.executors.is_empty() {
            for (metric, help, get) in [
                (
                    "schemble_obs_exec_tasks_total",
                    "Completed tasks measured by the latency-drift detector.",
                    (|e: &ExecutorDrift| e.tasks) as fn(&ExecutorDrift) -> u64,
                ),
                (
                    "schemble_obs_exec_observed_micros_total",
                    "Observed task service time, microseconds.",
                    |e: &ExecutorDrift| e.observed_us,
                ),
                (
                    "schemble_obs_exec_expected_micros_total",
                    "Profiled task service time, microseconds.",
                    |e: &ExecutorDrift| e.expected_us,
                ),
                (
                    "schemble_obs_exec_latency_outliers_total",
                    "Tasks outside the +/-25% profiled-latency band.",
                    |e: &ExecutorDrift| e.outliers,
                ),
            ] {
                out.push_str(&format!("# HELP {metric} {help}\n# TYPE {metric} counter\n"));
                for (k, e) in d.executors.iter().enumerate() {
                    out.push_str(&format!("{metric}{{executor=\"{k}\"}} {}\n", get(e)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_trace::json::validate_ndjson;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Arrival { t: at(0), query: 0, deadline: at(100) },
            TraceEvent::Admission { t: at(0), query: 0, verdict: AdmissionVerdict::Buffered },
            TraceEvent::Scored { t: at(0), query: 0, bin: 0, score_fp: 100_000 },
            TraceEvent::Plan {
                t: at(0),
                buffer: 1,
                scheduled: 1,
                work: 32,
                cost: SimDuration::from_micros(250),
            },
            TraceEvent::TaskStart { t: at(1), query: 0, executor: 0 },
            TraceEvent::Arrival { t: at(5), query: 1, deadline: at(30) },
            TraceEvent::Admission { t: at(5), query: 1, verdict: AdmissionVerdict::Rejected },
            TraceEvent::TaskDone { t: at(21), query: 0, executor: 0 },
            TraceEvent::Realized { t: at(21), query: 0, score_fp: 120_000, correct: true },
            TraceEvent::QueryDone { t: at(21), query: 0, set: 0b1 },
            TraceEvent::Arrival { t: at(1500), query: 2, deadline: at(1600) },
            TraceEvent::QueryExpired { t: at(1700), query: 2 },
        ]
    }

    fn config() -> ObsConfig {
        ObsConfig {
            window: SimDuration::from_millis(1000),
            capacity: 8,
            bins: 4,
            profiled_latencies_us: vec![20_000],
        }
    }

    #[test]
    fn fold_builds_series_and_drift_from_one_stream() {
        let s = ObsState::fold(&config(), &stream());
        assert_eq!(s.series.totals.arrivals, 3);
        assert_eq!(s.series.totals.completed, 1);
        assert_eq!(s.series.totals.rejected, 1);
        assert_eq!(s.series.totals.expired, 1);
        assert_eq!(s.series.totals.missed, 1);
        assert_eq!(s.series.totals.sched_cost_us, 250);
        assert_eq!(s.drift.pairs, 1);
        assert_eq!(s.drift.agree, 1, "bin 0 predicted, 0.12 realizes into bin 0 of 4");
        assert_eq!(s.drift.executors[0].tasks, 1);
        assert_eq!(s.drift.executors[0].observed_us, 20_000);
        assert_eq!(s.series.live_open(), 0);
    }

    #[test]
    fn ndjson_export_is_valid_and_deterministic() {
        let a = ObsState::fold(&config(), &stream());
        let b = ObsState::fold(&config(), &stream());
        let ndjson = a.slo_ndjson();
        validate_ndjson(&ndjson).expect("well-formed NDJSON");
        assert_eq!(ndjson, b.slo_ndjson(), "same stream, same bytes");
        assert_eq!(ndjson.lines().count(), 2, "windows 0 and 1 are occupied");
        assert!(ndjson.lines().next().unwrap().contains("\"sched_cost_us\":250"));
    }

    #[test]
    fn steal_events_surface_in_both_exports_and_stay_absent_without_them() {
        // Without steals: neither export mentions stealing at all.
        let plain = ObsState::fold(&config(), &stream());
        assert!(!plain.slo_ndjson().contains("stolen"));
        assert!(!plain.prometheus().contains("stolen"));
        assert!(!plain.prometheus().contains("shard_backlog"));

        // With a steal mid-stream: the query still closes exactly once, the
        // per-window counter and shard backlog gauges appear.
        let mut events = stream();
        events.insert(
            5,
            TraceEvent::QueryStolen {
                t: at(2),
                query: 0,
                epoch: 1,
                victim: 0,
                thief: 1,
                victim_depth: 4,
                thief_depth: 1,
                arrival: at(0),
                deadline: at(100),
                bin: 0,
                score_fp: 100_000,
            },
        );
        let s = ObsState::fold(&config(), &events);
        assert_eq!(s.series.totals.stolen, 1);
        assert_eq!(s.series.totals.completed, 1);
        assert_eq!(s.series.live_open(), 0, "a steal must not open or close a query");
        let ndjson = s.slo_ndjson();
        validate_ndjson(&ndjson).expect("well-formed NDJSON");
        assert!(ndjson.lines().next().unwrap().contains("\"stolen\":1"));
        let prom = s.prometheus();
        assert!(prom.contains("schemble_obs_queries_stolen_total 1"));
        assert!(prom.contains("schemble_obs_shard_backlog{shard=\"0\"} 4"));
        assert!(prom.contains("schemble_obs_shard_backlog{shard=\"1\"} 1"));
    }

    #[test]
    fn prometheus_export_has_help_type_and_integer_samples() {
        let s = ObsState::fold(&config(), &stream());
        let text = s.prometheus();
        assert_eq!(text, ObsState::fold(&config(), &stream()).prometheus());
        for needle in [
            "# HELP schemble_obs_arrivals_total",
            "# TYPE schemble_obs_arrivals_total counter",
            "schemble_obs_arrivals_total 3",
            "schemble_obs_deadline_missed_total 1",
            "schemble_obs_drift_pairs_total 1",
            "schemble_obs_exec_observed_micros_total{executor=\"0\"} 20000",
            "# TYPE schemble_obs_open_queries gauge",
        ] {
            assert!(text.contains(needle), "missing {needle:?}");
        }
    }
}
