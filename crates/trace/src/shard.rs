//! Cross-shard trace aggregation.
//!
//! A sharded serve run gives every shard its own [`TraceSink`]; each shard
//! records events in its *local* namespace (query ids index the shard's
//! sub-workload, executor ids index its private executor replica). Merging
//! happens in two steps:
//!
//! 1. [`globalize_events`] rewrites one shard's stream into the global
//!    namespace — query ids through the shard's local→global map, executor
//!    ids offset by `shard * executors_per_shard`.
//! 2. [`merge_shard_events`] combines the globalized streams into one
//!    stream ordered by `(backend time, shard id, within-shard sequence)`.
//!
//! Both steps are pure functions of the per-shard streams, and the sort key
//! is a total order independent of which shard thread finished first, so
//! the merged trace is invariant to thread interleaving — the property the
//! serve crate's shard proptests pin.
//!
//! [`TraceSink`]: crate::sink::TraceSink

use crate::event::TraceEvent;

/// Rewrites `event` from a shard-local namespace into the global one.
///
/// `query_map[local]` is the global query id; `executor_offset` is added to
/// every executor index (shard `s` with `m` executors per shard passes
/// `s * m`).
pub fn globalize_event(event: TraceEvent, query_map: &[u64], executor_offset: u16) -> TraceEvent {
    let global = |q: u64| query_map[q as usize];
    match event {
        TraceEvent::Arrival { t, query, deadline } => {
            TraceEvent::Arrival { t, query: global(query), deadline }
        }
        TraceEvent::Admission { t, query, verdict } => {
            let verdict = match verdict {
                crate::event::AdmissionVerdict::FastPath { executor } => {
                    crate::event::AdmissionVerdict::FastPath {
                        executor: executor + executor_offset,
                    }
                }
                other => other,
            };
            TraceEvent::Admission { t, query: global(query), verdict }
        }
        TraceEvent::Plan { .. } => event,
        TraceEvent::TaskEnqueue { t, query, executor } => TraceEvent::TaskEnqueue {
            t,
            query: global(query),
            executor: executor + executor_offset,
        },
        TraceEvent::TaskStart { t, query, executor } => {
            TraceEvent::TaskStart { t, query: global(query), executor: executor + executor_offset }
        }
        TraceEvent::TaskDone { t, query, executor } => {
            TraceEvent::TaskDone { t, query: global(query), executor: executor + executor_offset }
        }
        TraceEvent::QueryDone { t, query, set } => {
            TraceEvent::QueryDone { t, query: global(query), set }
        }
        TraceEvent::QueryExpired { t, query } => {
            TraceEvent::QueryExpired { t, query: global(query) }
        }
        TraceEvent::TaskFailed { t, query, executor } => {
            TraceEvent::TaskFailed { t, query: global(query), executor: executor + executor_offset }
        }
        TraceEvent::TaskRetried { t, query, executor, attempt } => TraceEvent::TaskRetried {
            t,
            query: global(query),
            executor: executor + executor_offset,
            attempt,
        },
        TraceEvent::ExecutorDown { t, executor } => {
            TraceEvent::ExecutorDown { t, executor: executor + executor_offset }
        }
        TraceEvent::ExecutorUp { t, executor } => {
            TraceEvent::ExecutorUp { t, executor: executor + executor_offset }
        }
        TraceEvent::DegradedAnswer { t, query, set } => {
            TraceEvent::DegradedAnswer { t, query: global(query), set }
        }
        TraceEvent::Scored { t, query, bin, score_fp } => {
            TraceEvent::Scored { t, query: global(query), bin, score_fp }
        }
        TraceEvent::PlanAssign { t, query, set, predicted_finish, frontier } => {
            TraceEvent::PlanAssign { t, query: global(query), set, predicted_finish, frontier }
        }
        TraceEvent::Realized { t, query, score_fp, correct } => {
            TraceEvent::Realized { t, query: global(query), score_fp, correct }
        }
        TraceEvent::TaskQuit { t, query, executor } => {
            TraceEvent::TaskQuit { t, query: global(query), executor: executor + executor_offset }
        }
        TraceEvent::WorkSaved { t, query, saved } => {
            TraceEvent::WorkSaved { t, query: global(query), saved }
        }
        // Batch ids stay shard-local (they are only unique per backend);
        // exporters key membership on (executor, launch instant), which the
        // offset keeps globally unambiguous.
        TraceEvent::BatchFormed { t, executor, batch, size } => {
            TraceEvent::BatchFormed { t, executor: executor + executor_offset, batch, size }
        }
        // Victim/thief are *shard* ids, already global; only the query id
        // (thief-local, appended to the thief's map at adoption) rewrites.
        TraceEvent::QueryStolen {
            t,
            query,
            epoch,
            victim,
            thief,
            victim_depth,
            thief_depth,
            arrival,
            deadline,
            bin,
            score_fp,
        } => TraceEvent::QueryStolen {
            t,
            query: global(query),
            epoch,
            victim,
            thief,
            victim_depth,
            thief_depth,
            arrival,
            deadline,
            bin,
            score_fp,
        },
    }
}

/// [`globalize_event`] over a whole shard stream.
pub fn globalize_events(
    events: Vec<TraceEvent>,
    query_map: &[u64],
    executor_offset: u16,
) -> Vec<TraceEvent> {
    events.into_iter().map(|ev| globalize_event(ev, query_map, executor_offset)).collect()
}

/// Merges per-shard event streams (indexed by shard id) into one stream
/// ordered by `(time, shard, within-shard sequence)`.
///
/// The key is a total order over all events that depends only on the
/// streams' contents, never on which shard thread delivered its stream
/// first — merging in any shard order yields byte-identical output.
pub fn merge_shard_events(streams: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut keyed: Vec<((schemble_sim::SimTime, usize, usize), TraceEvent)> =
        Vec::with_capacity(total);
    for (shard, stream) in streams.into_iter().enumerate() {
        for (seq, ev) in stream.into_iter().enumerate() {
            keyed.push(((ev.time(), shard, seq), ev));
        }
    }
    keyed.sort_unstable_by_key(|&(key, _)| key);
    keyed.into_iter().map(|(_, ev)| ev).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AdmissionVerdict;
    use schemble_sim::SimTime;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn globalize_rewrites_queries_and_executors() {
        let map = vec![10, 42, 77];
        let events = vec![
            TraceEvent::Arrival { t: at(0), query: 1, deadline: at(50) },
            TraceEvent::Admission {
                t: at(0),
                query: 1,
                verdict: AdmissionVerdict::FastPath { executor: 2 },
            },
            TraceEvent::TaskStart { t: at(1), query: 1, executor: 2 },
            TraceEvent::ExecutorDown { t: at(2), executor: 0 },
            TraceEvent::QueryDone { t: at(3), query: 2, set: 0b1 },
        ];
        let out = globalize_events(events, &map, 5);
        assert_eq!(out[0], TraceEvent::Arrival { t: at(0), query: 42, deadline: at(50) });
        assert_eq!(
            out[1],
            TraceEvent::Admission {
                t: at(0),
                query: 42,
                verdict: AdmissionVerdict::FastPath { executor: 7 },
            }
        );
        assert_eq!(out[2], TraceEvent::TaskStart { t: at(1), query: 42, executor: 7 });
        assert_eq!(out[3], TraceEvent::ExecutorDown { t: at(2), executor: 5 });
        assert_eq!(out[4], TraceEvent::QueryDone { t: at(3), query: 77, set: 0b1 });
    }

    #[test]
    fn merge_orders_by_time_then_shard_and_ignores_stream_arrival_order() {
        let shard0 = vec![
            TraceEvent::Arrival { t: at(0), query: 0, deadline: at(9) },
            TraceEvent::QueryDone { t: at(5), query: 0, set: 0b1 },
        ];
        let shard1 = vec![
            TraceEvent::Arrival { t: at(0), query: 1, deadline: at(9) },
            TraceEvent::QueryDone { t: at(3), query: 1, set: 0b1 },
        ];
        let merged = merge_shard_events(vec![shard0.clone(), shard1.clone()]);
        // Equal times break by shard id; later times follow.
        assert_eq!(merged[0], shard0[0]);
        assert_eq!(merged[1], shard1[0]);
        assert_eq!(merged[2], shard1[1]);
        assert_eq!(merged[3], shard0[1]);
        // The merge is a function of the (indexed) streams, so re-merging
        // the same streams gives identical output regardless of how the
        // shard threads raced to produce them.
        assert_eq!(merged, merge_shard_events(vec![shard0, shard1]));
    }

    #[test]
    fn within_shard_order_is_preserved_at_equal_times() {
        let shard = vec![
            TraceEvent::TaskStart { t: at(4), query: 0, executor: 0 },
            TraceEvent::TaskDone { t: at(4), query: 0, executor: 0 },
            TraceEvent::QueryDone { t: at(4), query: 0, set: 0b1 },
        ];
        let merged = merge_shard_events(vec![shard.clone()]);
        assert_eq!(merged, shard, "equal-time events keep their emission order");
    }
}
