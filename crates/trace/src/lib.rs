//! `schemble-trace`: end-to-end query lifecycle tracing and exportable
//! telemetry for both execution backends.
//!
//! Every query's lifecycle — arrival, admission decision, DP plan, per-task
//! dispatch/start/completion on each executor, assembly or expiry — is
//! emitted as a [`TraceEvent`] into a shared, bounded [`TraceSink`].
//! Events are timestamped in *backend* time (virtual for the DES backend,
//! dilated-wall for the threaded one) and carry no wall-clock measurements,
//! so a discrete-event run and a real-time replay of the same trace produce
//! comparable — for the virtual-clock serve backend, byte-identical —
//! traces. Emission behind a disabled sink is one relaxed atomic load, and
//! enabling tracing never changes a scheduling decision.
//!
//! Three exporters turn a drained event stream into files:
//!
//! * [`chrome_trace`] — Chrome trace-event JSON for Perfetto /
//!   `chrome://tracing`: one track per executor plus a scheduler track.
//! * [`prometheus_text`] — Prometheus text exposition of the runtime
//!   counters, per-executor gauges, latency histogram and the scheduler's
//!   self-profile.
//! * [`audit_ndjson`] — a newline-delimited JSON decision audit log, one
//!   line per query in deterministic order, built for diffing runs.
//!
//! The scheduler additionally self-profiles into [`PlanningProfile`]
//! (always on, pure atomics): a wall-clock histogram of DP planning time,
//! kept strictly out of the event stream so traces stay deterministic.

pub mod audit;
pub mod chrome;
pub mod event;
pub mod json;
pub mod prometheus;
pub mod shard;
pub mod sink;

pub use audit::{audit_ndjson, audit_records, AuditRecord, AuditWriter};
pub use chrome::{chrome_trace, chrome_trace_named, complete_task_spans, SCHEDULER_TID};
pub use event::{score_fixed_point, set_members, AdmissionVerdict, TraceEvent};
pub use prometheus::{escape_label, metrics_from_events, prometheus_text};
pub use shard::{globalize_event, globalize_events, merge_shard_events};
pub use sink::{EventTap, PlanningProfile, TraceSink, DEFAULT_CAPACITY};
