//! The trace event vocabulary: one span-able event per step of a query's
//! lifecycle, timestamped in **backend time** ([`SimTime`] — virtual time in
//! the DES, dilated simulated time in the wall-clock runtime), so traces
//! from both substrates are directly comparable.
//!
//! Events are deliberately `Copy` and free of wall-clock measurements: a
//! virtual-clock serve run and a DES pipeline run over the same seeded
//! trace produce *identical* event streams (the `trace_export` integration
//! test pins this). Anything timing-dependent — the scheduler's real
//! planning time — lives in [`crate::sink::PlanningProfile`] instead.

use schemble_sim::{SimDuration, SimTime};

/// What admission control decided when a query arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Buffered for planning (the Schemble pipeline's deferred decision).
    Buffered,
    /// §VIII fast path: dispatched straight to an idle executor, bypassing
    /// the predictor and the scheduler.
    FastPath {
        /// The executor it ran on.
        executor: u16,
    },
    /// An immediate-selection policy chose this model subset at arrival.
    Selected {
        /// Chosen subset as a `ModelSet` bit mask (see `schemble-models`).
        set: u32,
    },
    /// Refused at arrival (estimated completion past the deadline).
    Rejected,
}

/// One event in a query's lifecycle or the scheduler's own activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A query arrived at the pipeline.
    Arrival {
        /// Event time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// The query's absolute deadline.
        deadline: SimTime,
    },
    /// Admission control decided the query's fate at arrival.
    Admission {
        /// Event time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// The decision.
        verdict: AdmissionVerdict,
    },
    /// The buffer scheduler produced a plan (one DP/greedy invocation).
    Plan {
        /// Event time (plan input instant).
        t: SimTime,
        /// Queries in the unstarted buffer the plan covered.
        buffer: u32,
        /// How many of them received a non-empty model set.
        scheduled: u32,
        /// Abstract work units the scheduler consumed.
        work: u64,
        /// Simulated scheduling cost charged before the plan takes effect.
        cost: SimDuration,
    },
    /// A task joined an executor's FIFO backlog (immediate pipelines).
    TaskEnqueue {
        /// Event time.
        t: SimTime,
        /// Query the task belongs to.
        query: u64,
        /// Executor index.
        executor: u16,
    },
    /// A task began executing on an executor.
    TaskStart {
        /// Event time.
        t: SimTime,
        /// Query the task belongs to.
        query: u64,
        /// Executor index.
        executor: u16,
    },
    /// A task finished executing.
    TaskDone {
        /// Event time.
        t: SimTime,
        /// Query the task belongs to.
        query: u64,
        /// Executor index.
        executor: u16,
    },
    /// The query completed with a result assembled over `set`.
    QueryDone {
        /// Event time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// The (possibly shrunk) model set the result was assembled from.
        set: u32,
    },
    /// The query was dropped after admission (deadline passed before any
    /// task started, or end of trace).
    QueryExpired {
        /// Event time.
        t: SimTime,
        /// Query id.
        query: u64,
    },
    /// A task failed (transient fault, timeout kill, or executor crash)
    /// instead of completing.
    TaskFailed {
        /// Event time.
        t: SimTime,
        /// Query the task belongs to.
        query: u64,
        /// Executor index.
        executor: u16,
    },
    /// A previously failed task was re-dispatched after backoff.
    TaskRetried {
        /// Event time.
        t: SimTime,
        /// Query the task belongs to.
        query: u64,
        /// Executor index it restarts on.
        executor: u16,
        /// Retry attempt number (1 = first retry).
        attempt: u8,
    },
    /// An executor was marked down (fault-plan crash window opened, or its
    /// worker thread died).
    ExecutorDown {
        /// Event time.
        t: SimTime,
        /// Executor index.
        executor: u16,
    },
    /// A down executor recovered.
    ExecutorUp {
        /// Event time.
        t: SimTime,
        /// Executor index.
        executor: u16,
    },
    /// The query was answered from a *partial* ensemble: some of its planned
    /// tasks failed permanently or its deadline arrived first, and the
    /// runtime assembled a result from the outputs that did complete.
    DegradedAnswer {
        /// Event time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// The model subset the degraded result was assembled from.
        set: u32,
    },
    /// The difficulty predictor scored a buffered query at admission.
    ///
    /// Carries the *predicted* difficulty in fixed point so the event stream
    /// stays integer-exact (and therefore byte-identical) across backends.
    Scored {
        /// Event time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// Predicted difficulty bin (`AccuracyProfile::bin_of`).
        bin: u8,
        /// Predicted discrepancy score × 10^6, clamped to `[0, 10^6]`.
        score_fp: u32,
    },
    /// A planning pass (re-)assigned this query's model set.
    ///
    /// Emitted only when the assignment *changed*, so the stream records the
    /// plan lineage of each query without repeating unchanged decisions on
    /// every re-plan. Emitted only while the sink is observing (enabled or
    /// tapped) — the predicted-finish replay is explain-only work.
    PlanAssign {
        /// Event time (the plan's input instant).
        t: SimTime,
        /// Query id.
        query: u64,
        /// Newly assigned model set (bit mask; may be empty on revocation).
        set: u32,
        /// Predicted completion instant of the assigned set, replayed from
        /// the plan's own availability model (`ScheduleInput::completions`).
        predicted_finish: SimTime,
        /// Candidate-frontier width of the planning pass that produced the
        /// assignment (`SchedulePlan::frontier`; 0 = untracked scheduler).
        frontier: u32,
    },
    /// The assembled result was evaluated: the *realized* discrepancy.
    ///
    /// The drift-detection counterpart of [`TraceEvent::Scored`], emitted
    /// just before the query's terminal `QueryDone`/`DegradedAnswer`.
    Realized {
        /// Event time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// Realized discrepancy score × 10^6, clamped to `[0, 10^6]`.
        score_fp: u32,
        /// Whether the assembled answer was correct.
        correct: bool,
    },
    /// A planned task was quit by the anytime policy before completing: the
    /// partial vote was already confident enough (or the deadline margin too
    /// thin) to justify running it. One event per shed task.
    TaskQuit {
        /// Event time.
        t: SimTime,
        /// Query the shed task belonged to.
        query: u64,
        /// Executor index the task was planned (or running) on.
        executor: u16,
    },
    /// Summary of one anytime early-exit decision: `saved` tasks of `query`
    /// were shed in this pass. Emitted once after the per-task
    /// [`TraceEvent::TaskQuit`] events.
    WorkSaved {
        /// Event time.
        t: SimTime,
        /// Query id.
        query: u64,
        /// Number of planned tasks shed.
        saved: u32,
    },
    /// An executor launched a batch of `size` coalesced tasks. Emitted at
    /// the launch instant, after the members' [`TraceEvent::TaskStart`]
    /// events (which all share this timestamp — that shared instant is how
    /// exporters recover batch membership).
    BatchFormed {
        /// Event time (the batch's launch instant).
        t: SimTime,
        /// Executor index.
        executor: u16,
        /// Monotonic per-backend batch id.
        batch: u64,
        /// Number of member tasks.
        size: u32,
    },
    /// A queued query was transferred between shard engines at a work-steal
    /// epoch boundary. Emitted once, by the **thief**, at the instant it
    /// adopts the query; carries enough of the query's admission state
    /// (arrival, deadline, difficulty bin, score) for downstream exporters
    /// to seed the thief-side record without replaying the victim's stream.
    QueryStolen {
        /// Event time (the epoch boundary the transfer resolved at).
        t: SimTime,
        /// Query id.
        query: u64,
        /// Steal epoch index (`boundary / epoch length`).
        epoch: u32,
        /// Shard the query was admitted on (its home shard).
        victim: u16,
        /// Shard that adopted and will serve the query.
        thief: u16,
        /// Steal-eligible queue depth the victim published this epoch.
        victim_depth: u32,
        /// Steal-eligible queue depth the thief published this epoch.
        thief_depth: u32,
        /// The query's original arrival time (travels with the transfer).
        arrival: SimTime,
        /// The query's absolute deadline (unchanged by the transfer).
        deadline: SimTime,
        /// Predicted difficulty bin carried from the victim's admission.
        bin: u8,
        /// Predicted discrepancy score × 10^6 carried from admission.
        score_fp: u32,
    },
}

/// `score` as the fixed-point (× 10^6) representation used by
/// [`TraceEvent::Scored`] / [`TraceEvent::Realized`].
pub fn score_fixed_point(score: f64) -> u32 {
    (score.clamp(0.0, 1.0) * 1e6).round() as u32
}

impl TraceEvent {
    /// The event's timestamp in backend time.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::Arrival { t, .. }
            | TraceEvent::Admission { t, .. }
            | TraceEvent::Plan { t, .. }
            | TraceEvent::TaskEnqueue { t, .. }
            | TraceEvent::TaskStart { t, .. }
            | TraceEvent::TaskDone { t, .. }
            | TraceEvent::QueryDone { t, .. }
            | TraceEvent::QueryExpired { t, .. }
            | TraceEvent::TaskFailed { t, .. }
            | TraceEvent::TaskRetried { t, .. }
            | TraceEvent::ExecutorDown { t, .. }
            | TraceEvent::ExecutorUp { t, .. }
            | TraceEvent::DegradedAnswer { t, .. }
            | TraceEvent::Scored { t, .. }
            | TraceEvent::PlanAssign { t, .. }
            | TraceEvent::Realized { t, .. }
            | TraceEvent::TaskQuit { t, .. }
            | TraceEvent::WorkSaved { t, .. }
            | TraceEvent::BatchFormed { t, .. }
            | TraceEvent::QueryStolen { t, .. } => t,
        }
    }

    /// The query the event concerns, if it is query-scoped.
    pub fn query(&self) -> Option<u64> {
        match *self {
            TraceEvent::Arrival { query, .. }
            | TraceEvent::Admission { query, .. }
            | TraceEvent::TaskEnqueue { query, .. }
            | TraceEvent::TaskStart { query, .. }
            | TraceEvent::TaskDone { query, .. }
            | TraceEvent::QueryDone { query, .. }
            | TraceEvent::QueryExpired { query, .. }
            | TraceEvent::TaskFailed { query, .. }
            | TraceEvent::TaskRetried { query, .. }
            | TraceEvent::DegradedAnswer { query, .. }
            | TraceEvent::Scored { query, .. }
            | TraceEvent::PlanAssign { query, .. }
            | TraceEvent::Realized { query, .. }
            | TraceEvent::TaskQuit { query, .. }
            | TraceEvent::WorkSaved { query, .. }
            | TraceEvent::QueryStolen { query, .. } => Some(query),
            TraceEvent::Plan { .. }
            | TraceEvent::ExecutorDown { .. }
            | TraceEvent::ExecutorUp { .. }
            | TraceEvent::BatchFormed { .. } => None,
        }
    }
}

/// Model indices contained in a `ModelSet` bit mask (ascending).
pub fn set_members(mask: u32) -> Vec<u16> {
    (0..32).filter(|k| mask & (1 << k) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let t = SimTime::from_millis(5);
        let events = [
            TraceEvent::Arrival { t, query: 1, deadline: SimTime::from_millis(9) },
            TraceEvent::Admission { t, query: 1, verdict: AdmissionVerdict::Buffered },
            TraceEvent::Plan { t, buffer: 2, scheduled: 1, work: 10, cost: SimDuration::ZERO },
            TraceEvent::TaskEnqueue { t, query: 1, executor: 0 },
            TraceEvent::TaskStart { t, query: 1, executor: 0 },
            TraceEvent::TaskDone { t, query: 1, executor: 0 },
            TraceEvent::QueryDone { t, query: 1, set: 0b101 },
            TraceEvent::QueryExpired { t, query: 1 },
            TraceEvent::TaskFailed { t, query: 1, executor: 0 },
            TraceEvent::TaskRetried { t, query: 1, executor: 0, attempt: 1 },
            TraceEvent::ExecutorDown { t, executor: 0 },
            TraceEvent::ExecutorUp { t, executor: 0 },
            TraceEvent::DegradedAnswer { t, query: 1, set: 0b1 },
            TraceEvent::Scored { t, query: 1, bin: 3, score_fp: 312_500 },
            TraceEvent::PlanAssign {
                t,
                query: 1,
                set: 0b11,
                predicted_finish: SimTime::from_millis(8),
                frontier: 4,
            },
            TraceEvent::Realized { t, query: 1, score_fp: 250_000, correct: true },
            TraceEvent::TaskQuit { t, query: 1, executor: 0 },
            TraceEvent::WorkSaved { t, query: 1, saved: 2 },
            TraceEvent::BatchFormed { t, executor: 0, batch: 3, size: 4 },
            TraceEvent::QueryStolen {
                t,
                query: 1,
                epoch: 2,
                victim: 0,
                thief: 1,
                victim_depth: 5,
                thief_depth: 0,
                arrival: SimTime::from_millis(4),
                deadline: SimTime::from_millis(9),
                bin: 3,
                score_fp: 312_500,
            },
        ];
        for ev in events {
            assert_eq!(ev.time(), t);
            match ev {
                TraceEvent::Plan { .. }
                | TraceEvent::ExecutorDown { .. }
                | TraceEvent::ExecutorUp { .. }
                | TraceEvent::BatchFormed { .. } => assert_eq!(ev.query(), None),
                _ => assert_eq!(ev.query(), Some(1)),
            }
        }
    }

    #[test]
    fn score_fixed_point_clamps_and_rounds() {
        assert_eq!(score_fixed_point(0.0), 0);
        assert_eq!(score_fixed_point(1.0), 1_000_000);
        assert_eq!(score_fixed_point(2.5), 1_000_000);
        assert_eq!(score_fixed_point(-0.1), 0);
        assert_eq!(score_fixed_point(0.3125), 312_500);
    }

    #[test]
    fn set_members_decodes_masks() {
        assert_eq!(set_members(0), Vec::<u16>::new());
        assert_eq!(set_members(0b101), vec![0, 2]);
        assert_eq!(set_members(0b110), vec![1, 2]);
    }
}
