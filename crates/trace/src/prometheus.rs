//! Prometheus text-exposition exporter.
//!
//! Renders the runtime's lock-light metrics ([`RuntimeMetrics`] counters,
//! per-executor gauges, the latency histogram) and the scheduler's
//! self-profile ([`PlanningProfile`]) in the Prometheus text format
//! (version 0.0.4), hand-rolled like the rest of the workspace's exporters.
//! Histograms emit cumulative `le` buckets at the log-spaced bucket edges
//! that actually hold observations, plus the mandatory `+Inf`/`_sum`/
//! `_count` series.

use crate::sink::PlanningProfile;
use schemble_metrics::{LatencyHistogram, RuntimeMetrics};
use std::fmt::Write as _;
use std::sync::atomic::Ordering::Relaxed;

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Escapes a label *value* per the Prometheus text format: backslash,
/// double-quote and newline must be backslash-escaped inside the quoted
/// value (a different alphabet from JSON string escaping — `\t` et al. pass
/// through verbatim).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One `name{key="value"} value` sample line with the label value escaped.
pub(crate) fn labeled_sample(
    out: &mut String,
    name: &str,
    label: &str,
    value: &str,
    sample: impl std::fmt::Display,
) {
    let _ = writeln!(out, "{name}{{{label}=\"{}\"}} {sample}", escape_label(value));
}

fn histogram(out: &mut String, name: &str, help: &str, hist: &LatencyHistogram) {
    family(out, name, "histogram", help);
    let total = hist.count();
    for (upper, cumulative) in hist.cumulative_buckets() {
        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
    let _ = writeln!(out, "{name}_sum {}", hist.sum_secs());
    let _ = writeln!(out, "{name}_count {total}");
}

/// Renders `metrics` (and, when given, the scheduler self-profile) as a
/// Prometheus text exposition. `elapsed_secs` is the run's elapsed backend
/// time, used for utilisation.
pub fn prometheus_text(
    metrics: &RuntimeMetrics,
    elapsed_secs: f64,
    planning: Option<&PlanningProfile>,
) -> String {
    let mut out = String::with_capacity(4096);
    let c = &metrics.counters;
    for (name, help, value) in [
        (
            "schemble_queries_submitted_total",
            "Queries handed to the pipeline.",
            c.submitted.load(Relaxed),
        ),
        (
            "schemble_queries_completed_total",
            "Queries completed with a result.",
            c.completed.load(Relaxed),
        ),
        (
            "schemble_queries_rejected_total",
            "Queries refused at arrival.",
            c.rejected.load(Relaxed),
        ),
        (
            "schemble_queries_expired_total",
            "Queries dropped after admission.",
            c.expired.load(Relaxed),
        ),
        (
            "schemble_tasks_started_total",
            "Tasks started on executors.",
            c.tasks_started.load(Relaxed),
        ),
        (
            "schemble_tasks_completed_total",
            "Tasks finished by executors.",
            c.tasks_completed.load(Relaxed),
        ),
        (
            "schemble_queries_degraded_total",
            "Queries answered from a partial ensemble.",
            c.degraded.load(Relaxed),
        ),
        (
            "schemble_tasks_failed_total",
            "Tasks that failed (transient fault, timeout, crash).",
            c.tasks_failed.load(Relaxed),
        ),
        (
            "schemble_tasks_retried_total",
            "Failed tasks re-dispatched after backoff.",
            c.tasks_retried.load(Relaxed),
        ),
        (
            "schemble_tasks_saved_total",
            "Planned tasks quit by the anytime policy before completing.",
            c.tasks_saved.load(Relaxed),
        ),
        (
            "schemble_tasks_batched_total",
            "Tasks launched as members of a cross-query batch.",
            c.tasks_batched.load(Relaxed),
        ),
    ] {
        family(&mut out, name, "counter", help);
        let _ = writeln!(out, "{name} {value}");
    }
    // Emitted only when the run actually stole work, so expositions from
    // runs without `--steal-epoch-ms` stay byte-identical to historical
    // output.
    let stolen = c.queries_stolen.load(Relaxed);
    if stolen > 0 {
        family(
            &mut out,
            "schemble_queries_stolen_total",
            "counter",
            "Queries transferred between shards by work stealing.",
        );
        let _ = writeln!(out, "schemble_queries_stolen_total {stolen}");
    }
    family(&mut out, "schemble_queries_open", "gauge", "Queries submitted but not yet decided.");
    let _ = writeln!(out, "schemble_queries_open {}", c.open());

    family(
        &mut out,
        "schemble_executor_queue_depth",
        "gauge",
        "Tasks waiting in the executor's FIFO backlog.",
    );
    for (k, e) in metrics.executors.iter().enumerate() {
        labeled_sample(
            &mut out,
            "schemble_executor_queue_depth",
            "executor",
            &k.to_string(),
            e.queue_depth.load(Relaxed),
        );
    }
    family(
        &mut out,
        "schemble_executor_busy_seconds_total",
        "counter",
        "Cumulative busy time per executor.",
    );
    for (k, e) in metrics.executors.iter().enumerate() {
        labeled_sample(
            &mut out,
            "schemble_executor_busy_seconds_total",
            "executor",
            &k.to_string(),
            e.busy_micros.load(Relaxed) as f64 / 1e6,
        );
    }
    family(&mut out, "schemble_executor_tasks_total", "counter", "Tasks completed per executor.");
    for (k, e) in metrics.executors.iter().enumerate() {
        labeled_sample(
            &mut out,
            "schemble_executor_tasks_total",
            "executor",
            &k.to_string(),
            e.tasks.load(Relaxed),
        );
    }
    family(
        &mut out,
        "schemble_executor_up",
        "gauge",
        "Whether the executor is up (1) or down (0).",
    );
    for (k, e) in metrics.executors.iter().enumerate() {
        labeled_sample(
            &mut out,
            "schemble_executor_up",
            "executor",
            &k.to_string(),
            e.up.load(Relaxed),
        );
    }
    family(
        &mut out,
        "schemble_executor_utilization",
        "gauge",
        "Fraction of elapsed time the executor was busy.",
    );
    for (k, e) in metrics.executors.iter().enumerate() {
        let util = if elapsed_secs > 0.0 {
            (e.busy_micros.load(Relaxed) as f64 / 1e6 / elapsed_secs).min(1.0)
        } else {
            0.0
        };
        labeled_sample(&mut out, "schemble_executor_utilization", "executor", &k.to_string(), util);
    }

    histogram(
        &mut out,
        "schemble_query_latency_seconds",
        "End-to-end latency of completed queries.",
        &metrics.latency,
    );
    histogram(
        &mut out,
        "schemble_batch_size",
        "Size of each launched cross-query batch (observations are sizes, not seconds).",
        &metrics.batch_size,
    );

    if let Some(p) = planning {
        family(&mut out, "schemble_sched_plans_total", "counter", "Scheduler planning passes.");
        let _ = writeln!(out, "schemble_sched_plans_total {}", p.plans.load(Relaxed));
        family(
            &mut out,
            "schemble_sched_plan_work_units_total",
            "counter",
            "Abstract work units consumed by the scheduler.",
        );
        let _ =
            writeln!(out, "schemble_sched_plan_work_units_total {}", p.work_units.load(Relaxed));
        family(
            &mut out,
            "schemble_sched_plan_wall_seconds_total",
            "counter",
            "Wall-clock time spent planning.",
        );
        let _ = writeln!(
            out,
            "schemble_sched_plan_wall_seconds_total {}",
            p.wall_nanos.load(Relaxed) as f64 / 1e9
        );
        histogram(
            &mut out,
            "schemble_sched_plan_seconds",
            "Wall-clock duration of one scheduler planning pass.",
            &p.hist,
        );
    }
    out
}

/// Reconstructs [`RuntimeMetrics`] from a trace's event stream.
///
/// The DES pipeline drivers do not maintain live metrics (they have no
/// observers); this derives the same counters, per-executor busy time and
/// latency histogram from the trace, so `--metrics-out` works uniformly
/// across `run`, `serve` and `loadtest`.
pub fn metrics_from_events(
    events: &[crate::event::TraceEvent],
    executors: usize,
) -> RuntimeMetrics {
    use crate::event::{AdmissionVerdict, TraceEvent};
    use std::collections::HashMap;

    let metrics = RuntimeMetrics::new(executors);
    let c = &metrics.counters;
    let mut arrivals: HashMap<u64, schemble_sim::SimTime> = HashMap::new();
    let mut running: HashMap<(u64, u16), schemble_sim::SimTime> = HashMap::new();
    for ev in events {
        match *ev {
            TraceEvent::Arrival { t, query, .. } => {
                c.submitted.fetch_add(1, Relaxed);
                arrivals.insert(query, t);
            }
            TraceEvent::Admission { verdict: AdmissionVerdict::Rejected, .. } => {
                c.rejected.fetch_add(1, Relaxed);
            }
            TraceEvent::Admission { .. }
            | TraceEvent::Plan { .. }
            | TraceEvent::TaskEnqueue { .. } => {}
            TraceEvent::TaskStart { t, query, executor } => {
                c.tasks_started.fetch_add(1, Relaxed);
                running.insert((query, executor), t);
            }
            TraceEvent::TaskDone { t, query, executor } => {
                c.tasks_completed.fetch_add(1, Relaxed);
                if let Some(g) = metrics.executors.get(executor as usize) {
                    g.tasks.fetch_add(1, Relaxed);
                    if let Some(t0) = running.remove(&(query, executor)) {
                        g.busy_micros.fetch_add((t - t0).as_micros(), Relaxed);
                    }
                }
            }
            TraceEvent::QueryDone { t, query, .. } => {
                c.completed.fetch_add(1, Relaxed);
                if let Some(t0) = arrivals.get(&query) {
                    metrics.latency.record((t - *t0).as_secs_f64());
                }
            }
            TraceEvent::QueryExpired { .. } => {
                c.expired.fetch_add(1, Relaxed);
            }
            TraceEvent::TaskFailed { t, query, executor } => {
                c.tasks_failed.fetch_add(1, Relaxed);
                if let Some(g) = metrics.executors.get(executor as usize) {
                    if let Some(t0) = running.remove(&(query, executor)) {
                        g.busy_micros.fetch_add((t - t0).as_micros(), Relaxed);
                    }
                }
            }
            TraceEvent::TaskRetried { .. } => {
                c.tasks_retried.fetch_add(1, Relaxed);
            }
            TraceEvent::TaskQuit { t, query, executor } => {
                c.tasks_saved.fetch_add(1, Relaxed);
                // A quit of a *running* task charges the partial busy time,
                // matching the backends (kill charges time spent so far).
                if let Some(g) = metrics.executors.get(executor as usize) {
                    if let Some(t0) = running.remove(&(query, executor)) {
                        g.busy_micros.fetch_add((t - t0).as_micros(), Relaxed);
                    }
                }
            }
            TraceEvent::ExecutorDown { executor, .. } => {
                if let Some(g) = metrics.executors.get(executor as usize) {
                    g.up.store(0, Relaxed);
                }
            }
            TraceEvent::ExecutorUp { executor, .. } => {
                if let Some(g) = metrics.executors.get(executor as usize) {
                    g.up.store(1, Relaxed);
                }
            }
            TraceEvent::DegradedAnswer { t, query, .. } => {
                c.degraded.fetch_add(1, Relaxed);
                if let Some(t0) = arrivals.get(&query) {
                    metrics.latency.record((t - *t0).as_secs_f64());
                }
            }
            // Introspection-only events: no runtime counter changes.
            // WorkSaved is a per-decision summary of TaskQuit events, which
            // already count above.
            TraceEvent::BatchFormed { size, .. } => {
                c.tasks_batched.fetch_add(size as u64, Relaxed);
                metrics.batch_size.record(size as f64);
            }
            TraceEvent::QueryStolen { query, arrival, .. } => {
                c.queries_stolen.fetch_add(1, Relaxed);
                // In a merged stream the victim-side Arrival already
                // registered the arrival instant; a thief-only stream sees
                // it here first.
                arrivals.entry(query).or_insert(arrival);
            }
            TraceEvent::Scored { .. }
            | TraceEvent::PlanAssign { .. }
            | TraceEvent::Realized { .. }
            | TraceEvent::WorkSaved { .. } => {}
        }
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use schemble_sim::{SimDuration, SimTime};
    use std::time::Duration;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn exposition_contains_all_families_and_is_line_shaped() {
        let metrics = RuntimeMetrics::new(2);
        metrics.counters.submitted.fetch_add(10, Relaxed);
        metrics.counters.completed.fetch_add(9, Relaxed);
        metrics.latency.record(0.05);
        let planning = PlanningProfile::default();
        planning.record(40, Duration::from_micros(200));
        let text = prometheus_text(&metrics, 2.0, Some(&planning));
        for family in [
            "schemble_queries_submitted_total 10",
            "schemble_queries_completed_total 9",
            "schemble_queries_open 1",
            "schemble_queries_degraded_total 0",
            "schemble_tasks_failed_total 0",
            "schemble_tasks_retried_total 0",
            "schemble_tasks_saved_total 0",
            "schemble_executor_up{executor=\"0\"} 1",
            "schemble_executor_queue_depth{executor=\"1\"} 0",
            "schemble_query_latency_seconds_count 1",
            "schemble_query_latency_seconds_bucket{le=\"+Inf\"} 1",
            "schemble_sched_plans_total 1",
            "schemble_sched_plan_seconds_count 1",
        ] {
            assert!(text.contains(family), "missing: {family}\n{text}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.rsplitn(2, ' ').count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn label_values_are_escaped_per_prometheus_rules() {
        assert_eq!(escape_label("plain-0"), "plain-0");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("line\nbreak"), "line\\nbreak");
        // Tabs are legal inside a label value — unlike JSON, no escape.
        assert_eq!(escape_label("tab\there"), "tab\there");
        let mut out = String::new();
        labeled_sample(&mut out, "m", "executor", "we\"ird\\name", 7u64);
        assert_eq!(out, "m{executor=\"we\\\"ird\\\\name\"} 7\n");
    }

    #[test]
    fn metrics_from_events_rebuilds_counters_and_busy_time() {
        let events = vec![
            TraceEvent::Arrival { t: at(0), query: 1, deadline: at(100) },
            TraceEvent::TaskStart { t: at(1), query: 1, executor: 0 },
            TraceEvent::TaskDone { t: at(21), query: 1, executor: 0 },
            TraceEvent::QueryDone { t: at(21), query: 1, set: 1 },
            TraceEvent::Arrival { t: at(2), query: 2, deadline: at(50) },
            TraceEvent::QueryExpired { t: at(60), query: 2 },
        ];
        let m = metrics_from_events(&events, 1);
        let c = &m.counters;
        assert_eq!(c.submitted.load(Relaxed), 2);
        assert_eq!(c.completed.load(Relaxed), 1);
        assert_eq!(c.expired.load(Relaxed), 1);
        assert_eq!(c.open(), 0);
        assert_eq!(m.executors[0].busy_micros.load(Relaxed), 20_000);
        assert_eq!(m.latency.count(), 1);
        let _ = SimDuration::ZERO;
    }

    #[test]
    fn fault_events_rebuild_failure_counters() {
        let events = vec![
            TraceEvent::Arrival { t: at(0), query: 1, deadline: at(100) },
            TraceEvent::TaskStart { t: at(1), query: 1, executor: 0 },
            TraceEvent::TaskFailed { t: at(5), query: 1, executor: 0 },
            TraceEvent::TaskRetried { t: at(7), query: 1, executor: 0, attempt: 1 },
            TraceEvent::TaskStart { t: at(7), query: 1, executor: 0 },
            TraceEvent::TaskDone { t: at(17), query: 1, executor: 0 },
            TraceEvent::ExecutorDown { t: at(20), executor: 0 },
            TraceEvent::DegradedAnswer { t: at(21), query: 1, set: 0b1 },
        ];
        let m = metrics_from_events(&events, 1);
        let c = &m.counters;
        assert_eq!(c.tasks_failed.load(Relaxed), 1);
        assert_eq!(c.tasks_retried.load(Relaxed), 1);
        assert_eq!(c.degraded.load(Relaxed), 1);
        assert_eq!(c.open(), 0, "degraded closes the query");
        assert_eq!(m.executors[0].up.load(Relaxed), 0);
        // Failed attempt charges its partial busy time: 4ms + 10ms.
        assert_eq!(m.executors[0].busy_micros.load(Relaxed), 14_000);
        assert_eq!(m.latency.count(), 1);
    }
}
