//! A minimal JSON syntax validator (RFC 8259 grammar, no value tree).
//!
//! The exporters in this crate hand-build their JSON; this validator is the
//! independent check that what they emit actually parses — used by the
//! exporter unit tests, the `trace_export` integration test and the CI
//! exporter smoke step, without pulling a JSON dependency into the
//! workspace.

/// Checks that `input` is exactly one valid JSON value (with surrounding
/// whitespace allowed). Returns the byte offset of the first error.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

/// Validates newline-delimited JSON: every non-empty line is one value.
pub fn validate_ndjson(input: &str) -> Result<(), String> {
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> Result<(), String> {
    Err(format!("{what} at byte {pos}"))
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        _ => fail(*pos, "expected a JSON value"),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        fail(*pos, "bad literal")
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return fail(*pos, "expected object key");
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return fail(*pos, "expected ':'");
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or '}'"),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or ']'"),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return fail(*pos, "bad \\u escape");
                        }
                        *pos += 5;
                    }
                    _ => return fail(*pos, "bad escape"),
                }
            }
            0x00..=0x1f => return fail(*pos, "unescaped control character"),
            _ => *pos += 1,
        }
    }
    fail(*pos, "unterminated string")
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return fail(start, "bad number"),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return fail(*pos, "digits must follow '.'");
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return fail(*pos, "digits must follow exponent");
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            " { \"a\" : [1, -2.5, 3e4, \"x\\n\", {\"b\": null}] } ",
            "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0.5}]}",
            "\"\\u00e9\"",
            "-0.25",
        ] {
            assert!(validate(ok).is_ok(), "rejected valid JSON: {ok}");
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "nul",
            "\"abc",
            "{}extra",
            "{\"a\":1 \"b\":2}",
        ] {
            assert!(validate(bad).is_err(), "accepted invalid JSON: {bad}");
        }
    }

    #[test]
    fn ndjson_checks_each_line() {
        assert!(validate_ndjson("{\"a\":1}\n{\"b\":2}\n").is_ok());
        let err = validate_ndjson("{\"a\":1}\n{broken\n").unwrap_err();
        assert!(err.starts_with("line 2"), "err: {err}");
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let tricky = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\":\"{}\"}}", escape(tricky));
        assert!(validate(&doc).is_ok(), "doc: {doc}");
    }
}
