//! The trace sink: a bounded, lock-light event buffer plus the scheduler's
//! always-on self-profile.
//!
//! Emission is gated by one relaxed atomic load ([`TraceSink::is_enabled`]),
//! so a disabled sink costs the hot path a single branch. Enabled emission
//! takes a short mutex on the ring buffer — every emitter in both runtimes
//! (engine decisions, backend task events) runs on the scheduler thread, so
//! the lock is effectively uncontended; it exists so observer threads can
//! snapshot safely. When the buffer is full, *new* events are dropped and
//! counted ([`TraceSink::dropped`]) rather than evicting history — a
//! truncated trace with an honest drop count beats a silently rewritten one.

use crate::event::TraceEvent;
use schemble_metrics::LatencyHistogram;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default ring-buffer capacity (events).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// The scheduler's self-profile: how long planning actually takes.
///
/// Recorded on **every** plan regardless of whether event tracing is
/// enabled — the paper's Sec. VI scheduling-overhead measurement as a
/// first-class metric. All fields are relaxed atomics; recording is a
/// wall-clock measurement and never feeds back into decisions.
#[derive(Debug, Default)]
pub struct PlanningProfile {
    /// Plans produced.
    pub plans: AtomicU64,
    /// Total abstract work units consumed across plans.
    pub work_units: AtomicU64,
    /// Total wall-clock nanoseconds spent planning.
    pub wall_nanos: AtomicU64,
    /// Wall-clock planning-time histogram, in seconds.
    pub hist: LatencyHistogram,
}

impl PlanningProfile {
    /// Records one planning pass: its abstract work and real duration.
    pub fn record(&self, work: u64, wall: Duration) {
        self.plans.fetch_add(1, Relaxed);
        self.work_units.fetch_add(work, Relaxed);
        self.wall_nanos.fetch_add(wall.as_nanos() as u64, Relaxed);
        self.hist.record(wall.as_secs_f64());
    }

    /// Mean wall-clock planning time in seconds, if any plan ran.
    pub fn mean_secs(&self) -> Option<f64> {
        let n = self.plans.load(Relaxed);
        (n > 0).then(|| self.wall_nanos.load(Relaxed) as f64 / 1e9 / n as f64)
    }

    /// Folds `other`'s profile into `self` (order-insensitive): used to
    /// aggregate the per-shard scheduler self-profiles of a sharded serve
    /// run into one exportable profile.
    pub fn merge(&self, other: &PlanningProfile) {
        self.plans.fetch_add(other.plans.load(Relaxed), Relaxed);
        self.work_units.fetch_add(other.work_units.load(Relaxed), Relaxed);
        self.wall_nanos.fetch_add(other.wall_nanos.load(Relaxed), Relaxed);
        self.hist.merge(&other.hist);
    }
}

#[derive(Debug)]
struct Ring {
    events: Vec<TraceEvent>,
    capacity: usize,
}

/// A secondary, live consumer of the event stream (e.g. the observability
/// crate's flight recorder). Called synchronously from [`TraceSink::emit`]
/// on the emitting (scheduler) thread, *before* the enabled check — a tap
/// sees every event even when the ring buffer is off. Taps must be cheap
/// and must never feed back into decisions.
pub trait EventTap: Send + Sync {
    /// Observes one emitted event.
    fn on_event(&self, event: TraceEvent);
}

/// The shared event sink engines and backends emit into.
pub struct TraceSink {
    enabled: AtomicBool,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
    /// One relaxed load gates the tap dispatch so untapped emission stays a
    /// branch, mirroring the `enabled` gate on the ring.
    has_tap: AtomicBool,
    tap: Mutex<Option<Arc<dyn EventTap>>>,
    /// Scheduler self-profiling (always on).
    pub planning: PlanningProfile,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .field("tapped", &self.has_tap.load(Relaxed))
            .finish()
    }
}

impl TraceSink {
    /// An enabled sink bounded at `capacity` events.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            enabled: AtomicBool::new(true),
            ring: Mutex::new(Ring { events: Vec::new(), capacity: capacity.max(1) }),
            dropped: AtomicU64::new(0),
            has_tap: AtomicBool::new(false),
            tap: Mutex::new(None),
            planning: PlanningProfile::default(),
        })
    }

    /// An enabled sink at the default capacity.
    pub fn enabled() -> Arc<Self> {
        Self::new(DEFAULT_CAPACITY)
    }

    /// A disabled sink: emission is a no-op (one atomic load), planning
    /// self-profiling still records. The default for untraced runs.
    pub fn disabled() -> Arc<Self> {
        let sink = Self::new(1);
        sink.enabled.store(false, Relaxed);
        sink
    }

    /// True when event emission is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Turns event emission on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Installs (or removes) the live event tap. Set it before the run
    /// starts: the emitting thread reads it under the tap lock, so swapping
    /// mid-run is safe but may briefly block emission.
    pub fn set_tap(&self, tap: Option<Arc<dyn EventTap>>) {
        let mut slot = self.tap.lock().expect("trace tap poisoned");
        self.has_tap.store(tap.is_some(), Relaxed);
        *slot = tap;
    }

    /// The installed tap, if any (shards propagate the parent sink's tap).
    pub fn tap(&self) -> Option<Arc<dyn EventTap>> {
        self.tap.lock().expect("trace tap poisoned").clone()
    }

    /// True when somebody consumes emitted events: the ring is enabled or a
    /// tap is installed. Engines gate *observability-only* computation
    /// (e.g. predicted-finish replay for `PlanAssign`) on this so untraced
    /// runs pay nothing; the gate never changes a decision.
    #[inline]
    pub fn observing(&self) -> bool {
        self.is_enabled() || self.has_tap.load(Relaxed)
    }

    /// Records one event (no-op while disabled; counted-drop when full).
    /// An installed tap sees the event even while the ring is disabled.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if self.has_tap.load(Relaxed) {
            if let Some(tap) = &*self.tap.lock().expect("trace tap poisoned") {
                tap.on_event(event);
            }
        }
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.events.len() >= ring.capacity {
            drop(ring);
            self.dropped.fetch_add(1, Relaxed);
            return;
        }
        ring.events.push(event);
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every buffered event, leaving the sink empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.ring.lock().expect("trace ring poisoned").events)
    }

    /// A copy of the buffered events (the run can keep going).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring.lock().expect("trace ring poisoned").events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::SimTime;

    fn arrival(q: u64) -> TraceEvent {
        TraceEvent::Arrival { t: SimTime::from_millis(q), query: q, deadline: SimTime::ZERO }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        sink.emit(arrival(1));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_new_events_with_a_count() {
        let sink = TraceSink::new(2);
        for q in 0..5 {
            sink.emit(arrival(q));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let events = sink.drain();
        assert_eq!(events, vec![arrival(0), arrival(1)]);
        assert!(sink.is_empty());
    }

    #[test]
    fn planning_profile_accumulates_even_when_disabled() {
        let sink = TraceSink::disabled();
        sink.planning.record(100, Duration::from_micros(250));
        sink.planning.record(300, Duration::from_micros(750));
        assert_eq!(sink.planning.plans.load(Relaxed), 2);
        assert_eq!(sink.planning.work_units.load(Relaxed), 400);
        let mean = sink.planning.mean_secs().expect("two plans recorded");
        assert!((mean - 500e-6).abs() < 1e-9, "mean {mean}");
        assert_eq!(sink.planning.hist.count(), 2);
    }

    #[test]
    fn tap_sees_events_even_while_ring_is_disabled() {
        struct Counter(AtomicU64);
        impl EventTap for Counter {
            fn on_event(&self, _event: TraceEvent) {
                self.0.fetch_add(1, Relaxed);
            }
        }
        let sink = TraceSink::disabled();
        assert!(!sink.observing());
        let tap = Arc::new(Counter(AtomicU64::new(0)));
        sink.set_tap(Some(tap.clone()));
        assert!(sink.observing(), "a tap makes the sink observing");
        sink.emit(arrival(1));
        sink.emit(arrival(2));
        assert_eq!(tap.0.load(Relaxed), 2, "tap sees every event");
        assert!(sink.is_empty(), "disabled ring still records nothing");
        sink.set_tap(None);
        sink.emit(arrival(3));
        assert_eq!(tap.0.load(Relaxed), 2, "removed tap sees nothing");
        assert!(!sink.observing());
    }

    #[test]
    fn snapshot_preserves_buffer_drain_clears_it() {
        let sink = TraceSink::enabled();
        sink.emit(arrival(7));
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.len(), 1, "snapshot must not consume");
        assert_eq!(sink.drain().len(), 1);
        assert!(sink.is_empty());
    }
}
