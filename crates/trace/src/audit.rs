//! The decision audit log: one NDJSON line per submitted query.
//!
//! Collapses a run's event stream into per-query decision records —
//! admission verdict, chosen model subset, task count, outcome, completion
//! time — with deterministic key order and query ordering, so two runs can
//! be compared with a plain line diff (`schemble` vs a baseline, DES vs the
//! serve runtime, before vs after a scheduler change).

use crate::event::{set_members, AdmissionVerdict, TraceEvent};
use schemble_sim::SimTime;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Work-steal lineage of a transferred query: which epoch moved it and
/// between which shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditSteal {
    /// Steal epoch index the transfer resolved at.
    pub epoch: u32,
    /// Home shard the query was admitted on.
    pub victim: u16,
    /// Shard that adopted and served the query.
    pub thief: u16,
}

/// The collapsed lifecycle of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Query id.
    pub query: u64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Admission verdict label (`buffered` / `fast-path` / `selected` /
    /// `rejected`).
    pub admission: &'static str,
    /// Final model set: the assembled set for completed queries, the
    /// selected set for rejected-after-selection ones, empty otherwise.
    pub set: u32,
    /// Tasks that started executing for this query.
    pub tasks: u32,
    /// Task retries dispatched for this query.
    pub retries: u32,
    /// Terminal outcome (`completed` / `degraded` / `rejected` / `expired` /
    /// `open`).
    pub outcome: &'static str,
    /// Completion instant for completed (or degraded) queries.
    pub completion: Option<SimTime>,
    /// Predicted difficulty bin (from the `Scored` event; `None` for
    /// fast-path / immediate-pipeline queries that skip the predictor).
    pub bin: Option<u8>,
    /// Candidate-frontier width of the last planning pass that assigned
    /// this query's set (`None` without `PlanAssign` events).
    pub frontier: Option<u32>,
    /// Predicted completion instant of the last assigned plan.
    pub predicted_finish: Option<SimTime>,
    /// Steal lineage for queries transferred between shards (`None` for the
    /// common never-stolen case, which keeps its exact historical line
    /// bytes — the `stolen` key only appears on transferred queries).
    pub stolen: Option<AuditSteal>,
}

impl AuditRecord {
    /// The record as one NDJSON line (no trailing newline), keys in a fixed
    /// order so equal decisions give byte-equal lines.
    pub fn to_json_line(&self) -> String {
        fn or_null(v: Option<String>) -> String {
            v.unwrap_or_else(|| "null".to_string())
        }
        let completion = or_null(self.completion.map(|t| t.as_micros().to_string()));
        let bin = or_null(self.bin.map(|b| b.to_string()));
        let frontier = or_null(self.frontier.map(|f| f.to_string()));
        let predicted = or_null(self.predicted_finish.map(|t| t.as_micros().to_string()));
        let stolen = match self.stolen {
            Some(s) => format!(
                ",\"stolen\":{{\"epoch\":{},\"victim\":{},\"thief\":{}}}",
                s.epoch, s.victim, s.thief
            ),
            None => String::new(),
        };
        format!(
            "{{\"query\":{},\"arrival_us\":{},\"deadline_us\":{},\"admission\":\"{}\",\"set\":{:?},\"models\":{},\"tasks\":{},\"retries\":{},\"outcome\":\"{}\",\"completion_us\":{},\"bin\":{},\"frontier\":{},\"predicted_finish_us\":{}{stolen}}}",
            self.query,
            self.arrival.as_micros(),
            self.deadline.as_micros(),
            self.admission,
            set_members(self.set),
            set_members(self.set).len(),
            self.tasks,
            self.retries,
            self.outcome,
            completion,
            bin,
            frontier,
            predicted,
        )
    }
}

/// Collapses an event stream into per-query records, ordered by query id.
pub fn audit_records(events: &[TraceEvent]) -> Vec<AuditRecord> {
    let mut records: BTreeMap<u64, AuditRecord> = BTreeMap::new();
    for ev in events {
        match *ev {
            TraceEvent::Arrival { t, query, deadline } => {
                records.entry(query).or_insert(AuditRecord {
                    query,
                    arrival: t,
                    deadline,
                    admission: "buffered",
                    set: 0,
                    tasks: 0,
                    retries: 0,
                    outcome: "open",
                    completion: None,
                    bin: None,
                    frontier: None,
                    predicted_finish: None,
                    stolen: None,
                });
            }
            // The thief's stream never saw the victim-side Arrival, so a
            // steal both *creates* the record (streamed per-shard audits)
            // and *annotates* it (merged streams, where the victim's
            // Arrival already ran and the entry exists under the same
            // global id).
            TraceEvent::QueryStolen {
                query, epoch, victim, thief, arrival, deadline, bin, ..
            } => {
                let r = records.entry(query).or_insert(AuditRecord {
                    query,
                    arrival,
                    deadline,
                    admission: "buffered",
                    set: 0,
                    tasks: 0,
                    retries: 0,
                    outcome: "open",
                    completion: None,
                    bin: None,
                    frontier: None,
                    predicted_finish: None,
                    stolen: None,
                });
                r.bin = Some(bin);
                r.stolen = Some(AuditSteal { epoch, victim, thief });
            }
            TraceEvent::Admission { query, verdict, .. } => {
                if let Some(r) = records.get_mut(&query) {
                    match verdict {
                        AdmissionVerdict::Buffered => r.admission = "buffered",
                        AdmissionVerdict::FastPath { .. } => r.admission = "fast-path",
                        AdmissionVerdict::Selected { set } => {
                            r.admission = "selected";
                            r.set = set;
                        }
                        AdmissionVerdict::Rejected => {
                            r.admission = "rejected";
                            r.outcome = "rejected";
                        }
                    }
                }
            }
            TraceEvent::TaskStart { query, .. } => {
                if let Some(r) = records.get_mut(&query) {
                    r.tasks += 1;
                }
            }
            TraceEvent::QueryDone { t, query, set } => {
                if let Some(r) = records.get_mut(&query) {
                    r.outcome = "completed";
                    r.set = set;
                    r.completion = Some(t);
                }
            }
            TraceEvent::QueryExpired { query, .. } => {
                if let Some(r) = records.get_mut(&query) {
                    r.outcome = "expired";
                }
            }
            TraceEvent::TaskRetried { query, .. } => {
                if let Some(r) = records.get_mut(&query) {
                    r.retries += 1;
                }
            }
            TraceEvent::DegradedAnswer { t, query, set } => {
                if let Some(r) = records.get_mut(&query) {
                    r.outcome = "degraded";
                    r.set = set;
                    r.completion = Some(t);
                }
            }
            TraceEvent::Scored { query, bin, .. } => {
                if let Some(r) = records.get_mut(&query) {
                    r.bin = Some(bin);
                }
            }
            TraceEvent::PlanAssign { query, frontier, predicted_finish, .. } => {
                if let Some(r) = records.get_mut(&query) {
                    r.frontier = Some(frontier);
                    r.predicted_finish = Some(predicted_finish);
                }
            }
            TraceEvent::Plan { .. }
            | TraceEvent::TaskEnqueue { .. }
            | TraceEvent::TaskDone { .. }
            | TraceEvent::TaskFailed { .. }
            | TraceEvent::ExecutorDown { .. }
            | TraceEvent::ExecutorUp { .. }
            | TraceEvent::Realized { .. }
            | TraceEvent::TaskQuit { .. }
            | TraceEvent::WorkSaved { .. }
            | TraceEvent::BatchFormed { .. } => {}
        }
    }
    records.into_values().collect()
}

/// A line-atomic NDJSON audit writer safe for concurrent shard writers.
///
/// Each record is serialised to a complete `line + '\n'` buffer first and
/// then written with a **single** `write_all` under the writer lock, so
/// interleaved writers can reorder whole lines but can never split one —
/// the resulting file is always valid NDJSON whose line *set* is
/// deterministic even when the line *order* depends on shard timing.
pub struct AuditWriter {
    inner: Mutex<Box<dyn Write + Send>>,
    lines: AtomicU64,
}

impl std::fmt::Debug for AuditWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditWriter").field("lines", &self.lines.load(Relaxed)).finish()
    }
}

impl AuditWriter {
    /// Wraps `writer`; callers keep it behind an `Arc` to share across
    /// shard threads.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self { inner: Mutex::new(writer), lines: AtomicU64::new(0) }
    }

    /// Writes one record as one atomic NDJSON line.
    pub fn write_record(&self, record: &AuditRecord) -> io::Result<()> {
        let mut line = record.to_json_line();
        line.push('\n');
        let mut w = self.inner.lock().expect("audit writer poisoned");
        w.write_all(line.as_bytes())?;
        self.lines.fetch_add(1, Relaxed);
        Ok(())
    }

    /// Writes a batch of records, one atomic line each.
    pub fn write_records(&self, records: &[AuditRecord]) -> io::Result<()> {
        for record in records {
            self.write_record(record)?;
        }
        Ok(())
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines.load(Relaxed)
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.inner.lock().expect("audit writer poisoned").flush()
    }
}

impl Drop for AuditWriter {
    /// Flushes buffered lines on drop so a panicking run (or a reaped shard
    /// thread unwinding the last `Arc`) never loses audit lines that were
    /// already written. Poison-safe: a writer poisoned by a panicking peer
    /// still flushes; flush errors are necessarily ignored here.
    fn drop(&mut self) {
        let mut w = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.flush();
    }
}

/// The audit log as NDJSON: one line per submitted query, ordered by id.
pub fn audit_ndjson(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for record in audit_records(events) {
        out.push_str(&record.to_json_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_ndjson;
    use schemble_sim::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn lifecycle() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Arrival { t: at(0), query: 3, deadline: at(100) },
            TraceEvent::Admission { t: at(0), query: 3, verdict: AdmissionVerdict::Buffered },
            TraceEvent::Arrival { t: at(1), query: 1, deadline: at(40) },
            TraceEvent::Admission { t: at(1), query: 1, verdict: AdmissionVerdict::Rejected },
            TraceEvent::Plan {
                t: at(1),
                buffer: 1,
                scheduled: 1,
                work: 4,
                cost: SimDuration::ZERO,
            },
            TraceEvent::TaskStart { t: at(2), query: 3, executor: 0 },
            TraceEvent::TaskStart { t: at(2), query: 3, executor: 2 },
            TraceEvent::TaskDone { t: at(9), query: 3, executor: 0 },
            TraceEvent::TaskDone { t: at(12), query: 3, executor: 2 },
            TraceEvent::QueryDone { t: at(12), query: 3, set: 0b101 },
        ]
    }

    #[test]
    fn one_record_per_query_in_id_order() {
        let records = audit_records(&lifecycle());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].query, 1);
        assert_eq!(records[0].outcome, "rejected");
        assert_eq!(records[1].query, 3);
        assert_eq!(records[1].outcome, "completed");
        assert_eq!(records[1].set, 0b101);
        assert_eq!(records[1].tasks, 2);
        assert_eq!(records[1].completion, Some(at(12)));
    }

    #[test]
    fn ndjson_is_valid_and_line_count_matches_queries() {
        let log = audit_ndjson(&lifecycle());
        validate_ndjson(&log).expect("audit lines must parse");
        assert_eq!(log.lines().count(), 2);
        assert!(log.contains("\"set\":[0, 2]"));
    }

    #[test]
    fn degraded_lifecycle_records_retries_and_partial_set() {
        let events = vec![
            TraceEvent::Arrival { t: at(0), query: 5, deadline: at(60) },
            TraceEvent::TaskStart { t: at(1), query: 5, executor: 0 },
            TraceEvent::TaskStart { t: at(1), query: 5, executor: 1 },
            TraceEvent::TaskFailed { t: at(8), query: 5, executor: 1 },
            TraceEvent::TaskRetried { t: at(10), query: 5, executor: 1, attempt: 1 },
            TraceEvent::TaskStart { t: at(10), query: 5, executor: 1 },
            TraceEvent::TaskFailed { t: at(15), query: 5, executor: 1 },
            TraceEvent::TaskDone { t: at(20), query: 5, executor: 0 },
            TraceEvent::DegradedAnswer { t: at(20), query: 5, set: 0b1 },
        ];
        let records = audit_records(&events);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].outcome, "degraded");
        assert_eq!(records[0].retries, 1);
        assert_eq!(records[0].set, 0b1);
        assert_eq!(records[0].completion, Some(at(20)));
        let line = records[0].to_json_line();
        assert!(line.contains("\"retries\":1"));
        assert!(line.contains("\"outcome\":\"degraded\""));
    }

    #[test]
    fn concurrent_writers_never_split_a_line() {
        use std::sync::Arc;
        // A shared byte buffer standing in for the audit file. Writes go
        // through a deliberately tiny adapter so any multi-write record
        // serialisation would interleave and corrupt lines.
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let writer = Arc::new(AuditWriter::new(Box::new(buf.clone())));
        const SHARDS: u64 = 4;
        const PER_SHARD: u64 = 250;
        let threads: Vec<_> = (0..SHARDS)
            .map(|s| {
                let writer = Arc::clone(&writer);
                std::thread::spawn(move || {
                    for i in 0..PER_SHARD {
                        let q = s * PER_SHARD + i;
                        let record = AuditRecord {
                            query: q,
                            arrival: at(q),
                            deadline: at(q + 50),
                            admission: "buffered",
                            set: 0b11,
                            tasks: 2,
                            retries: 0,
                            outcome: "completed",
                            completion: Some(at(q + 10)),
                            bin: Some(4),
                            frontier: Some(8),
                            predicted_finish: Some(at(q + 9)),
                            stolen: None,
                        };
                        writer.write_record(&record).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        writer.flush().unwrap();
        assert_eq!(writer.lines(), SHARDS * PER_SHARD);

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        validate_ndjson(&text).expect("every interleaved line must parse");
        let mut queries: Vec<&str> = text
            .lines()
            .map(|l| {
                assert!(l.starts_with("{\"query\":"), "line split detected: {l}");
                assert!(l.ends_with('}'), "line split detected: {l}");
                &l[9..l.find(',').unwrap()]
            })
            .collect();
        assert_eq!(queries.len() as u64, SHARDS * PER_SHARD);
        queries.sort_by_key(|q| q.parse::<u64>().unwrap());
        queries.dedup();
        assert_eq!(queries.len() as u64, SHARDS * PER_SHARD, "every record exactly once");
    }

    #[test]
    fn expiry_without_completion_stays_expired() {
        let events = vec![
            TraceEvent::Arrival { t: at(0), query: 9, deadline: at(5) },
            TraceEvent::QueryExpired { t: at(6), query: 9 },
        ];
        let records = audit_records(&events);
        assert_eq!(records[0].outcome, "expired");
        assert_eq!(records[0].completion, None);
        let line = records[0].to_json_line();
        assert!(line.contains("\"completion_us\":null"), "{line}");
        assert!(line.ends_with("\"bin\":null,\"frontier\":null,\"predicted_finish_us\":null}"));
    }

    #[test]
    fn explain_events_enrich_the_record() {
        let events = vec![
            TraceEvent::Arrival { t: at(0), query: 2, deadline: at(80) },
            TraceEvent::Scored { t: at(0), query: 2, bin: 7, score_fp: 730_000 },
            TraceEvent::PlanAssign {
                t: at(1),
                query: 2,
                set: 0b11,
                predicted_finish: at(42),
                frontier: 5,
            },
            TraceEvent::TaskStart { t: at(2), query: 2, executor: 0 },
            TraceEvent::TaskStart { t: at(2), query: 2, executor: 1 },
            TraceEvent::Realized { t: at(40), query: 2, score_fp: 650_000, correct: true },
            TraceEvent::QueryDone { t: at(40), query: 2, set: 0b11 },
        ];
        let records = audit_records(&events);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].bin, Some(7));
        assert_eq!(records[0].frontier, Some(5));
        assert_eq!(records[0].predicted_finish, Some(at(42)));
        let line = records[0].to_json_line();
        validate_ndjson(&line).expect("explain fields must serialise to valid JSON");
        assert!(line.contains("\"bin\":7"));
        assert!(line.contains("\"frontier\":5"));
        assert!(line.contains("\"predicted_finish_us\":42000"));
    }

    #[test]
    fn steal_creates_or_annotates_the_record_and_plain_lines_are_unchanged() {
        let stolen_ev = TraceEvent::QueryStolen {
            t: at(10),
            query: 4,
            epoch: 2,
            victim: 0,
            thief: 1,
            victim_depth: 6,
            thief_depth: 1,
            arrival: at(3),
            deadline: at(90),
            bin: 5,
            score_fp: 400_000,
        };
        // Thief-side stream: no Arrival, the steal must create the record.
        let thief_only = vec![stolen_ev, TraceEvent::QueryDone { t: at(30), query: 4, set: 0b1 }];
        let records = audit_records(&thief_only);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].arrival, at(3));
        assert_eq!(records[0].deadline, at(90));
        assert_eq!(records[0].bin, Some(5));
        assert_eq!(records[0].outcome, "completed");
        assert_eq!(records[0].stolen, Some(AuditSteal { epoch: 2, victim: 0, thief: 1 }));
        let line = records[0].to_json_line();
        validate_ndjson(&line).expect("steal lineage must serialise to valid JSON");
        assert!(line.contains("\"stolen\":{\"epoch\":2,\"victim\":0,\"thief\":1}"), "{line}");

        // Merged stream: the victim's Arrival already made the entry; the
        // steal only annotates it (exactly one line, not two).
        let merged = vec![
            TraceEvent::Arrival { t: at(3), query: 4, deadline: at(90) },
            stolen_ev,
            TraceEvent::QueryDone { t: at(30), query: 4, set: 0b1 },
        ];
        let merged_records = audit_records(&merged);
        assert_eq!(merged_records, records);

        // A never-stolen query's line carries no "stolen" key at all.
        let plain = audit_records(&lifecycle());
        for r in &plain {
            assert!(!r.to_json_line().contains("stolen"));
        }
    }

    #[test]
    fn dropping_a_writer_mid_run_flushes_buffered_lines() {
        use std::io::BufWriter;
        use std::sync::Arc;
        // Stand-in for the audit file: flushed bytes land in `sunk`; bytes
        // still sitting in the BufWriter at drop time are lost unless
        // something flushes. A panicking run drops the writer mid-flight —
        // the Drop impl must get every already-written line out.
        #[derive(Clone, Default)]
        struct Sunk(Arc<Mutex<Vec<u8>>>);
        impl Write for Sunk {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let sunk = Sunk::default();
        const LINES: u64 = 100;
        let writer = Arc::new(AuditWriter::new(Box::new(BufWriter::with_capacity(
            1 << 20, // large enough that nothing auto-flushes mid-run
            sunk.clone(),
        ))));
        let killed = std::thread::spawn({
            let writer = Arc::clone(&writer);
            move || {
                for q in 0..LINES {
                    let record = AuditRecord {
                        query: q,
                        arrival: at(q),
                        deadline: at(q + 50),
                        admission: "buffered",
                        set: 0b1,
                        tasks: 1,
                        retries: 0,
                        outcome: "completed",
                        completion: Some(at(q + 10)),
                        bin: None,
                        frontier: None,
                        predicted_finish: None,
                        stolen: None,
                    };
                    writer.write_record(&record).unwrap();
                }
                panic!("simulated mid-run death of the writing thread");
            }
        })
        .join();
        assert!(killed.is_err(), "the writer thread must have panicked");
        assert_eq!(writer.lines(), LINES);
        // The panicked thread's Arc dropped; ours is the last. Dropping it
        // runs AuditWriter::drop, which must flush the BufWriter.
        drop(writer);
        let text = String::from_utf8(sunk.0.lock().unwrap().clone()).unwrap();
        validate_ndjson(&text).expect("flushed audit output must be valid NDJSON");
        assert_eq!(text.lines().count() as u64, LINES, "no audit line may be lost");
    }
}
