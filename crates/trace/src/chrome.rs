//! Chrome trace-event JSON exporter.
//!
//! Produces the [Trace Event Format] consumed by Perfetto and
//! `chrome://tracing`: one track (`tid`) per executor carrying complete
//! (`"ph":"X"`) spans for every task execution, plus a scheduler track
//! (`tid` 0) carrying plan spans (duration = the simulated scheduling cost)
//! and instant markers for arrivals, admission verdicts, completions and
//! expiries. Timestamps are the events' backend time in microseconds, so a
//! DES trace and a serve trace line up on the same axis.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{set_members, AdmissionVerdict, TraceEvent};
use crate::json::escape;

/// The scheduler's track id; executor `k` renders on track `k + 1`.
pub const SCHEDULER_TID: u32 = 0;

fn push_event(out: &mut Vec<String>, body: String) {
    out.push(format!("{{{body}}}"));
}

fn instant(out: &mut Vec<String>, name: &str, ts: u64, tid: u32, args: &str) {
    push_event(
        out,
        format!(
            "\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{{args}}}",
            escape(name)
        ),
    );
}

fn span(out: &mut Vec<String>, name: &str, ts: u64, dur: u64, tid: u32, args: &str) {
    push_event(
        out,
        format!(
            "\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":0,\"tid\":{tid},\"args\":{{{args}}}",
            escape(name)
        ),
    );
}

/// Renders `events` as a Chrome trace-event JSON document.
///
/// `executors` fixes the number of executor tracks (so idle executors still
/// get a named, empty track); `label` names the process in the trace viewer
/// (pipeline/method name).
pub fn chrome_trace(events: &[TraceEvent], executors: usize, label: &str) -> String {
    let tracks: Vec<String> = (0..executors).map(|k| format!("executor-{k}")).collect();
    chrome_trace_named(events, &tracks, label)
}

/// [`chrome_trace`] with caller-supplied executor track names — executor
/// `k` renders on track `k + 1` named `tracks[k]`. Sharded serve runs pass
/// `shard-<s>/executor-<k>` names so a merged trace keeps its shard labels.
pub fn chrome_trace_named(events: &[TraceEvent], tracks: &[String], label: &str) -> String {
    let executors = tracks.len();
    let mut out: Vec<String> = Vec::with_capacity(events.len() + executors + 2);
    push_event(
        &mut out,
        format!(
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{{\"name\":\"schemble {}\"}}",
            escape(label)
        ),
    );
    push_event(
        &mut out,
        "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"scheduler\"}"
            .to_string(),
    );
    for (k, track) in tracks.iter().enumerate() {
        push_event(
            &mut out,
            format!(
                "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}",
                k as u32 + 1,
                escape(track)
            ),
        );
    }

    // Open task per executor: (query, start time). Backends are
    // non-preemptive, so sequential pairing per track is exact.
    let mut open: Vec<Option<(u64, u64)>> = vec![None; executors];
    let mut last_ts = 0u64;
    for ev in events {
        let ts = ev.time().as_micros();
        last_ts = last_ts.max(ts);
        match *ev {
            TraceEvent::Arrival { query, deadline, .. } => instant(
                &mut out,
                "arrival",
                ts,
                SCHEDULER_TID,
                &format!("\"query\":{query},\"deadline_us\":{}", deadline.as_micros()),
            ),
            TraceEvent::Admission { query, verdict, .. } => {
                let (name, args) = match verdict {
                    AdmissionVerdict::Buffered => ("buffered", format!("\"query\":{query}")),
                    AdmissionVerdict::FastPath { executor } => {
                        ("fast-path", format!("\"query\":{query},\"executor\":{executor}"))
                    }
                    AdmissionVerdict::Selected { set } => {
                        ("selected", format!("\"query\":{query},\"set\":{:?}", set_members(set)))
                    }
                    AdmissionVerdict::Rejected => ("rejected", format!("\"query\":{query}")),
                };
                instant(&mut out, name, ts, SCHEDULER_TID, &args);
            }
            TraceEvent::Plan { buffer, scheduled, work, cost, .. } => span(
                &mut out,
                "plan",
                ts,
                cost.as_micros(),
                SCHEDULER_TID,
                &format!("\"buffer\":{buffer},\"scheduled\":{scheduled},\"work\":{work}"),
            ),
            TraceEvent::TaskEnqueue { query, executor, .. } => instant(
                &mut out,
                &format!("enqueue q{query}"),
                ts,
                executor as u32 + 1,
                &format!("\"query\":{query}"),
            ),
            TraceEvent::TaskStart { query, executor, .. } => {
                if let Some(slot) = open.get_mut(executor as usize) {
                    *slot = Some((query, ts));
                }
            }
            TraceEvent::TaskDone { query, executor, .. } => {
                let started = open
                    .get_mut(executor as usize)
                    .and_then(Option::take)
                    .filter(|(q, _)| *q == query);
                let start_ts = started.map_or(ts, |(_, t0)| t0);
                span(
                    &mut out,
                    &format!("q{query}"),
                    start_ts,
                    ts - start_ts,
                    executor as u32 + 1,
                    &format!("\"query\":{query}"),
                );
            }
            TraceEvent::QueryDone { query, set, .. } => instant(
                &mut out,
                "complete",
                ts,
                SCHEDULER_TID,
                &format!("\"query\":{query},\"set\":{:?}", set_members(set)),
            ),
            TraceEvent::QueryExpired { query, .. } => {
                instant(&mut out, "expire", ts, SCHEDULER_TID, &format!("\"query\":{query}"))
            }
            TraceEvent::TaskFailed { query, executor, .. } => {
                // A failure closes the open span like a completion would,
                // but renders with a distinct name so Perfetto colours it.
                let started = open
                    .get_mut(executor as usize)
                    .and_then(Option::take)
                    .filter(|(q, _)| *q == query);
                let start_ts = started.map_or(ts, |(_, t0)| t0);
                span(
                    &mut out,
                    &format!("q{query} FAILED"),
                    start_ts,
                    ts - start_ts,
                    executor as u32 + 1,
                    &format!("\"query\":{query},\"failed\":true"),
                );
            }
            TraceEvent::TaskRetried { query, executor, attempt, .. } => instant(
                &mut out,
                &format!("retry q{query}"),
                ts,
                executor as u32 + 1,
                &format!("\"query\":{query},\"attempt\":{attempt}"),
            ),
            TraceEvent::ExecutorDown { executor, .. } => instant(
                &mut out,
                "executor-down",
                ts,
                executor as u32 + 1,
                &format!("\"executor\":{executor}"),
            ),
            TraceEvent::ExecutorUp { executor, .. } => instant(
                &mut out,
                "executor-up",
                ts,
                executor as u32 + 1,
                &format!("\"executor\":{executor}"),
            ),
            TraceEvent::DegradedAnswer { query, set, .. } => instant(
                &mut out,
                "degraded",
                ts,
                SCHEDULER_TID,
                &format!("\"query\":{query},\"set\":{:?}", set_members(set)),
            ),
            TraceEvent::Scored { query, bin, score_fp, .. } => instant(
                &mut out,
                "scored",
                ts,
                SCHEDULER_TID,
                &format!("\"query\":{query},\"bin\":{bin},\"score_fp\":{score_fp}"),
            ),
            TraceEvent::PlanAssign { query, set, predicted_finish, frontier, .. } => instant(
                &mut out,
                "assign",
                ts,
                SCHEDULER_TID,
                &format!(
                    "\"query\":{query},\"set\":{:?},\"predicted_finish_us\":{},\"frontier\":{frontier}",
                    set_members(set),
                    predicted_finish.as_micros()
                ),
            ),
            TraceEvent::Realized { query, score_fp, correct, .. } => instant(
                &mut out,
                "realized",
                ts,
                SCHEDULER_TID,
                &format!("\"query\":{query},\"score_fp\":{score_fp},\"correct\":{correct}"),
            ),
            TraceEvent::TaskQuit { query, executor, .. } => {
                // A quit of a running task closes its open span like a
                // failure would; a quit of an unstarted task has no open
                // span and renders as a zero-length marker at the decision.
                let started = open
                    .get_mut(executor as usize)
                    .and_then(Option::take)
                    .filter(|(q, _)| *q == query);
                let start_ts = started.map_or(ts, |(_, t0)| t0);
                span(
                    &mut out,
                    &format!("q{query} QUIT"),
                    start_ts,
                    ts - start_ts,
                    executor as u32 + 1,
                    &format!("\"query\":{query},\"quit\":true"),
                );
            }
            TraceEvent::WorkSaved { query, saved, .. } => instant(
                &mut out,
                "work-saved",
                ts,
                SCHEDULER_TID,
                &format!("\"query\":{query},\"saved\":{saved}"),
            ),
            TraceEvent::BatchFormed { executor, batch, size, .. } => instant(
                &mut out,
                &format!("batch#{batch} x{size}"),
                ts,
                executor as u32 + 1,
                &format!("\"batch\":{batch},\"size\":{size}"),
            ),
            TraceEvent::QueryStolen { query, epoch, victim, thief, .. } => instant(
                &mut out,
                &format!("steal q{query} s{victim}->s{thief}"),
                ts,
                SCHEDULER_TID,
                &format!("\"query\":{query},\"epoch\":{epoch},\"victim\":{victim},\"thief\":{thief}"),
            ),
        }
    }
    // A task still running when the trace was drained renders as a span to
    // the last observed instant (only happens on mid-run snapshots).
    for (k, slot) in open.into_iter().enumerate() {
        if let Some((query, t0)) = slot {
            span(
                &mut out,
                &format!("q{query}"),
                t0,
                last_ts - t0,
                k as u32 + 1,
                &format!("\"query\":{query},\"truncated\":true"),
            );
        }
    }

    let mut doc = String::with_capacity(out.iter().map(|s| s.len() + 2).sum::<usize>() + 64);
    doc.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in out.iter().enumerate() {
        doc.push_str(ev);
        if i + 1 != out.len() {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("]}\n");
    doc
}

/// Number of complete (start+done) task spans per query in `events`.
///
/// Used by round-trip tests: after a drained run every started task has
/// exactly one `TaskStart`/`TaskDone` pair.
pub fn complete_task_spans(events: &[TraceEvent]) -> std::collections::HashMap<u64, usize> {
    let mut starts: std::collections::HashMap<(u64, u16), usize> = std::collections::HashMap::new();
    let mut spans: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for ev in events {
        match *ev {
            TraceEvent::TaskStart { query, executor, .. } => {
                *starts.entry((query, executor)).or_default() += 1;
            }
            TraceEvent::TaskDone { query, executor, .. } => {
                let open = starts.entry((query, executor)).or_default();
                if *open > 0 {
                    *open -= 1;
                    *spans.entry(query).or_default() += 1;
                }
            }
            _ => {}
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use schemble_sim::{SimDuration, SimTime};

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Arrival { t: at(0), query: 1, deadline: at(50) },
            TraceEvent::Admission { t: at(0), query: 1, verdict: AdmissionVerdict::Buffered },
            TraceEvent::Plan {
                t: at(0),
                buffer: 1,
                scheduled: 1,
                work: 12,
                cost: SimDuration::from_micros(80),
            },
            TraceEvent::TaskStart { t: at(1), query: 1, executor: 0 },
            TraceEvent::TaskDone { t: at(11), query: 1, executor: 0 },
            TraceEvent::QueryDone { t: at(11), query: 1, set: 0b1 },
        ]
    }

    #[test]
    fn output_is_valid_json_with_task_span() {
        let doc = chrome_trace(&sample_events(), 2, "schemble");
        validate(&doc).expect("chrome trace must parse");
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"q1\""));
        assert!(doc.contains("\"dur\":10000"), "10ms span in micros");
        assert!(doc.contains("executor-1"), "all executor tracks named");
    }

    #[test]
    fn named_tracks_carry_shard_labels() {
        let tracks = vec!["shard-0/executor-0".to_string(), "shard-1/executor-0".to_string()];
        let doc = chrome_trace_named(&sample_events(), &tracks, "schemble x4");
        validate(&doc).expect("named-track trace must parse");
        assert!(doc.contains("shard-0/executor-0"));
        assert!(doc.contains("shard-1/executor-0"));
        assert!(!doc.contains("\"executor-0\""), "default names replaced");
    }

    #[test]
    fn span_counter_pairs_starts_with_dones() {
        let spans = complete_task_spans(&sample_events());
        assert_eq!(spans.get(&1), Some(&1));
        // An unmatched start contributes no complete span.
        let mut events = sample_events();
        events.push(TraceEvent::TaskStart { t: at(20), query: 2, executor: 1 });
        assert_eq!(complete_task_spans(&events).get(&2), None);
    }

    #[test]
    fn truncated_running_task_still_renders() {
        let mut events = sample_events();
        events.push(TraceEvent::TaskStart { t: at(20), query: 2, executor: 1 });
        let doc = chrome_trace(&events, 2, "x");
        validate(&doc).expect("valid despite open span");
        assert!(doc.contains("\"truncated\":true"));
    }
}
