//! Golden-file pin of the Prometheus text exposition.
//!
//! The exporter's exact output — family ordering, `# HELP`/`# TYPE` lines,
//! label escaping, float formatting — is a contract consumed by scrape
//! configs and the CI telemetry job, so it is pinned byte-for-byte against
//! a checked-in fixture. Regenerate deliberately with
//! `BLESS_GOLDEN=1 cargo test -p schemble-trace --test prometheus_golden`.

use schemble_metrics::RuntimeMetrics;
use schemble_trace::{prometheus_text, PlanningProfile};
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.prom");

/// A fully deterministic metrics fixture exercising every family: counters,
/// per-executor gauges (two executors, one down), a multi-bucket latency
/// histogram, and the scheduler self-profile.
fn fixture() -> (RuntimeMetrics, PlanningProfile) {
    let metrics = RuntimeMetrics::new(2);
    let c = &metrics.counters;
    c.submitted.store(20, Relaxed);
    c.completed.store(14, Relaxed);
    c.rejected.store(2, Relaxed);
    c.expired.store(1, Relaxed);
    c.degraded.store(3, Relaxed);
    c.tasks_started.store(31, Relaxed);
    c.tasks_completed.store(29, Relaxed);
    c.tasks_failed.store(2, Relaxed);
    c.tasks_retried.store(1, Relaxed);
    metrics.executors[0].queue_depth.store(3, Relaxed);
    metrics.executors[0].busy_micros.store(1_500_000, Relaxed);
    metrics.executors[0].tasks.store(17, Relaxed);
    metrics.executors[1].busy_micros.store(250_000, Relaxed);
    metrics.executors[1].tasks.store(12, Relaxed);
    metrics.executors[1].up.store(0, Relaxed);
    for lat in [0.0005, 0.004, 0.004, 0.032, 0.25] {
        metrics.latency.record(lat);
    }
    let planning = PlanningProfile::default();
    planning.record(40, Duration::from_micros(200));
    planning.record(120, Duration::from_micros(800));
    (metrics, planning)
}

#[test]
fn exposition_matches_the_checked_in_golden_file() {
    let (metrics, planning) = fixture();
    let text = prometheus_text(&metrics, 2.0, Some(&planning));
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &text).expect("write golden file");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file checked in");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from the golden file; if the change \
         is intentional, regenerate with BLESS_GOLDEN=1"
    );
    // Spot-check the golden file itself still carries the contract pieces.
    assert!(golden.contains("# HELP schemble_queries_submitted_total"));
    assert!(golden.contains("# TYPE schemble_query_latency_seconds histogram"));
    assert!(golden.contains("schemble_executor_up{executor=\"1\"} 0"));
}
