//! MV-LSTM-style sequence predictor (§V-C, text modality).
//!
//! The paper's text-matching difficulty predictor runs an efficient LSTM
//! matcher and maps the concatenation of its *final* output and
//! *intermediate* outputs to the discrepancy score. This wrapper mirrors
//! that: the flat feature vector is read as a sequence of fixed-width
//! chunks (standing in for token embeddings), an [`Lstm`] encodes it, and
//! two dense heads over `[h_last ‖ mean_t h_t]` emit the task output and
//! the discrepancy score, trained with the Eq. 2 weighted loss.

use crate::dense::{Activation, Dense};
use crate::loss::{bce_with_logits, mse};
use crate::lstm::Lstm;
use crate::optim::{Adam, Optimizer};
use crate::predictor::TaskLoss;
use rand::seq::SliceRandom;
use rand::Rng;
use schemble_tensor::Matrix;

/// Hyperparameters of the sequence predictor.
#[derive(Debug, Clone)]
pub struct SeqPredictorConfig {
    /// Flat feature dimension (must be divisible by `chunk`).
    pub input_dim: usize,
    /// Width of each pseudo-token chunk.
    pub chunk: usize,
    /// LSTM hidden size.
    pub hidden: usize,
    /// Task-head loss.
    pub task_loss: TaskLoss,
    /// Eq. 2 weight λ.
    pub lambda: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl SeqPredictorConfig {
    /// Defaults matching the MLP predictor's capacity class.
    pub fn default_for(input_dim: usize, task_loss: TaskLoss) -> Self {
        // Pick the largest chunk ≤ 4 dividing the input.
        let chunk =
            (1..=4usize.min(input_dim)).rev().find(|&c| input_dim.is_multiple_of(c)).unwrap_or(1);
        Self { input_dim, chunk, hidden: 12, task_loss, lambda: 0.2, epochs: 30, lr: 0.01 }
    }
}

/// The trained MV-LSTM-style predictor.
#[derive(Debug, Clone)]
pub struct SequencePredictor {
    lstm: Lstm,
    task_head: Dense,
    dis_head: Dense,
    config: SeqPredictorConfig,
}

impl SequencePredictor {
    /// An untrained predictor.
    ///
    /// # Panics
    /// Panics if `input_dim` is not divisible by `chunk`.
    pub fn new(config: SeqPredictorConfig, rng: &mut impl Rng) -> Self {
        assert_eq!(
            config.input_dim % config.chunk,
            0,
            "input_dim {} not divisible by chunk {}",
            config.input_dim,
            config.chunk
        );
        let lstm = Lstm::new(config.chunk, config.hidden, rng);
        // Heads read [h_last ‖ mean_t h_t].
        let task_head = Dense::new(2 * config.hidden, 1, Activation::Identity, rng);
        let dis_head = Dense::new(2 * config.hidden, 1, Activation::Sigmoid, rng);
        Self { lstm, task_head, dis_head, config }
    }

    fn to_sequence(&self, features: &[f64]) -> Vec<Vec<f64>> {
        features.chunks(self.config.chunk).map(|c| c.to_vec()).collect()
    }

    fn encode(&mut self, features: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let seq = self.to_sequence(features);
        let outs = self.lstm.forward(&seq);
        (outs.clone(), pooled(&outs))
    }

    /// Trains on historical data (one sample per step — the sequences are
    /// short, so per-sample SGD converges quickly). Returns the final-epoch
    /// average combined loss.
    pub fn fit(
        &mut self,
        features: &Matrix,
        task_labels: &[f64],
        dis_labels: &[f64],
        rng: &mut impl Rng,
    ) -> f64 {
        let n = features.rows();
        assert_eq!(task_labels.len(), n, "task label count mismatch");
        assert_eq!(dis_labels.len(), n, "discrepancy label count mismatch");
        let mut opt = Adam::new(self.config.lr);
        let mut order: Vec<usize> = (0..n).collect();
        let mut last = 0.0;
        const LSTM_KEYS: usize = 0;
        const TASK_KEYS: usize = 1_000_000;
        const DIS_KEYS: usize = 2_000_000;
        let t_steps = self.config.input_dim / self.config.chunk;
        for _ in 0..self.config.epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for &idx in &order {
                let (outs, feat) = self.encode(features.row(idx));
                let feat_m = Matrix::row_vector(&feat);
                let task_out = self.task_head.forward(&feat_m);
                let dis_out = self.dis_head.forward(&feat_m);
                let t_target = Matrix::row_vector(&[task_labels[idx]]);
                let d_target = Matrix::row_vector(&[dis_labels[idx]]);
                let (task_l, task_g) = match self.config.task_loss {
                    TaskLoss::Binary => bce_with_logits(&task_out, &t_target),
                    TaskLoss::Regression => mse(&task_out, &t_target),
                };
                let (dis_l, dis_g) = mse(&dis_out, &d_target);
                let g_task = self.task_head.backward(&task_g);
                let g_dis = self.dis_head.backward(&dis_g.map(|g| g * self.config.lambda));
                let g_feat = &g_task + &g_dis;
                // Split [h_last ‖ mean] gradient back across the steps.
                let h = self.config.hidden;
                let mut grad_h = vec![vec![0.0f64; h]; outs.len()];
                for j in 0..h {
                    *grad_h.last_mut().expect("non-empty").get_mut(j).expect("width") +=
                        g_feat[(0, j)];
                }
                for step in grad_h.iter_mut() {
                    for j in 0..h {
                        step[j] += g_feat[(0, h + j)] / t_steps as f64;
                    }
                }
                self.lstm.backward(&grad_h);
                self.lstm.apply_grads(&mut opt, LSTM_KEYS);
                opt.step(TASK_KEYS, &mut self.task_head.w, &self.task_head.grad_w);
                opt.step(TASK_KEYS + 1, &mut self.task_head.b, &self.task_head.grad_b);
                self.task_head.zero_grad();
                opt.step(DIS_KEYS, &mut self.dis_head.w, &self.dis_head.grad_w);
                opt.step(DIS_KEYS + 1, &mut self.dis_head.b, &self.dis_head.grad_b);
                self.dis_head.zero_grad();
                epoch_loss += task_l + self.config.lambda * dis_l;
            }
            last = epoch_loss / n as f64;
        }
        last
    }

    /// Predicts the discrepancy score for one feature vector.
    pub fn predict_score(&self, features: &[f64]) -> f64 {
        let outs = self.lstm.infer(&self.to_sequence(features));
        let feat = pooled(&outs);
        self.dis_head.infer(&Matrix::row_vector(&feat))[(0, 0)]
    }

    /// Batched [`SequencePredictor::predict_score`]: one row per sample.
    ///
    /// The LSTM is inherently sequential per sample, but the pooled features
    /// of the whole batch go through `dis_head` in a single matmul. Each
    /// output row is bit-identical to the per-sample path (matmul rows are
    /// independent and elementwise ops commute with batching) — a test pins
    /// exact `f64` equality.
    pub fn predict_scores(&self, features: &Matrix) -> Vec<f64> {
        let n = features.rows();
        let mut feats = Matrix::zeros(n, 2 * self.config.hidden);
        for r in 0..n {
            let outs = self.lstm.infer(&self.to_sequence(features.row(r)));
            feats.row_mut(r).copy_from_slice(&pooled(&outs));
        }
        let out = self.dis_head.infer(&feats);
        (0..n).map(|r| out[(r, 0)]).collect()
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.lstm.param_count() + self.task_head.param_count() + self.dis_head.param_count()
    }
}

/// `[h_last ‖ mean_t h_t]`.
fn pooled(outs: &[Vec<f64>]) -> Vec<f64> {
    let h = outs.last().expect("non-empty sequence").len();
    let mut feat = Vec::with_capacity(2 * h);
    feat.extend_from_slice(outs.last().expect("non-empty"));
    for j in 0..h {
        feat.push(outs.iter().map(|o| o[j]).sum::<f64>() / outs.len() as f64);
    }
    feat
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use schemble_tensor::stats::pearson;

    #[test]
    fn predicts_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let p =
            SequencePredictor::new(SeqPredictorConfig::default_for(12, TaskLoss::Binary), &mut rng);
        for _ in 0..30 {
            use rand::Rng;
            let f: Vec<f64> = (0..12).map(|_| rng.random_range(-3.0..3.0)).collect();
            let s = p.predict_score(&f);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn learns_difficulty_from_sequence_features() {
        let mut rng = StdRng::seed_from_u64(5);
        use rand::Rng;
        let n = 400;
        let dim = 12;
        let mut features = Matrix::zeros(n, dim);
        let mut dis = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for r in 0..n {
            let z: f64 = rng.random_range(0.0..1.0);
            features[(r, 0)] = z + rng.random_range(-0.05..0.05);
            features[(r, 4)] = 1.0 - z + rng.random_range(-0.05..0.05);
            for c in [1, 2, 3, 5, 6, 7, 8, 9, 10, 11] {
                features[(r, c)] = rng.random_range(-0.5..0.5);
            }
            dis.push(z);
            labels.push(f64::from(z > 0.5));
        }
        let cfg = SeqPredictorConfig {
            epochs: 40,
            ..SeqPredictorConfig::default_for(dim, TaskLoss::Binary)
        };
        let mut p = SequencePredictor::new(cfg, &mut rng);
        p.fit(&features, &labels, &dis, &mut rng);
        let predicted: Vec<f64> = (0..n).map(|r| p.predict_score(features.row(r))).collect();
        let corr = pearson(&predicted, &dis);
        assert!(corr > 0.8, "sequence predictor correlation too low: {corr:.3}");
    }

    #[test]
    fn batched_scores_are_bit_identical_to_single() {
        let mut rng = StdRng::seed_from_u64(8);
        let p =
            SequencePredictor::new(SeqPredictorConfig::default_for(12, TaskLoss::Binary), &mut rng);
        use rand::Rng;
        let batch = Matrix::from_fn(9, 12, |_, _| rng.random_range(-3.0..3.0));
        let batched = p.predict_scores(&batch);
        for (r, score) in batched.iter().enumerate() {
            let single = p.predict_score(batch.row(r));
            assert_eq!(single.to_bits(), score.to_bits(), "row {r} diverged");
        }
    }

    #[test]
    fn chunking_covers_input() {
        let cfg = SeqPredictorConfig::default_for(12, TaskLoss::Binary);
        assert_eq!(cfg.chunk, 4);
        let cfg = SeqPredictorConfig::default_for(7, TaskLoss::Binary);
        assert_eq!(cfg.chunk, 1);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn invalid_chunk_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SeqPredictorConfig {
            chunk: 5,
            ..SeqPredictorConfig::default_for(12, TaskLoss::Binary)
        };
        let _ = SequencePredictor::new(cfg, &mut rng);
    }
}
