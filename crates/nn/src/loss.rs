//! Loss functions, each returning `(loss, ∂loss/∂prediction)`.
//!
//! Cross-entropy losses operate in **logit space** (the final layer uses
//! [`crate::Activation::Identity`]); fusing the sigmoid/softmax into the loss
//! is the numerically stable formulation and gives the famously simple
//! gradient `σ(z) − y`.

use schemble_tensor::prob::softmax;
use schemble_tensor::Matrix;

/// Mean squared error over every element of the batch.
///
/// `loss = mean((pred − target)²)`, `grad = 2(pred − target)/n`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f64;
    let diff = pred - target;
    let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
    let grad = diff.map(|d| 2.0 * d / n);
    (loss, grad)
}

/// Binary cross-entropy on logits, averaged over the batch.
///
/// `pred` holds raw logits `z`; `target` holds labels in `[0, 1]` (soft
/// labels are allowed — the pipelines use the ensemble's probability as the
/// label). Uses the overflow-safe form
/// `max(z,0) − z·y + ln(1 + e^(−|z|))`; gradient is `(σ(z) − y)/n`.
pub fn bce_with_logits(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "bce shape mismatch");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for r in 0..pred.rows() {
        for c in 0..pred.cols() {
            let z = pred[(r, c)];
            let y = target[(r, c)];
            loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
            let sig = 1.0 / (1.0 + (-z).exp());
            grad[(r, c)] = (sig - y) / n;
        }
    }
    (loss / n, grad)
}

/// Multi-class cross-entropy on logits with integer class labels, averaged
/// over the batch. Gradient is `(softmax(z) − onehot(y))/batch`.
pub fn softmax_ce_with_logits(pred: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    assert_eq!(pred.rows(), labels.len(), "label count mismatch");
    let batch = pred.rows() as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for r in 0..pred.rows() {
        let probs = softmax(pred.row(r));
        let y = labels[r];
        assert!(y < pred.cols(), "label {y} out of range for {} classes", pred.cols());
        loss += -probs[y].max(1e-12).ln();
        for c in 0..pred.cols() {
            grad[(r, c)] = (probs[c] - if c == y { 1.0 } else { 0.0 }) / batch;
        }
    }
    (loss / batch, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_target() {
        let p = Matrix::row_vector(&[1.0, 2.0]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert_eq!(g.frobenius_norm(), 0.0);
    }

    #[test]
    fn mse_gradient_finite_difference() {
        let p = Matrix::row_vector(&[0.3, -0.8, 1.2]);
        let t = Matrix::row_vector(&[0.0, 0.5, 1.0]);
        let (_, g) = mse(&p, &t);
        let eps = 1e-6;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= eps;
            let numeric = (mse(&pp, &t).0 - mse(&pm, &t).0) / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn bce_gradient_is_sigmoid_minus_label() {
        let z = Matrix::row_vector(&[0.0]);
        let y = Matrix::row_vector(&[1.0]);
        let (loss, g) = bce_with_logits(&z, &y);
        assert!((loss - (2f64).ln()).abs() < 1e-9, "BCE at z=0,y=1 is ln 2");
        assert!((g[(0, 0)] - (0.5 - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn bce_stable_for_large_logits() {
        let z = Matrix::row_vector(&[1000.0, -1000.0]);
        let y = Matrix::row_vector(&[1.0, 0.0]);
        let (loss, g) = bce_with_logits(&z, &y);
        assert!(loss.is_finite() && loss < 1e-6, "confident+correct ⇒ near-zero loss");
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bce_gradient_finite_difference() {
        let z = Matrix::row_vector(&[0.7, -1.3]);
        let y = Matrix::row_vector(&[1.0, 0.3]);
        let (_, g) = bce_with_logits(&z, &y);
        let eps = 1e-6;
        for i in 0..2 {
            let mut zp = z.clone();
            zp.as_mut_slice()[i] += eps;
            let mut zm = z.clone();
            zm.as_mut_slice()[i] -= eps;
            let numeric = (bce_with_logits(&zp, &y).0 - bce_with_logits(&zm, &y).0) / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_ce_prefers_correct_class() {
        let good = Matrix::row_vector(&[5.0, 0.0, 0.0]);
        let bad = Matrix::row_vector(&[0.0, 5.0, 0.0]);
        let (lg, _) = softmax_ce_with_logits(&good, &[0]);
        let (lb, _) = softmax_ce_with_logits(&bad, &[0]);
        assert!(lg < lb);
    }

    #[test]
    fn softmax_ce_gradient_rows_sum_to_zero() {
        let z = Matrix::from_vec(2, 3, vec![0.1, 0.5, -0.2, 1.0, -1.0, 0.0]);
        let (_, g) = softmax_ce_with_logits(&z, &[2, 0]);
        for r in 0..2 {
            let s: f64 = g.row(r).iter().sum();
            assert!(s.abs() < 1e-12, "softmax-CE row gradients must sum to 0");
        }
    }

    #[test]
    fn softmax_ce_gradient_finite_difference() {
        let z = Matrix::row_vector(&[0.4, -0.9, 0.2]);
        let labels = [1usize];
        let (_, g) = softmax_ce_with_logits(&z, &labels);
        let eps = 1e-6;
        for i in 0..3 {
            let mut zp = z.clone();
            zp.as_mut_slice()[i] += eps;
            let mut zm = z.clone();
            zm.as_mut_slice()[i] -= eps;
            let numeric = (softmax_ce_with_logits(&zp, &labels).0
                - softmax_ce_with_logits(&zm, &labels).0)
                / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-6);
        }
    }
}
