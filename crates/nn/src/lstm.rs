//! A single-layer LSTM with hand-derived backpropagation through time.
//!
//! The paper's text-matching difficulty predictor is built on MV-LSTM: an
//! LSTM encodes the query, and a dense head maps the concatenation of the
//! final state and pooled intermediate outputs to the discrepancy score
//! (§V-C: "we concatenate the final outputs with intermediate outputs from
//! the LSTM layer"). This module provides that LSTM; the two-headed wrapper
//! lives in [`crate::predictor`].
//!
//! Standard formulation (no peepholes), for step `t` with input `x_t` and
//! previous state `(h_{t-1}, c_t-1)`:
//!
//! ```text
//! i = σ(W_i x + U_i h + b_i)      f = σ(W_f x + U_f h + b_f)
//! g = tanh(W_g x + U_g h + b_g)   o = σ(W_o x + U_o h + b_o)
//! c_t = f ⊙ c_{t-1} + i ⊙ g       h_t = o ⊙ tanh(c_t)
//! ```
//!
//! The forget-gate bias is initialised to 1 (the usual trick against early
//! vanishing gradients). Gradients are checked against finite differences in
//! the tests.

use rand::Rng;
use schemble_tensor::Matrix;

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Cached activations of one step, needed by BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// A single-layer LSTM processing one sequence at a time.
///
/// Weights are stored gate-major: rows 0..H are the input gate, then forget,
/// cell and output gates (`4H × in_dim` for `w`, `4H × H` for `u`).
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input-to-gates weights, `4H × in_dim`.
    pub w: Matrix,
    /// Hidden-to-gates weights, `4H × H`.
    pub u: Matrix,
    /// Gate biases, `1 × 4H`.
    pub b: Matrix,
    /// Accumulated gradients, matching `w`/`u`/`b`.
    pub grad_w: Matrix,
    /// Gradient of `u`.
    pub grad_u: Matrix,
    /// Gradient of `b`.
    pub grad_b: Matrix,
    in_dim: usize,
    hidden: usize,
    cache: Vec<StepCache>,
}

impl Lstm {
    /// A new LSTM with Xavier-uniform weights and forget bias 1.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let limit_w = (6.0 / (in_dim + hidden) as f64).sqrt();
        let w = Matrix::from_fn(4 * hidden, in_dim, |_, _| rng.random_range(-limit_w..limit_w));
        let u = Matrix::from_fn(4 * hidden, hidden, |_, _| rng.random_range(-limit_w..limit_w));
        let mut b = Matrix::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            b[(0, j)] = 1.0; // forget-gate bias
        }
        Self {
            grad_w: Matrix::zeros(4 * hidden, in_dim),
            grad_u: Matrix::zeros(4 * hidden, hidden),
            grad_b: Matrix::zeros(1, 4 * hidden),
            w,
            u,
            b,
            in_dim,
            hidden,
            cache: Vec::new(),
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.u.len() + self.b.len()
    }

    fn gates(&self, x: &[f64], h: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let hsz = self.hidden;
        let mut pre = vec![0.0f64; 4 * hsz];
        for (r, p) in pre.iter_mut().enumerate() {
            let mut acc = self.b[(0, r)];
            for (j, &xj) in x.iter().enumerate() {
                acc += self.w[(r, j)] * xj;
            }
            for (j, &hj) in h.iter().enumerate() {
                acc += self.u[(r, j)] * hj;
            }
            *p = acc;
        }
        let i: Vec<f64> = pre[..hsz].iter().map(|&z| sigmoid(z)).collect();
        let f: Vec<f64> = pre[hsz..2 * hsz].iter().map(|&z| sigmoid(z)).collect();
        let g: Vec<f64> = pre[2 * hsz..3 * hsz].iter().map(|&z| z.tanh()).collect();
        let o: Vec<f64> = pre[3 * hsz..].iter().map(|&z| sigmoid(z)).collect();
        (i, f, g, o)
    }

    /// Runs the whole sequence, caching activations for BPTT. Returns the
    /// per-step hidden states (`seq_len` rows of width `H`).
    pub fn forward(&mut self, sequence: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert!(!sequence.is_empty(), "empty sequence");
        self.cache.clear();
        let hsz = self.hidden;
        let mut h = vec![0.0f64; hsz];
        let mut c = vec![0.0f64; hsz];
        let mut outputs = Vec::with_capacity(sequence.len());
        for x in sequence {
            assert_eq!(x.len(), self.in_dim, "input width mismatch");
            let (i, f, g, o) = self.gates(x, &h);
            let c_prev = c.clone();
            for j in 0..hsz {
                c[j] = f[j] * c_prev[j] + i[j] * g[j];
            }
            let tanh_c: Vec<f64> = c.iter().map(|&v| v.tanh()).collect();
            let h_prev = h.clone();
            for j in 0..hsz {
                h[j] = o[j] * tanh_c[j];
            }
            self.cache.push(StepCache { x: x.clone(), h_prev, c_prev, i, f, g, o, tanh_c });
            outputs.push(h.clone());
        }
        outputs
    }

    /// Inference without caching.
    pub fn infer(&self, sequence: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let hsz = self.hidden;
        let mut h = vec![0.0f64; hsz];
        let mut c = vec![0.0f64; hsz];
        let mut outputs = Vec::with_capacity(sequence.len());
        for x in sequence {
            let (i, f, g, o) = self.gates(x, &h);
            for j in 0..hsz {
                c[j] = f[j] * c[j] + i[j] * g[j];
            }
            for j in 0..hsz {
                h[j] = o[j] * c[j].tanh();
            }
            outputs.push(h.clone());
        }
        outputs
    }

    /// BPTT: `grad_h[t]` is ∂L/∂h_t for every step (zero rows are fine).
    /// Accumulates parameter gradients; returns ∂L/∂x_t per step.
    ///
    /// # Panics
    /// Panics if called before `forward` or with mismatched lengths.
    pub fn backward(&mut self, grad_h: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(grad_h.len(), self.cache.len(), "grad/sequence length mismatch");
        let hsz = self.hidden;
        let mut dh_next = vec![0.0f64; hsz];
        let mut dc_next = vec![0.0f64; hsz];
        let mut dx_all = vec![vec![0.0f64; self.in_dim]; grad_h.len()];
        for t in (0..self.cache.len()).rev() {
            let s = &self.cache[t];
            // Total gradient into h_t: external + recurrent.
            let dh: Vec<f64> = (0..hsz).map(|j| grad_h[t][j] + dh_next[j]).collect();
            // h = o ⊙ tanh(c)
            let do_: Vec<f64> = (0..hsz).map(|j| dh[j] * s.tanh_c[j]).collect();
            let mut dc: Vec<f64> = (0..hsz)
                .map(|j| dh[j] * s.o[j] * (1.0 - s.tanh_c[j] * s.tanh_c[j]) + dc_next[j])
                .collect();
            // c = f ⊙ c_prev + i ⊙ g
            let df: Vec<f64> = (0..hsz).map(|j| dc[j] * s.c_prev[j]).collect();
            let di: Vec<f64> = (0..hsz).map(|j| dc[j] * s.g[j]).collect();
            let dg: Vec<f64> = (0..hsz).map(|j| dc[j] * s.i[j]).collect();
            for (dcj, &fj) in dc.iter_mut().zip(&s.f) {
                *dcj *= fj; // flows to c_{t-1}
            }
            // Pre-activation gradients per gate.
            let pre_grads: Vec<f64> = (0..4 * hsz)
                .map(|r| {
                    let j = r % hsz;
                    match r / hsz {
                        0 => di[j] * s.i[j] * (1.0 - s.i[j]),
                        1 => df[j] * s.f[j] * (1.0 - s.f[j]),
                        2 => dg[j] * (1.0 - s.g[j] * s.g[j]),
                        _ => do_[j] * s.o[j] * (1.0 - s.o[j]),
                    }
                })
                .collect();
            // Parameter gradients and input/hidden backflow.
            let mut dh_prev = vec![0.0f64; hsz];
            for (r, &pg) in pre_grads.iter().enumerate() {
                self.grad_b[(0, r)] += pg;
                for (j, &xj) in s.x.iter().enumerate() {
                    self.grad_w[(r, j)] += pg * xj;
                    dx_all[t][j] += pg * self.w[(r, j)];
                }
                for (j, dhp) in dh_prev.iter_mut().enumerate() {
                    self.grad_u[(r, j)] += pg * s.h_prev[j];
                    *dhp += pg * self.u[(r, j)];
                }
            }
            dh_next = dh_prev;
            dc_next = dc;
        }
        dx_all
    }

    /// Zeroes the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.map_inplace(|_| 0.0);
        self.grad_u.map_inplace(|_| 0.0);
        self.grad_b.map_inplace(|_| 0.0);
    }

    /// Applies one optimiser step under `key_base..key_base+3`.
    pub fn apply_grads(&mut self, opt: &mut impl crate::optim::Optimizer, key_base: usize) {
        opt.step(key_base, &mut self.w, &self.grad_w);
        opt.step(key_base + 1, &mut self.u, &self.grad_u);
        opt.step(key_base + 2, &mut self.b, &self.grad_b);
        self.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    fn seq(vals: &[&[f64]]) -> Vec<Vec<f64>> {
        vals.iter().map(|v| v.to_vec()).collect()
    }

    #[test]
    fn forward_shapes_and_state_propagation() {
        let mut lstm = Lstm::new(2, 4, &mut rng());
        let outs = lstm.forward(&seq(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]));
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|h| h.len() == 4));
        // State must evolve: consecutive hidden states differ.
        assert_ne!(outs[0], outs[1]);
    }

    #[test]
    fn infer_matches_forward() {
        let mut lstm = Lstm::new(3, 5, &mut rng());
        let s = seq(&[&[0.1, -0.2, 0.4], &[0.9, 0.0, -0.5]]);
        let a = lstm.forward(&s);
        let b = lstm.infer(&s);
        for (x, y) in a.iter().zip(&b) {
            for (p, q) in x.iter().zip(y) {
                assert!((p - q).abs() < 1e-12);
            }
        }
    }

    /// Finite-difference check of every parameter-gradient block and the
    /// input gradient, through a 3-step sequence.
    #[test]
    fn bptt_matches_finite_differences() {
        let mut lstm = Lstm::new(2, 3, &mut rng());
        let s = seq(&[&[0.5, -0.3], &[0.2, 0.8], &[-0.6, 0.1]]);
        // Loss = sum of all hidden outputs at every step.
        let outs = lstm.forward(&s);
        let grad_h: Vec<Vec<f64>> = outs.iter().map(|h| vec![1.0; h.len()]).collect();
        lstm.zero_grad();
        let dx = lstm.backward(&grad_h);

        let loss = |l: &Lstm| -> f64 { l.infer(&s).iter().map(|h| h.iter().sum::<f64>()).sum() };
        let eps = 1e-6;
        // w gradients.
        for &(r, c) in &[(0usize, 0usize), (4, 1), (7, 0), (11, 1)] {
            let orig = lstm.w[(r, c)];
            lstm.w[(r, c)] = orig + eps;
            let lp = loss(&lstm);
            lstm.w[(r, c)] = orig - eps;
            let lm = loss(&lstm);
            lstm.w[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - lstm.grad_w[(r, c)]).abs() < 1e-4,
                "dW[{r},{c}]: numeric {numeric} vs analytic {}",
                lstm.grad_w[(r, c)]
            );
        }
        // u gradients.
        for &(r, c) in &[(1usize, 1usize), (5, 2), (10, 0)] {
            let orig = lstm.u[(r, c)];
            lstm.u[(r, c)] = orig + eps;
            let lp = loss(&lstm);
            lstm.u[(r, c)] = orig - eps;
            let lm = loss(&lstm);
            lstm.u[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - lstm.grad_u[(r, c)]).abs() < 1e-4,
                "dU[{r},{c}]: numeric {numeric} vs analytic {}",
                lstm.grad_u[(r, c)]
            );
        }
        // b gradients.
        for &r in &[0usize, 3, 6, 9] {
            let orig = lstm.b[(0, r)];
            lstm.b[(0, r)] = orig + eps;
            let lp = loss(&lstm);
            lstm.b[(0, r)] = orig - eps;
            let lm = loss(&lstm);
            lstm.b[(0, r)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - lstm.grad_b[(0, r)]).abs() < 1e-4,
                "db[{r}]: numeric {numeric} vs analytic {}",
                lstm.grad_b[(0, r)]
            );
        }
        // input gradient at step 0.
        let probe = |s2: &[Vec<f64>], l: &Lstm| -> f64 {
            l.infer(s2).iter().map(|h| h.iter().sum::<f64>()).sum()
        };
        let mut sp = s.clone();
        sp[0][1] += eps;
        let mut sm = s.clone();
        sm[0][1] -= eps;
        let numeric = (probe(&sp, &lstm) - probe(&sm, &lstm)) / (2.0 * eps);
        assert!(
            (numeric - dx[0][1]).abs() < 1e-4,
            "dx[0][1]: numeric {numeric} vs analytic {}",
            dx[0][1]
        );
    }

    /// The LSTM can learn a genuinely sequential task an order-blind model
    /// cannot: predict whether the *first* element of the sequence was
    /// positive, reading only the final hidden state.
    #[test]
    fn learns_long_range_memory() {
        let mut r = rng();
        let mut lstm = Lstm::new(1, 8, &mut r);
        let mut head = crate::dense::Dense::new(8, 1, crate::dense::Activation::Identity, &mut r);
        let mut opt = Adam::new(0.02);
        use rand::Rng;
        for _ in 0..600 {
            let first: f64 = if r.random_range(0.0..1.0) > 0.5 { 1.0 } else { -1.0 };
            let mut s = vec![vec![first]];
            for _ in 0..5 {
                s.push(vec![r.random_range(-1.0f64..1.0)]);
            }
            let label = f64::from(first > 0.0);
            let outs = lstm.forward(&s);
            let last = Matrix::row_vector(outs.last().expect("non-empty"));
            let z = head.forward(&last);
            let (_, grad) = crate::loss::bce_with_logits(&z, &Matrix::row_vector(&[label]));
            let gh = head.backward(&grad);
            let mut grad_h = vec![vec![0.0; 8]; s.len()];
            grad_h[s.len() - 1] = gh.as_slice().to_vec();
            lstm.backward(&grad_h);
            lstm.apply_grads(&mut opt, 0);
            opt.step(100, &mut head.w, &head.grad_w);
            opt.step(101, &mut head.b, &head.grad_b);
            head.zero_grad();
        }
        // Evaluate.
        let mut correct = 0;
        let n = 200;
        for _ in 0..n {
            let first: f64 = if r.random_range(0.0..1.0) > 0.5 { 1.0 } else { -1.0 };
            let mut s = vec![vec![first]];
            for _ in 0..5 {
                s.push(vec![r.random_range(-1.0f64..1.0)]);
            }
            let outs = lstm.infer(&s);
            let z = head.infer(&Matrix::row_vector(outs.last().expect("non-empty")));
            let predicted = z[(0, 0)] > 0.0;
            if predicted == (first > 0.0) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.9, "long-range memory accuracy too low: {acc}");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut lstm = Lstm::new(2, 2, &mut rng());
        lstm.forward(&[]);
    }
}
