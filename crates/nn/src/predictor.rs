//! The two-headed discrepancy-score predictor (paper §V-C, Eq. 2).
//!
//! A shared trunk feeds two heads: the first predicts the *original task*
//! output (with the ensemble's output used as the label — "we regard the
//! ensemble's output as the label"), the second regresses the discrepancy
//! score. Training minimises the weighted loss
//!
//! ```text
//! Loss = l(label, out₁) + λ · MSE(dis, out₂)
//! ```
//!
//! The paper found that keeping the task head improves discrepancy
//! prediction ("sample difficulty is closely related to what we expect to
//! derive from the sample"); only the discrepancy head is used at inference
//! time.

use crate::dense::{Activation, Dense};
use crate::loss::{bce_with_logits, mse};
use crate::mlp::Mlp;
use crate::optim::{Adam, Optimizer};
use rand::seq::SliceRandom;
use rand::Rng;
use schemble_tensor::Matrix;

/// Loss used by the task head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskLoss {
    /// Binary classification (text matching): BCE on logits.
    Binary,
    /// Regression (vehicle counting, retrieval scores): MSE.
    Regression,
}

/// Hyperparameters of the predictor.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Feature-vector dimension.
    pub input_dim: usize,
    /// Hidden layer widths of the shared trunk.
    pub hidden: Vec<usize>,
    /// Task-head loss.
    pub task_loss: TaskLoss,
    /// Weight λ of the discrepancy MSE term (paper uses 0.2).
    pub lambda: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl PredictorConfig {
    /// The defaults used throughout the experiments: a two-hidden-layer
    /// trunk, λ = 0.2 as in the paper.
    pub fn default_for(input_dim: usize, task_loss: TaskLoss) -> Self {
        Self {
            input_dim,
            hidden: vec![32, 16],
            task_loss,
            lambda: 0.2,
            epochs: 60,
            batch_size: 32,
            lr: 0.01,
        }
    }
}

/// The trained two-headed network.
#[derive(Debug, Clone)]
pub struct DiscrepancyPredictor {
    trunk: Mlp,
    task_head: Dense,
    dis_head: Dense,
    config: PredictorConfig,
}

impl DiscrepancyPredictor {
    /// Builds an untrained predictor.
    pub fn new(config: PredictorConfig, rng: &mut impl Rng) -> Self {
        let mut dims = vec![config.input_dim];
        dims.extend_from_slice(&config.hidden);
        let trunk = Mlp::new(&dims, Activation::Relu, Activation::Relu, rng);
        let h = *dims.last().expect("non-empty dims");
        // Task head emits a logit (binary) or raw value (regression);
        // discrepancy head squashes to [0, 1] where the score lives.
        let task_head = Dense::new(h, 1, Activation::Identity, rng);
        let dis_head = Dense::new(h, 1, Activation::Sigmoid, rng);
        Self { trunk, task_head, dis_head, config }
    }

    /// Trains on historical data: `features` (one row per sample),
    /// `task_labels` (ensemble outputs) and `dis_labels` (ground-truth
    /// discrepancy scores). Returns the final-epoch average combined loss.
    ///
    /// # Panics
    /// Panics if the label slices don't match the feature row count.
    pub fn fit(
        &mut self,
        features: &Matrix,
        task_labels: &[f64],
        dis_labels: &[f64],
        rng: &mut impl Rng,
    ) -> f64 {
        let n = features.rows();
        assert_eq!(task_labels.len(), n, "task label count mismatch");
        assert_eq!(dis_labels.len(), n, "discrepancy label count mismatch");
        let mut opt = Adam::new(self.config.lr);
        let mut order: Vec<usize> = (0..n).collect();
        let mut last = 0.0;
        // Key bases keep trunk/heads from colliding in the shared optimiser:
        // the trunk uses [0, 2·layers), heads use high bases.
        const TASK_KEYS: usize = 1_000_000;
        const DIS_KEYS: usize = 2_000_000;
        for _ in 0..self.config.epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let xb =
                    Matrix::from_fn(chunk.len(), features.cols(), |r, c| features[(chunk[r], c)]);
                let h = self.trunk.forward(&xb);
                let task_out = self.task_head.forward(&h);
                let dis_out = self.dis_head.forward(&h);

                let t_target = Matrix::from_fn(chunk.len(), 1, |r, _| task_labels[chunk[r]]);
                let d_target = Matrix::from_fn(chunk.len(), 1, |r, _| dis_labels[chunk[r]]);

                let (task_l, task_g) = match self.config.task_loss {
                    TaskLoss::Binary => bce_with_logits(&task_out, &t_target),
                    TaskLoss::Regression => mse(&task_out, &t_target),
                };
                let (dis_l, dis_g) = mse(&dis_out, &d_target);

                let g_from_task = self.task_head.backward(&task_g);
                let g_from_dis = self.dis_head.backward(&dis_g.map(|g| g * self.config.lambda));
                self.trunk.backward(&(&g_from_task + &g_from_dis));

                self.trunk.apply_grads(&mut opt, 0);
                opt.step(TASK_KEYS, &mut self.task_head.w, &self.task_head.grad_w);
                opt.step(TASK_KEYS + 1, &mut self.task_head.b, &self.task_head.grad_b);
                self.task_head.zero_grad();
                opt.step(DIS_KEYS, &mut self.dis_head.w, &self.dis_head.grad_w);
                opt.step(DIS_KEYS + 1, &mut self.dis_head.b, &self.dis_head.grad_b);
                self.dis_head.zero_grad();

                epoch_loss += task_l + self.config.lambda * dis_l;
                batches += 1;
            }
            last = epoch_loss / batches.max(1) as f64;
        }
        last
    }

    /// Predicts the discrepancy score for a single feature vector.
    pub fn predict_score(&self, features: &[f64]) -> f64 {
        let h = self.trunk.infer(&Matrix::row_vector(features));
        self.dis_head.infer(&h)[(0, 0)]
    }

    /// Predicts discrepancy scores for a batch of feature vectors.
    pub fn predict_scores(&self, features: &Matrix) -> Vec<f64> {
        let h = self.trunk.infer(features);
        let out = self.dis_head.infer(&h);
        (0..out.rows()).map(|r| out[(r, 0)]).collect()
    }

    /// The (unused-at-inference) task-head output for one sample. Binary
    /// tasks get a logit; regression tasks a raw value.
    pub fn predict_task(&self, features: &[f64]) -> f64 {
        let h = self.trunk.infer(&Matrix::row_vector(features));
        self.task_head.infer(&h)[(0, 0)]
    }

    /// Parameter count — reported by the Fig. 13 overhead experiment.
    pub fn param_count(&self) -> usize {
        self.trunk.param_count() + self.task_head.param_count() + self.dis_head.param_count()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f64>()
    }

    /// Multiply–accumulate count per inference — the latency proxy.
    pub fn flops_per_sample(&self) -> usize {
        self.trunk.flops_per_sample() + 2 * self.task_head.in_dim() + 2 * self.dis_head.in_dim()
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use schemble_tensor::stats::pearson;

    /// Synthetic check: the score head must recover a smooth function of the
    /// features well enough to *rank* samples (ranking is what the scheduler
    /// consumes, via bin assignment).
    #[test]
    fn predictor_ranks_difficulty() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 600;
        let feat_dim = 6;
        let mut features = Matrix::zeros(n, feat_dim);
        let mut dis = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for r in 0..n {
            let z: f64 = rng.random_range(0.0..1.0);
            // Feature 0 and 1 carry (noisy) difficulty; rest are nuisance.
            features[(r, 0)] = z + rng.random_range(-0.08..0.08);
            features[(r, 1)] = 1.0 - z + rng.random_range(-0.08..0.08);
            for c in 2..feat_dim {
                features[(r, c)] = rng.random_range(-1.0..1.0);
            }
            dis.push(z);
            labels.push(if z > 0.5 { 1.0 } else { 0.0 });
        }
        let cfg = PredictorConfig {
            epochs: 80,
            ..PredictorConfig::default_for(feat_dim, TaskLoss::Binary)
        };
        let mut pred = DiscrepancyPredictor::new(cfg, &mut rng);
        pred.fit(&features, &labels, &dis, &mut rng);
        let scores = pred.predict_scores(&features);
        let corr = pearson(&scores, &dis);
        assert!(corr > 0.85, "predicted/true score correlation too low: {corr:.3}");
    }

    #[test]
    fn batched_scores_are_bit_identical_to_single() {
        // The engine's batched score prefetch relies on this being exact
        // equality, not approximate: matmul rows accumulate independently
        // (ikj order, row-local skip), so batching changes no bit.
        let mut rng = StdRng::seed_from_u64(11);
        let pred =
            DiscrepancyPredictor::new(PredictorConfig::default_for(5, TaskLoss::Binary), &mut rng);
        let batch = Matrix::from_fn(17, 5, |_, _| rng.random_range(-4.0..4.0));
        let batched = pred.predict_scores(&batch);
        for (r, score) in batched.iter().enumerate() {
            let single = pred.predict_score(batch.row(r));
            assert_eq!(single.to_bits(), score.to_bits(), "row {r} diverged");
        }
    }

    #[test]
    fn scores_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let pred =
            DiscrepancyPredictor::new(PredictorConfig::default_for(4, TaskLoss::Binary), &mut rng);
        for _ in 0..50 {
            let f: Vec<f64> = (0..4).map(|_| rng.random_range(-10.0..10.0)).collect();
            let s = pred.predict_score(&f);
            assert!((0.0..=1.0).contains(&s), "score {s} escaped [0,1]");
        }
    }

    #[test]
    fn fit_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200;
        let features = Matrix::from_fn(n, 3, |_, _| rng.random_range(0.0..1.0));
        let dis: Vec<f64> = (0..n).map(|r| features[(r, 0)]).collect();
        let labels: Vec<f64> =
            (0..n).map(|r| if features[(r, 1)] > 0.5 { 1.0 } else { 0.0 }).collect();
        let short =
            PredictorConfig { epochs: 2, ..PredictorConfig::default_for(3, TaskLoss::Binary) };
        let long =
            PredictorConfig { epochs: 60, ..PredictorConfig::default_for(3, TaskLoss::Binary) };
        let mut rng_a = StdRng::seed_from_u64(10);
        let mut p_short = DiscrepancyPredictor::new(short, &mut rng_a);
        let l_short = p_short.fit(&features, &labels, &dis, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(10);
        let mut p_long = DiscrepancyPredictor::new(long, &mut rng_b);
        let l_long = p_long.fit(&features, &labels, &dis, &mut rng_b);
        assert!(l_long < l_short, "more epochs should reduce loss: {l_long} vs {l_short}");
    }

    #[test]
    fn regression_task_head_trains() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 300;
        let features = Matrix::from_fn(n, 2, |_, _| rng.random_range(0.0..1.0));
        let task: Vec<f64> = (0..n).map(|r| 3.0 * features[(r, 0)]).collect();
        let dis: Vec<f64> = (0..n).map(|r| features[(r, 1)]).collect();
        let cfg = PredictorConfig::default_for(2, TaskLoss::Regression);
        let mut pred = DiscrepancyPredictor::new(cfg, &mut rng);
        pred.fit(&features, &task, &dis, &mut rng);
        let scores = pred.predict_scores(&features);
        assert!(pearson(&scores, &dis) > 0.8);
        // The task head should also have learned something.
        let preds: Vec<f64> = (0..n).map(|r| pred.predict_task(features.row(r))).collect();
        assert!(pearson(&preds, &task) > 0.8);
    }

    #[test]
    fn overhead_accounting_is_positive_and_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let pred =
            DiscrepancyPredictor::new(PredictorConfig::default_for(8, TaskLoss::Binary), &mut rng);
        assert!(pred.param_count() > 0);
        assert_eq!(pred.memory_bytes(), pred.param_count() * 8);
        assert!(pred.flops_per_sample() > 0);
    }
}
