//! Fully connected layer with fused activation.

use rand::Rng;
use schemble_tensor::Matrix;

/// Activation functions supported by [`Dense`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation — emit raw pre-activations (logits).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation elementwise.
    fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Identity => z,
            Activation::Relu => z.max(0.0),
            Activation::Tanh => z.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
        }
    }

    /// Derivative expressed in terms of the *activated output* `a` (all four
    /// activations admit this form, which spares caching pre-activations).
    fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Sigmoid => a * (1.0 - a),
        }
    }
}

/// A dense layer `y = act(x·W + b)` over row-major batches.
///
/// `forward` caches the input batch and activated output; `backward` consumes
/// those caches to accumulate `grad_w`/`grad_b` and return the gradient with
/// respect to the input.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias row vector, `1 × out_dim`.
    pub b: Matrix,
    /// Accumulated weight gradient (zeroed by the optimiser step).
    pub grad_w: Matrix,
    /// Accumulated bias gradient.
    pub grad_b: Matrix,
    activation: Activation,
    input_cache: Option<Matrix>,
    output_cache: Option<Matrix>,
}

impl Dense {
    /// A new layer with Kaiming-uniform initialised weights and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        // Kaiming/He uniform: U(-limit, limit), limit = sqrt(6 / in_dim).
        // Works well for ReLU and is a fine default for the others at the
        // tiny depths used here.
        let limit = (6.0 / in_dim as f64).sqrt();
        let w = Matrix::from_fn(in_dim, out_dim, |_, _| rng.random_range(-limit..limit));
        Self {
            w,
            b: Matrix::zeros(1, out_dim),
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: Matrix::zeros(1, out_dim),
            activation,
            input_cache: None,
            output_cache: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass over a batch (`rows = samples`), caching for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut out = x.matmul(&self.w).add_row_broadcast(&self.b);
        out.map_inplace(|z| self.activation.apply(z));
        self.input_cache = Some(x.clone());
        self.output_cache = Some(out.clone());
        out
    }

    /// Forward pass without caching — for inference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut out = x.matmul(&self.w).add_row_broadcast(&self.b);
        out.map_inplace(|z| self.activation.apply(z));
        out
    }

    /// Backward pass: `grad_out` is ∂L/∂(activated output). Accumulates into
    /// `grad_w`/`grad_b` and returns ∂L/∂input.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self.input_cache.as_ref().expect("backward before forward");
        let a = self.output_cache.as_ref().expect("backward before forward");
        // δ = grad_out ⊙ act'(a)
        let delta = Matrix::from_fn(grad_out.rows(), grad_out.cols(), |r, c| {
            grad_out[(r, c)] * self.activation.derivative_from_output(a[(r, c)])
        });
        self.grad_w.axpy(1.0, &x.transpose().matmul(&delta));
        self.grad_b.axpy(1.0, &delta.sum_rows());
        delta.matmul(&self.w.transpose())
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.map_inplace(|_| 0.0);
        self.grad_b.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shapes() {
        let mut layer = Dense::new(4, 3, Activation::Relu, &mut rng());
        let x = Matrix::zeros(5, 4);
        assert_eq!(layer.forward(&x).shape(), (5, 3));
    }

    #[test]
    fn identity_layer_is_affine() {
        let mut layer = Dense::new(2, 1, Activation::Identity, &mut rng());
        layer.w = Matrix::from_vec(2, 1, vec![2.0, -1.0]);
        layer.b = Matrix::row_vector(&[0.5]);
        let x = Matrix::row_vector(&[3.0, 4.0]);
        let y = layer.forward(&x);
        assert!((y[(0, 0)] - (6.0 - 4.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn relu_clamps_negative_preactivations() {
        let mut layer = Dense::new(1, 1, Activation::Relu, &mut rng());
        layer.w = Matrix::from_vec(1, 1, vec![1.0]);
        layer.b = Matrix::row_vector(&[0.0]);
        assert_eq!(layer.forward(&Matrix::row_vector(&[-5.0]))[(0, 0)], 0.0);
        assert_eq!(layer.forward(&Matrix::row_vector(&[5.0]))[(0, 0)], 5.0);
    }

    /// Finite-difference check of the backward pass for every activation.
    #[test]
    fn gradients_match_finite_differences() {
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let mut layer = Dense::new(3, 2, act, &mut rng());
            let x = Matrix::from_vec(2, 3, vec![0.3, -0.7, 1.1, 0.9, 0.2, -0.4]);
            // Scalar loss L = sum(forward(x)); dL/d(out) = ones.
            let out = layer.forward(&x);
            let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
            layer.zero_grad();
            let grad_x = layer.backward(&ones);

            let eps = 1e-6;
            // Check a few weight gradients.
            for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
                let orig = layer.w[(r, c)];
                layer.w[(r, c)] = orig + eps;
                let lp = layer.infer(&x).sum();
                layer.w[(r, c)] = orig - eps;
                let lm = layer.infer(&x).sum();
                layer.w[(r, c)] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = layer.grad_w[(r, c)];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "{act:?} dW[{r},{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            // Check an input gradient.
            let probe = |layer: &Dense, x: &Matrix| layer.infer(x).sum();
            let mut xp = x.clone();
            xp[(0, 1)] += eps;
            let mut xm = x.clone();
            xm[(0, 1)] -= eps;
            let numeric = (probe(&layer, &xp) - probe(&layer, &xm)) / (2.0 * eps);
            assert!(
                (numeric - grad_x[(0, 1)]).abs() < 1e-4,
                "{act:?} dX: numeric {numeric} vs analytic {}",
                grad_x[(0, 1)]
            );
        }
    }

    #[test]
    fn zero_grad_resets_accumulators() {
        let mut layer = Dense::new(2, 2, Activation::Tanh, &mut rng());
        let x = Matrix::filled(1, 2, 1.0);
        let out = layer.forward(&x);
        layer.backward(&Matrix::filled(out.rows(), out.cols(), 1.0));
        assert!(layer.grad_w.frobenius_norm() > 0.0);
        layer.zero_grad();
        assert_eq!(layer.grad_w.frobenius_norm(), 0.0);
        assert_eq!(layer.grad_b.frobenius_norm(), 0.0);
    }
}
