//! Sequential multi-layer perceptron with a mini-batch training loop.

use crate::dense::{Activation, Dense};
use crate::optim::Optimizer;
use rand::seq::SliceRandom;
use rand::Rng;
use schemble_tensor::Matrix;

/// A stack of [`Dense`] layers trained by backpropagation.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP from layer sizes.
    ///
    /// `dims = [in, h1, …, out]`; hidden layers use `hidden_act`, the output
    /// layer uses `out_act` (pass [`Activation::Identity`] for logit-space
    /// losses).
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    pub fn new(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i == dims.len() - 2 { out_act } else { hidden_act };
            layers.push(Dense::new(dims[i], dims[i + 1], act, rng));
        }
        Self { layers }
    }

    /// Number of trainable parameters (for the Fig. 13 overhead analysis).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Estimated memory footprint in bytes (`f64` weights).
    pub fn memory_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f64>()
    }

    /// Multiply–accumulate count of one forward pass for a single sample;
    /// a hardware-independent proxy for predictor latency.
    pub fn flops_per_sample(&self) -> usize {
        self.layers.iter().map(|l| 2 * l.in_dim() * l.out_dim()).sum()
    }

    /// Forward pass caching intermediates for training.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Forward pass without caches — for inference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.infer(&h);
        }
        h
    }

    /// Convenience: inference on a single feature vector.
    pub fn infer_one(&self, features: &[f64]) -> Vec<f64> {
        let out = self.infer(&Matrix::row_vector(features));
        out.as_slice().to_vec()
    }

    /// Backpropagates `grad_out` (∂L/∂network-output) through the stack.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Applies one optimiser step using keys offset by `key_base` (so several
    /// networks can share one optimiser without key collisions), then zeroes
    /// gradients.
    pub fn apply_grads(&mut self, opt: &mut impl Optimizer, key_base: usize) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            opt.step(key_base + 2 * i, &mut layer.w, &layer.grad_w);
            opt.step(key_base + 2 * i + 1, &mut layer.b, &layer.grad_b);
        }
        self.zero_grad();
    }

    /// Mini-batch training against a caller-supplied loss.
    ///
    /// `loss_fn(pred, row_indices)` returns `(loss, ∂loss/∂pred)` for the
    /// rows of the batch (indices refer to the full training set, letting
    /// the callback look up arbitrary label structures). Returns the average
    /// loss of the final epoch.
    pub fn fit(
        &mut self,
        x: &Matrix,
        epochs: usize,
        batch_size: usize,
        opt: &mut impl Optimizer,
        rng: &mut impl Rng,
        mut loss_fn: impl FnMut(&Matrix, &[usize]) -> (f64, Matrix),
    ) -> f64 {
        assert!(batch_size > 0, "batch_size must be positive");
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut last_epoch_loss = 0.0;
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                let xb = Matrix::from_fn(chunk.len(), x.cols(), |r, c| x[(chunk[r], c)]);
                let pred = self.forward(&xb);
                let (loss, grad) = loss_fn(&pred, chunk);
                self.backward(&grad);
                self.apply_grads(opt, 0);
                epoch_loss += loss;
                batches += 1;
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f64;
        }
        last_epoch_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{bce_with_logits, mse};
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let y = [0.0, 1.0, 1.0, 0.0];
        let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.05);
        net.fit(&x, 400, 4, &mut opt, &mut rng, |pred, idx| {
            let target = Matrix::from_fn(idx.len(), 1, |r, _| y[idx[r]]);
            bce_with_logits(pred, &target)
        });
        for (i, &label) in y.iter().enumerate() {
            let logit = net.infer_one(x.row(i))[0];
            let p = 1.0 / (1.0 + (-logit).exp());
            assert!(
                (p - label).abs() < 0.2,
                "xor({:?}) predicted {p:.3}, wanted {label}",
                x.row(i)
            );
        }
    }

    #[test]
    fn learns_linear_regression() {
        let mut rng = StdRng::seed_from_u64(11);
        // y = 2a - b + 0.5
        let n = 200;
        let x = Matrix::from_fn(n, 2, |_, _| rng.random_range(-1.0..1.0));
        let targets: Vec<f64> = (0..n).map(|r| 2.0 * x[(r, 0)] - x[(r, 1)] + 0.5).collect();
        let mut net = Mlp::new(&[2, 1], Activation::Identity, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.05);
        let final_loss = net.fit(&x, 200, 32, &mut opt, &mut rng, |pred, idx| {
            let t = Matrix::from_fn(idx.len(), 1, |r, _| targets[idx[r]]);
            mse(pred, &t)
        });
        assert!(final_loss < 1e-3, "regression failed to converge: {final_loss}");
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_fn(2, 3, |_, _| rng.random_range(-1.0..1.0));
        let a = net.forward(&x);
        let b = net.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn param_count_and_flops() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Mlp::new(&[10, 20, 3], Activation::Relu, Activation::Identity, &mut rng);
        assert_eq!(net.param_count(), 10 * 20 + 20 + 20 * 3 + 3);
        assert_eq!(net.flops_per_sample(), 2 * (10 * 20 + 20 * 3));
        assert_eq!(net.memory_bytes(), net.param_count() * 8);
    }
}
