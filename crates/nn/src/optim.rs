//! First-order optimisers.
//!
//! Optimisers update parameters keyed by a stable slot id so that stateful
//! methods (Adam's moment estimates) can track each tensor across steps
//! without the network owning optimiser state.

use schemble_tensor::Matrix;
use std::collections::HashMap;

/// A parameter-update rule.
pub trait Optimizer {
    /// Applies one update to `param` given its accumulated `grad`. `key`
    /// uniquely identifies the parameter tensor across calls.
    fn step(&mut self, key: usize, param: &mut Matrix, grad: &Matrix);
}

/// Plain stochastic gradient descent with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// L2 penalty coefficient (0 disables).
    pub weight_decay: f64,
}

impl Sgd {
    /// SGD with the given learning rate, no weight decay.
    pub fn new(lr: f64) -> Self {
        Self { lr, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _key: usize, param: &mut Matrix, grad: &Matrix) {
        if self.weight_decay > 0.0 {
            let decayed = param.map(|w| w * self.weight_decay);
            param.axpy(-self.lr, &decayed);
        }
        param.axpy(-self.lr, grad);
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator fuzz.
    pub eps: f64,
    state: HashMap<usize, AdamSlot>,
}

#[derive(Debug, Clone)]
struct AdamSlot {
    m: Matrix,
    v: Matrix,
    t: u64,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, state: HashMap::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, key: usize, param: &mut Matrix, grad: &Matrix) {
        let slot = self.state.entry(key).or_insert_with(|| AdamSlot {
            m: Matrix::zeros(grad.rows(), grad.cols()),
            v: Matrix::zeros(grad.rows(), grad.cols()),
            t: 0,
        });
        assert_eq!(slot.m.shape(), grad.shape(), "optimizer key reused for different shape");
        slot.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        for i in 0..grad.len() {
            let g = grad.as_slice()[i];
            let m = &mut slot.m.as_mut_slice()[i];
            *m = b1 * *m + (1.0 - b1) * g;
            let v = &mut slot.v.as_mut_slice()[i];
            *v = b2 * *v + (1.0 - b2) * g * g;
        }
        let bc1 = 1.0 - b1.powi(slot.t as i32);
        let bc2 = 1.0 - b2.powi(slot.t as i32);
        for i in 0..param.len() {
            let m_hat = slot.m.as_slice()[i] / bc1;
            let v_hat = slot.v.as_slice()[i] / bc2;
            param.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(w) = (w - 3)² with each optimiser; both must converge.
    fn run<O: Optimizer>(mut opt: O, steps: usize) -> f64 {
        let mut w = Matrix::row_vector(&[0.0]);
        for _ in 0..steps {
            let grad = Matrix::row_vector(&[2.0 * (w[(0, 0)] - 3.0)]);
            opt.step(0, &mut w, &grad);
        }
        w[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = run(Sgd::new(0.1), 200);
        assert!((w - 3.0).abs() < 1e-6, "sgd stalled at {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = run(Adam::new(0.1), 600);
        assert!((w - 3.0).abs() < 1e-3, "adam stalled at {w}");
    }

    #[test]
    fn adam_state_is_per_key() {
        let mut opt = Adam::new(0.1);
        let mut w1 = Matrix::row_vector(&[0.0]);
        let mut w2 = Matrix::row_vector(&[0.0, 0.0]);
        // Different shapes under different keys must coexist.
        opt.step(0, &mut w1, &Matrix::row_vector(&[1.0]));
        opt.step(1, &mut w2, &Matrix::row_vector(&[1.0, -1.0]));
        assert!(w1[(0, 0)] < 0.0);
        assert!(w2[(0, 1)] > 0.0);
    }

    #[test]
    #[should_panic(expected = "key reused")]
    fn adam_rejects_shape_change_under_same_key() {
        let mut opt = Adam::new(0.1);
        let mut w1 = Matrix::row_vector(&[0.0]);
        opt.step(0, &mut w1, &Matrix::row_vector(&[1.0]));
        let mut w2 = Matrix::row_vector(&[0.0, 0.0]);
        opt.step(0, &mut w2, &Matrix::row_vector(&[1.0, 1.0]));
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut opt = Sgd { lr: 0.1, weight_decay: 0.5 };
        let mut w = Matrix::row_vector(&[1.0]);
        opt.step(0, &mut w, &Matrix::row_vector(&[0.0]));
        assert!(w[(0, 0)] < 1.0);
    }
}
