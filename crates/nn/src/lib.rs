//! From-scratch neural networks for the Schemble reproduction.
//!
//! The paper trains *lightweight* networks in three places:
//!
//! 1. the **discrepancy-score predictor** (§V-C) — a two-headed network whose
//!    first head predicts the original task output and whose second head
//!    regresses the discrepancy score, trained with the weighted loss of
//!    Eq. 2: `l(label, out₁) + λ·MSE(dis, out₂)`;
//! 2. the **gating network** baseline (§II/§V-C) — same architecture, but
//!    outputs one weight per base model;
//! 3. the **stacking meta-classifier** (§VII) — aggregates base-model outputs.
//!
//! All three are multi-layer perceptrons over modest feature vectors, so this
//! crate implements exactly that: dense layers with pluggable activations,
//! logit-space losses (numerically stable binary/softmax cross-entropy),
//! mean-squared error, SGD and Adam optimisers, and a mini-batch training
//! loop. No autograd graph — backprop is hand-derived per layer, which keeps
//! the implementation small, fast and easy to audit.

pub mod dense;
pub mod loss;
pub mod lstm;
pub mod mlp;
pub mod optim;
pub mod predictor;
pub mod seq_predictor;

pub use dense::{Activation, Dense};
pub use lstm::Lstm;
pub use mlp::Mlp;
pub use optim::{Adam, Optimizer, Sgd};
pub use predictor::{DiscrepancyPredictor, PredictorConfig};
pub use seq_predictor::{SeqPredictorConfig, SequencePredictor};
