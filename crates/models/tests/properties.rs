//! Property-based tests of the generative model substrate.

use proptest::prelude::*;
use schemble_models::{
    zoo, BaseModel, DifficultyDist, ModelSet, Output, SampleGenerator, TaskSpec,
};

proptest! {
    /// Categorical outputs are valid probability vectors for any skill
    /// configuration and sample.
    #[test]
    fn categorical_outputs_are_distributions(
        acc_easy in 0.55f64..0.99,
        spread in 0.0f64..0.4,
        temp in 1.0f64..4.0,
        seed in 0u64..1000,
        sample_id in 0u64..1000,
        classes in 2usize..20,
    ) {
        let acc_hard = (acc_easy - spread).max(0.05);
        let model = BaseModel::classifier("p", acc_easy, acc_hard, 20.0, temp, seed);
        let spec = TaskSpec::Classification { num_classes: classes };
        let gen = SampleGenerator::new(spec, DifficultyDist::Uniform, seed ^ 0xabc);
        let s = gen.sample(sample_id);
        match model.infer(&s, &spec) {
            Output::Probs(p) => {
                prop_assert_eq!(p.len(), classes);
                prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                prop_assert!(p.iter().all(|&x| x >= 0.0));
            }
            Output::Scalar(_) => prop_assert!(false, "wrong output kind"),
        }
    }

    /// Inference is a pure function of (model seed, sample).
    #[test]
    fn inference_is_pure(seed in 0u64..500, sample_id in 0u64..500) {
        let model = BaseModel::classifier("p", 0.9, 0.6, 20.0, 2.0, seed);
        let spec = TaskSpec::Classification { num_classes: 3 };
        let gen = SampleGenerator::new(spec, DifficultyDist::Uniform, 7);
        let s = gen.sample(sample_id);
        prop_assert_eq!(model.infer(&s, &spec), model.infer(&s, &spec));
    }

    /// Subset aggregation of a singleton equals that model's own output
    /// class (weighted average of one vector is itself).
    #[test]
    fn singleton_aggregation_is_identity(sample_id in 0u64..300) {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let s = gen.sample(sample_id);
        for k in 0..ens.m() {
            let direct = ens.models[k].infer(&s, &ens.spec);
            let via_subset = ens.subset_output(&s, ModelSet::singleton(k));
            prop_assert_eq!(direct.predicted_class(), via_subset.predicted_class());
        }
    }

    /// Adding a model to a subset can only move the aggregate toward the
    /// full ensemble or keep it: the full set always reproduces the
    /// ensemble's output exactly.
    #[test]
    fn full_subset_equals_ensemble(sample_id in 0u64..300) {
        let ens = zoo::vehicle_counting(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let s = gen.sample(sample_id);
        let full = ens.subset_output(&s, ens.full_set());
        let reference = ens.ensemble_output(&s);
        prop_assert!((full.value() - reference.value()).abs() < 1e-12);
    }

    /// Difficulty distributions stay inside the unit interval.
    #[test]
    fn difficulty_is_always_in_unit_interval(
        mean in 0.0f64..1.0,
        seed in 0u64..300,
        n in 1usize..50,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for dist in [
            DifficultyDist::Uniform,
            DifficultyDist::Normal { mean, std: 0.03 },
            DifficultyDist::Gamma { mean: mean.max(0.01) },
            DifficultyDist::EasySkewed { exponent: 2.5 },
        ] {
            for _ in 0..n {
                let z = dist.sample(&mut rng);
                prop_assert!((0.0..=1.0).contains(&z), "{:?} emitted {}", dist, z);
            }
        }
    }

    /// ModelSet operations agree with the reference u32-bit semantics.
    #[test]
    fn modelset_bit_semantics(mask in 0u32..256, k in 0usize..8) {
        let set = ModelSet(mask);
        prop_assert_eq!(set.contains(k), (mask >> k) & 1 == 1);
        prop_assert_eq!(set.with(k).0, mask | (1 << k));
        prop_assert_eq!(set.without(k).0, mask & !(1 << k));
        prop_assert_eq!(set.len(), mask.count_ones() as usize);
        prop_assert_eq!(set.iter().count(), set.len());
    }

    /// Retrieval outputs rank the reference item coherently: rank 1 iff
    /// argmax agreement.
    #[test]
    fn rank_one_iff_top1(sample_id in 0u64..200) {
        let ens = zoo::image_retrieval(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let s = gen.sample(sample_id);
        let reference = ens.ensemble_output(&s);
        let single = ens.subset_output(&s, ModelSet::singleton(0));
        let agrees = single.predicted_class() == reference.predicted_class();
        prop_assert_eq!(single.rank_of(reference.predicted_class()) == 1, agrees);
    }
}
