//! Latent-difficulty distributions (paper Exp-3).
//!
//! Exp-3 resamples query difficulty from Normal and Gamma distributions with
//! varying means (σ = 0.03, scale = 1 in the paper) to study how the score
//! distribution affects each baseline. Difficulty is a latent `z ∈ [0, 1]`;
//! samples outside the interval clamp.

use rand::Rng;

/// A distribution over latent difficulty `z ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DifficultyDist {
    /// Uniform on `[0, 1]` — the default workload.
    Uniform,
    /// Beta-like skew toward easy samples: `z = u^k` with `k > 1`. Real
    /// datasets are easy-heavy (Fig. 4a mass near zero); `k ≈ 2–3` matches.
    EasySkewed {
        /// Exponent applied to the uniform draw; larger = easier.
        exponent: f64,
    },
    /// Normal with the paper's σ = 0.03 default, clamped to `[0, 1]`.
    Normal {
        /// Mean difficulty.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Gamma with scale 1 rescaled by `1/10` into `[0,1]` (the paper sweeps
    /// the mean with the scale fixed at 1; dividing by 10 maps the bulk of
    /// the mass into the unit interval), clamped.
    Gamma {
        /// Target mean of the clamped variable (pre-rescale shape = 10·mean).
        mean: f64,
    },
    /// Every sample gets the same difficulty.
    Fixed(f64),
}

impl DifficultyDist {
    /// Draws one difficulty value.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            DifficultyDist::Uniform => rng.random_range(0.0..1.0),
            DifficultyDist::EasySkewed { exponent } => rng.random_range(0.0f64..1.0).powf(exponent),
            DifficultyDist::Normal { mean, std } => {
                (mean + std * standard_normal(rng)).clamp(0.0, 1.0)
            }
            DifficultyDist::Gamma { mean } => {
                let shape = (mean * 10.0).max(0.05);
                (gamma_shape_scale1(rng, shape) / 10.0).clamp(0.0, 1.0)
            }
            DifficultyDist::Fixed(z) => z.clamp(0.0, 1.0),
        }
    }
}

/// Standard normal via Box–Muller (one draw per call; the discarded second
/// variate keeps the generator stateless).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gamma(shape, scale = 1) via Marsaglia–Tsang, with the Johnk boost for
/// shape < 1.
pub fn gamma_shape_scale1(rng: &mut impl Rng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: G(a) = G(a+1) * U^(1/a).
        let g = gamma_shape_scale1(rng, shape + 1.0);
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (max error ≈ 1.5e-7 — ample for copula draws).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::rng::stream_rng;

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = stream_rng(1, "d");
        let d = DifficultyDist::Uniform;
        let mean: f64 = (0..20_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn normal_tracks_mean_and_clamps() {
        let mut rng = stream_rng(2, "d");
        let d = DifficultyDist::Normal { mean: 0.4, std: 0.03 };
        let xs: Vec<f64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.4).abs() < 0.01, "normal mean {mean}");
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn gamma_mean_roughly_matches() {
        let mut rng = stream_rng(3, "d");
        let d = DifficultyDist::Gamma { mean: 0.3 };
        let mean: f64 = (0..20_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.3).abs() < 0.03, "gamma mean {mean}");
    }

    #[test]
    fn easy_skewed_is_easier_than_uniform() {
        let mut rng = stream_rng(4, "d");
        let d = DifficultyDist::EasySkewed { exponent: 2.5 };
        let mean: f64 = (0..20_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 20_000.0;
        assert!(mean < 0.35, "easy-skewed mean {mean} should sit well below 0.5");
    }

    #[test]
    fn fixed_is_constant_and_clamped() {
        let mut rng = stream_rng(5, "d");
        assert_eq!(DifficultyDist::Fixed(0.7).sample(&mut rng), 0.7);
        assert_eq!(DifficultyDist::Fixed(3.0).sample(&mut rng), 1.0);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = stream_rng(6, "d");
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }

    #[test]
    fn gamma_small_shape_is_positive() {
        let mut rng = stream_rng(7, "d");
        for _ in 0..1000 {
            assert!(gamma_shape_scale1(&mut rng, 0.3) > 0.0);
        }
    }
}

/// Standard normal quantile (probit) via the Beasley–Springer–Moro
/// algorithm; |error| < 3e-9 on (1e-10, 1−1e-10). Used to derive per-model
/// logit-noise parameters from target accuracies.
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "quantile domain is (0,1), got {p}");
    const A: [f64; 4] = [2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637];
    const B: [f64; 4] = [-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0])
            / ((((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0)
    } else {
        let r = if y > 0.0 { 1.0 - p } else { p };
        let r = (-r.ln()).ln();
        let mut x = C[0];
        let mut rp = 1.0;
        for c in C.iter().skip(1) {
            rp *= r;
            x += c * rp;
        }
        if y < 0.0 {
            -x
        } else {
            x
        }
    }
}

#[cfg(test)]
mod quantile_tests {
    use super::*;

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-4, "p={p}: cdf(q(p))={}", normal_cdf(x));
        }
    }

    #[test]
    fn quantile_signs() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!(normal_quantile(0.975) > 1.9 && normal_quantile(0.975) < 2.0);
        assert!(normal_quantile(0.025) < -1.9);
    }
}
