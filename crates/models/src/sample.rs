//! Samples (queries' payloads) and their generator.
//!
//! A [`Sample`] carries everything the generative base models need to produce
//! outputs deterministically, plus the feature vector the difficulty
//! predictor / DES / gating baselines observe:
//!
//! * `difficulty` — the latent hardness `z ∈ [0, 1]` (never visible to any
//!   online component; only the generator and oracle baselines see it);
//! * `shared_noise` — a standard-normal draw shared by all base models on
//!   this sample, inducing *correlated* errors through a Gaussian copula;
//! * `features` — a noisy view of the difficulty plus nuisance dimensions.
//!   Difficulty is (noisily) recoverable from features; per-model
//!   idiosyncratic errors are not, which is exactly the structure the paper
//!   argues makes discrepancy prediction learnable while model-preference
//!   learning is not (§V-C, Fig. 5).

use crate::difficulty::{standard_normal, DifficultyDist};
use crate::output::TaskSpec;
use rand::Rng;
use schemble_sim::rng::stream_rng_u64;

/// Ground-truth label of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Label {
    /// Class index (classification / retrieval reference item).
    Class(usize),
    /// Regression target.
    Value(f64),
}

impl Label {
    /// Class index; panics for regression labels.
    pub fn class(&self) -> usize {
        match self {
            Label::Class(c) => *c,
            Label::Value(_) => panic!("class() on regression label"),
        }
    }

    /// Regression value; panics for class labels.
    pub fn value(&self) -> f64 {
        match self {
            Label::Value(v) => *v,
            Label::Class(_) => panic!("value() on class label"),
        }
    }
}

/// One query payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Unique id — also the per-sample RNG stream for model noise.
    pub id: u64,
    /// Latent difficulty `z ∈ [0, 1]`.
    pub difficulty: f64,
    /// Shared standard-normal noise (error-correlation copula input).
    pub shared_noise: f64,
    /// Ground-truth label.
    pub label: Label,
    /// Observable feature vector.
    pub features: Vec<f64>,
}

/// Number of informative feature dimensions (they encode difficulty).
const INFORMATIVE_DIMS: usize = 4;

/// Deterministic sample generator for a task.
#[derive(Debug, Clone)]
pub struct SampleGenerator {
    /// Task specification (drives label/feature shapes).
    pub spec: TaskSpec,
    /// Difficulty distribution.
    pub difficulty: DifficultyDist,
    /// Total feature dimension (informative + nuisance).
    pub feature_dim: usize,
    seed: u64,
}

impl SampleGenerator {
    /// Feature dimension used by all built-in zoos.
    pub const DEFAULT_FEATURE_DIM: usize = 12;

    /// A generator with the default feature layout.
    pub fn new(spec: TaskSpec, difficulty: DifficultyDist, seed: u64) -> Self {
        Self { spec, difficulty, feature_dim: Self::DEFAULT_FEATURE_DIM, seed }
    }

    /// Generates the sample with id `id`. Pure function of `(self, id)` —
    /// repeated calls return identical samples.
    pub fn sample(&self, id: u64) -> Sample {
        let mut rng = stream_rng_u64(self.seed, id);
        self.sample_with_rng(id, &mut rng)
    }

    /// Generates `n` consecutive samples starting from id `start`.
    pub fn batch(&self, start: u64, n: usize) -> Vec<Sample> {
        (0..n as u64).map(|i| self.sample(start + i)).collect()
    }

    fn sample_with_rng(&self, id: u64, rng: &mut impl Rng) -> Sample {
        let z = self.difficulty.sample(rng);
        let shared_noise = standard_normal(rng);
        let label = match self.spec {
            TaskSpec::Classification { num_classes } => {
                Label::Class(rng.random_range(0..num_classes))
            }
            TaskSpec::Retrieval { num_candidates } => {
                Label::Class(rng.random_range(0..num_candidates))
            }
            // Vehicle counts: non-negative, heavier scenes are harder, so the
            // mean count grows with difficulty.
            TaskSpec::Regression { .. } => {
                let mean = 2.0 + 18.0 * z;
                Label::Value((mean + 2.0 * standard_normal(rng)).max(0.0).round())
            }
        };
        let mut features = Vec::with_capacity(self.feature_dim);
        // Informative dims: noisy monotone views of difficulty. The noise
        // bounds how well *any* predictor can rank queries, mirroring the
        // imperfect-but-useful predictor of Fig. 16.
        for k in 0..INFORMATIVE_DIMS.min(self.feature_dim) {
            let noise = 0.08 * standard_normal(rng);
            let view = match k {
                0 => z,
                1 => 1.0 - z,
                2 => (z * std::f64::consts::PI).sin(),
                _ => z * z,
            };
            features.push(view + noise);
        }
        for _ in INFORMATIVE_DIMS..self.feature_dim {
            features.push(rng.random_range(-1.0..1.0));
        }
        Sample { id, difficulty: z, shared_noise, label, features }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_tensor::stats::pearson;

    fn generator() -> SampleGenerator {
        SampleGenerator::new(
            TaskSpec::Classification { num_classes: 2 },
            DifficultyDist::Uniform,
            99,
        )
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = generator();
        assert_eq!(g.sample(5), g.sample(5));
        assert_ne!(g.sample(5), g.sample(6));
    }

    #[test]
    fn batch_ids_are_consecutive() {
        let g = generator();
        let batch = g.batch(10, 5);
        let ids: Vec<u64> = batch.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn features_carry_difficulty_signal() {
        let g = generator();
        let samples = g.batch(0, 2000);
        let zs: Vec<f64> = samples.iter().map(|s| s.difficulty).collect();
        let f0: Vec<f64> = samples.iter().map(|s| s.features[0]).collect();
        let f1: Vec<f64> = samples.iter().map(|s| s.features[1]).collect();
        assert!(pearson(&f0, &zs) > 0.9, "feature 0 should track difficulty");
        assert!(pearson(&f1, &zs) < -0.9, "feature 1 should anti-track difficulty");
    }

    #[test]
    fn nuisance_features_are_uninformative() {
        let g = generator();
        let samples = g.batch(0, 2000);
        let zs: Vec<f64> = samples.iter().map(|s| s.difficulty).collect();
        let f_noise: Vec<f64> = samples.iter().map(|s| s.features[8]).collect();
        assert!(pearson(&f_noise, &zs).abs() < 0.1);
    }

    #[test]
    fn regression_labels_grow_with_difficulty() {
        let g = SampleGenerator::new(
            TaskSpec::Regression { tolerance: 0.5 },
            DifficultyDist::Uniform,
            7,
        );
        let samples = g.batch(0, 2000);
        let zs: Vec<f64> = samples.iter().map(|s| s.difficulty).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.label.value()).collect();
        assert!(pearson(&ys, &zs) > 0.8, "counts should grow with difficulty");
        assert!(ys.iter().all(|&y| y >= 0.0));
    }

    #[test]
    fn class_labels_cover_range() {
        let g = SampleGenerator::new(
            TaskSpec::Classification { num_classes: 4 },
            DifficultyDist::Uniform,
            3,
        );
        let mut seen = [false; 4];
        for s in g.batch(0, 200) {
            seen[s.label.class()] = true;
        }
        assert!(seen.iter().all(|&b| b), "all classes should appear");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let g1 = SampleGenerator::new(
            TaskSpec::Classification { num_classes: 2 },
            DifficultyDist::Uniform,
            1,
        );
        let g2 = SampleGenerator::new(
            TaskSpec::Classification { num_classes: 2 },
            DifficultyDist::Uniform,
            2,
        );
        assert_ne!(g1.sample(0).difficulty, g2.sample(0).difficulty);
    }
}
