//! Generative base models.
//!
//! A [`BaseModel`] stands in for one deployed deep network. Its output on a
//! sample is a **pure function** of `(model seed, sample)` — re-running
//! inference on the same sample yields the same output, as a deterministic
//! network would.
//!
//! The generative story per sample `x` with latent difficulty `z` is a
//! **logit-noise model** (see [`BaseModel::infer`]): the sample carries a
//! shared true-vs-distractor margin `μ(z) + σ_g·g` that shrinks to zero as
//! difficulty grows; each model observes it through skill-scaled parameters
//! `(w_k, b_k)` — solved from its `(acc_easy, acc_hard)` targets — plus
//! idiosyncratic logit noise seeded by `(model seed, sample id)`. The
//! published probabilities are softmax over `miscal_temp × logits`, i.e.
//! deliberately overconfident; temperature scaling recovers calibration.
//!
//! This yields every phenomenon the paper relies on: smooth accuracy decay
//! with difficulty, correlated errors across models (shared margin), stable
//! cross-seed difficulty structure with unstable per-model "preferences"
//! (Fig. 5), and heterogeneous miscalibration that pollutes raw-output
//! agreement metrics. Regression models use additive noise whose scale grows
//! with difficulty, correlated through `error_rho`.

use crate::difficulty::{normal_quantile, standard_normal};
use crate::output::{Output, TaskSpec};
use crate::sample::Sample;
use rand::Rng;
use schemble_sim::rng::stream_rng_u64;
use schemble_sim::LatencyModel;

/// Shared true-vs-distractor margin at difficulty 0.
const MARGIN_EASY: f64 = 4.0;
/// Shared margin at difficulty 1 (zero: the hardest samples are coin flips
/// up to model skill).
const MARGIN_HARD: f64 = 0.0;
/// Scale of the sample-shared margin noise (what correlates model errors).
const SIGMA_G: f64 = 1.05;
/// Scale of each model's idiosyncratic logit noise.
const SIGMA_E: f64 = 1.15;
/// Extra logit gain at difficulty 1 (overconfidence on hard inputs).
const HARD_GAIN: f64 = 6.0;

/// One synthetic base model.
#[derive(Debug, Clone)]
pub struct BaseModel {
    /// Human-readable name ("BERT", "YoloX", …).
    pub name: String,
    /// P(correct) on the easiest samples (z = 0).
    pub acc_easy: f64,
    /// P(correct) on the hardest samples (z = 1).
    pub acc_hard: f64,
    /// Error correlation with the ensemble-shared noise, in `[0, 1)`.
    pub error_rho: f64,
    /// Miscalibration temperature: outputs are sharpened by this factor
    /// (1.0 = perfectly calibrated, > 1 = overconfident).
    pub miscal_temp: f64,
    /// Execution-time profile.
    pub latency: LatencyModel,
    /// Regression noise scale at z = 1 (regression tasks only).
    pub reg_noise: f64,
    /// Constant regression bias (regression tasks only).
    pub reg_bias: f64,
    /// Training seed — drives the idiosyncratic error stream.
    pub seed: u64,
}

impl BaseModel {
    /// A classification model with sensible defaults for the remaining knobs.
    pub fn classifier(
        name: &str,
        acc_easy: f64,
        acc_hard: f64,
        latency_ms: f64,
        miscal_temp: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&acc_easy) && (0.0..=1.0).contains(&acc_hard));
        Self {
            name: name.to_string(),
            acc_easy,
            acc_hard,
            error_rho: 0.8,
            miscal_temp,
            latency: LatencyModel::jittered_millis(latency_ms, 0.05),
            reg_noise: 0.0,
            reg_bias: 0.0,
            seed,
        }
    }

    /// A regression model (vehicle counting).
    pub fn regressor(
        name: &str,
        reg_noise: f64,
        reg_bias: f64,
        latency_ms: f64,
        seed: u64,
    ) -> Self {
        Self {
            name: name.to_string(),
            acc_easy: 1.0,
            acc_hard: 1.0,
            error_rho: 0.8,
            miscal_temp: 1.0,
            latency: LatencyModel::jittered_millis(latency_ms, 0.05),
            reg_noise,
            reg_bias,
            seed,
        }
    }

    /// Probability of a correct prediction at difficulty `z`.
    pub fn p_correct(&self, z: f64) -> f64 {
        (self.acc_easy + (self.acc_hard - self.acc_easy) * z).clamp(0.0, 1.0)
    }

    /// Logit-noise parameters `(w, b, σ_total)` derived from the accuracy
    /// targets (see [`infer_categorical`] below): the model's true-class
    /// logit is `w·(μ(z) + σ_g·g) − b + σ_e·e`, and the derivation solves
    /// `Φ((w·μ(z) − b)/σ_total) = p_correct(z)` at `z ∈ {0, 1}` by a short
    /// fixed-point on `σ_total = √(w²σ_g² + σ_e²)`.
    fn logit_params(&self) -> (f64, f64, f64) {
        let q_easy = normal_quantile(self.acc_easy.clamp(0.02, 0.995));
        let q_hard = normal_quantile(self.acc_hard.clamp(0.02, 0.995));
        let mut s = (SIGMA_G * SIGMA_G + SIGMA_E * SIGMA_E).sqrt();
        let mut w = 0.0;
        let mut b = 0.0;
        for _ in 0..8 {
            w = s * (q_easy - q_hard) / (MARGIN_EASY - MARGIN_HARD);
            b = w * MARGIN_HARD - s * q_hard;
            s = (w * w * SIGMA_G * SIGMA_G + SIGMA_E * SIGMA_E).sqrt();
        }
        (w, b, s)
    }

    /// Mean accuracy over uniform difficulty — used for aggregation weights.
    pub fn mean_accuracy(&self) -> f64 {
        0.5 * (self.acc_easy + self.acc_hard)
    }

    /// Runs inference on `sample`. Deterministic in `(self.seed, sample.id)`.
    pub fn infer(&self, sample: &Sample, spec: &TaskSpec) -> Output {
        // One idiosyncratic stream per (model, sample); the model's `seed`
        // stands for its training seed, so re-seeding the "same architecture"
        // re-rolls all of these.
        let mut rng = stream_rng_u64(self.seed, sample.id);
        match spec {
            TaskSpec::Classification { num_classes } => {
                self.infer_categorical(sample, *num_classes, false, &mut rng)
            }
            TaskSpec::Retrieval { num_candidates } => {
                self.infer_categorical(sample, *num_candidates, true, &mut rng)
            }
            TaskSpec::Regression { .. } => self.infer_regression(sample, &mut rng),
        }
    }

    /// Logit-noise generative model. Each sample carries a latent
    /// *true-vs-distractor margin* `μ(z) + σ_g·g` shared by every model
    /// (`μ` shrinks from [`MARGIN_EASY`] to [`MARGIN_HARD`] as difficulty
    /// grows; `g` is the sample's shared noise). Model `k` observes it
    /// through its own skill lens: `logit_true = w_k·(μ + σ_g·g) − b_k +
    /// σ_e·e_k`, with `(w_k, b_k)` solved from the accuracy targets. The
    /// distractor class sits at logit 0, remaining classes well below.
    /// Softmax over `miscal_temp × logits` yields the (deliberately
    /// overconfident) published output; dividing the logits by the same
    /// temperature — what temperature scaling fits — recovers calibration.
    ///
    /// Consequences: hard samples have small shared margins, so models
    /// disagree *with each other* there (stable across reseeds, the
    /// discrepancy signal), while each model's idiosyncratic flips are
    /// seed-dependent (the unstable "preferences" of Fig. 5).
    fn infer_categorical(
        &self,
        sample: &Sample,
        num_classes: usize,
        retrieval: bool,
        rng: &mut impl Rng,
    ) -> Output {
        let z = sample.difficulty;
        let (w, b, _) = self.logit_params();
        let mu = MARGIN_EASY * (1.0 - z) + MARGIN_HARD * z;
        let e = standard_normal(rng);
        let true_logit = w * (mu + SIGMA_G * sample.shared_noise) - b + SIGMA_E * e;
        let true_class = sample.label.class();
        // The distractor (the plausible wrong answer) is a property of the
        // sample, shared by all models.
        let distractor = if num_classes == 2 {
            1 - true_class
        } else {
            let pick = schemble_sim::rng::mix(sample.id, 0xD157) as usize % (num_classes - 1);
            (true_class + 1 + pick) % num_classes
        };
        let mut logits = vec![0.0f64; num_classes];
        logits[true_class] = true_logit;
        logits[distractor] = 0.0;
        // Retrieval candidate pools carry heavy per-model rank noise: a
        // single backbone lets distractor images float over the relevant one
        // far more often than the two-model average does, which is what
        // makes single-DELG mAP visibly worse than the ensemble's (Fig. 8).
        let (other_mean, other_noise) = if retrieval { (-1.2, 1.6) } else { (-3.0, 0.5) };
        for (c, logit) in logits.iter_mut().enumerate() {
            if c != true_class && c != distractor {
                *logit = other_mean + other_noise * standard_normal(rng);
            }
        }
        // Difficulty-dependent gain: networks grow *more* confident off the
        // easy manifold, not less. Scaling all logits by a common positive
        // factor leaves the argmax (and hence accuracy) untouched but makes
        // disagreements on hard samples loud in divergence space — the
        // behaviour that lets output-distance metrics see difficulty at all.
        let gain = 1.0 + HARD_GAIN * z;
        // Deliberate miscalibration: sharpen every logit by miscal_temp.
        let scale = gain * self.miscal_temp;
        for logit in &mut logits {
            *logit *= scale;
        }
        Output::Probs(schemble_tensor::prob::softmax(&logits))
    }

    fn infer_regression(&self, sample: &Sample, rng: &mut impl Rng) -> Output {
        let z = sample.difficulty;
        let e = standard_normal(rng);
        let err = self.error_rho * sample.shared_noise
            + (1.0 - self.error_rho * self.error_rho).sqrt() * e;
        // Noise grows with difficulty: crowded scenes are harder to count.
        let scale = self.reg_noise * (0.25 + 0.75 * z);
        Output::Scalar(sample.label.value() + self.reg_bias + scale * err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difficulty::DifficultyDist;
    use crate::sample::SampleGenerator;

    fn spec() -> TaskSpec {
        TaskSpec::Classification { num_classes: 2 }
    }

    fn model(seed: u64) -> BaseModel {
        BaseModel::classifier("test", 0.97, 0.60, 20.0, 2.0, seed)
    }

    fn gen() -> SampleGenerator {
        SampleGenerator::new(spec(), DifficultyDist::Uniform, 11)
    }

    #[test]
    fn inference_is_deterministic() {
        let m = model(1);
        let s = gen().sample(42);
        assert_eq!(m.infer(&s, &spec()), m.infer(&s, &spec()));
    }

    #[test]
    fn accuracy_matches_skill_curve() {
        let m = model(1);
        let g = gen();
        let spec = spec();
        // Easy bucket.
        let easy_gen = SampleGenerator::new(spec, DifficultyDist::Fixed(0.05), 13);
        let hard_gen = SampleGenerator::new(spec, DifficultyDist::Fixed(0.95), 13);
        let acc = |g: &SampleGenerator| {
            let n = 4000;
            let correct = g
                .batch(0, n)
                .iter()
                .filter(|s| m.infer(s, &spec).predicted_class() == s.label.class())
                .count();
            correct as f64 / n as f64
        };
        let easy_acc = acc(&easy_gen);
        let hard_acc = acc(&hard_gen);
        assert!((easy_acc - m.p_correct(0.05)).abs() < 0.03, "easy acc {easy_acc}");
        assert!((hard_acc - m.p_correct(0.95)).abs() < 0.03, "hard acc {hard_acc}");
        let _ = g;
    }

    #[test]
    fn errors_are_correlated_across_models() {
        // Two distinct models share the sample's shared_noise; their error
        // indicator correlation must clearly exceed the independent case.
        let m1 = model(1);
        let m2 = model(2);
        let spec = spec();
        let g = SampleGenerator::new(spec, DifficultyDist::Fixed(0.6), 17);
        let n = 12000;
        let mut both = 0usize;
        let mut e1 = 0usize;
        let mut e2 = 0usize;
        for s in g.batch(0, n) {
            let w1 = m1.infer(&s, &spec).predicted_class() != s.label.class();
            let w2 = m2.infer(&s, &spec).predicted_class() != s.label.class();
            both += (w1 && w2) as usize;
            e1 += w1 as usize;
            e2 += w2 as usize;
        }
        let p1 = e1 as f64 / n as f64;
        let p2 = e2 as f64 / n as f64;
        let joint = both as f64 / n as f64;
        // The effect size depends on the RNG stream behind the sample
        // generator; 1.25x leaves a clear gap to the independent case
        // (ratio ~1.0) without demanding a particular draw.
        assert!(
            joint > 1.25 * p1 * p2,
            "errors should be positively correlated: joint {joint:.4} vs independent {:.4}",
            p1 * p2
        );
    }

    #[test]
    fn different_seeds_have_unrelated_idiosyncrasies() {
        // Same architecture, different seed: per-sample correctness patterns
        // must differ on a noticeable fraction of samples.
        let m1 = model(100);
        let m2 = model(200);
        let spec = spec();
        let g = SampleGenerator::new(spec, DifficultyDist::Fixed(0.7), 19);
        let n = 3000;
        let disagree = g
            .batch(0, n)
            .iter()
            .filter(|s| {
                m1.infer(s, &spec).predicted_class() != m2.infer(s, &spec).predicted_class()
            })
            .count();
        assert!(
            disagree as f64 / n as f64 > 0.08,
            "re-seeded twins should disagree on some samples"
        );
    }

    #[test]
    fn miscalibration_sharpens_outputs() {
        let sharp = model(1); // miscal_temp = 2.0
        let calibrated = BaseModel { miscal_temp: 1.0, ..model(1) };
        let spec = spec();
        let s = gen().sample(3);
        let p_sharp = match sharp.infer(&s, &spec) {
            Output::Probs(p) => p.iter().cloned().fold(0.0, f64::max),
            _ => unreachable!(),
        };
        let p_cal = match calibrated.infer(&s, &spec) {
            Output::Probs(p) => p.iter().cloned().fold(0.0, f64::max),
            _ => unreachable!(),
        };
        assert!(p_sharp > p_cal, "miscalibrated model should be more confident");
    }

    #[test]
    fn regression_noise_grows_with_difficulty() {
        let m = BaseModel::regressor("det", 3.0, 0.2, 25.0, 5);
        let spec = TaskSpec::Regression { tolerance: 0.5 };
        let err_at = |z: f64, seed: u64| {
            let g = SampleGenerator::new(spec, DifficultyDist::Fixed(z), seed);
            let n = 3000;
            g.batch(0, n)
                .iter()
                .map(|s| (m.infer(s, &spec).value() - s.label.value()).abs())
                .sum::<f64>()
                / n as f64
        };
        assert!(err_at(0.9, 23) > 1.8 * err_at(0.1, 29));
    }

    #[test]
    fn retrieval_spec_behaves_like_classification() {
        let m = model(4);
        let spec = TaskSpec::Retrieval { num_candidates: 20 };
        let g = SampleGenerator::new(spec, DifficultyDist::Fixed(0.1), 31);
        let s = g.sample(0);
        let out = m.infer(&s, &spec);
        match &out {
            Output::Probs(p) => {
                assert_eq!(p.len(), 20);
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            }
            _ => panic!("retrieval must emit probabilities"),
        }
    }
}
