//! Synthetic deep base models, ensembles and aggregation modules.
//!
//! The paper evaluates Schemble with real deep ensembles (BERT/RoBERTa/BiLSTM
//! for text matching, EfficientDet/YOLOv5/YOLOX for vehicle counting, two
//! DELG variants for image retrieval). This crate substitutes those with a
//! **generative model of ensemble behaviour** — every downstream component
//! (discrepancy score, accuracy profiling, DES/gating baselines, schedulers)
//! consumes only base-model *outputs*, so a generator controlling the joint
//! output distribution preserves the phenomena the paper measures:
//!
//! * each [`base::BaseModel`] has a *skill curve* `p(correct | difficulty z)`
//!   that degrades with the sample's latent difficulty;
//! * model errors are **correlated** through a Gaussian copula over a shared
//!   per-sample noise term, reproducing the redundancy structure of §I
//!   (most samples solvable by any one model, few needing all);
//! * each model also has **idiosyncratic, seed-dependent noise**, making
//!   per-model "preferences" unstable across seeds while the discrepancy
//!   score stays stable (Fig. 5);
//! * classification outputs are deliberately **miscalibrated** (sharpened by
//!   a per-model temperature) so temperature scaling has real work to do;
//! * each model carries a latency profile matching the paper's relative
//!   speeds (e.g. BiLSTM ≪ RoBERTa ≲ BERT).
//!
//! [`zoo`] builds the three task ensembles plus the CIFAR100-like six-model
//! zoo used by the Fig. 5 / Fig. 20a experiments.

pub mod aggregate;
pub mod base;
pub mod difficulty;
pub mod ensemble;
pub mod modelset;
pub mod output;
pub mod sample;
pub mod zoo;

pub use aggregate::Aggregator;
pub use base::BaseModel;
pub use difficulty::DifficultyDist;
pub use ensemble::Ensemble;
pub use modelset::ModelSet;
pub use output::{Output, TaskSpec};
pub use sample::{Label, Sample, SampleGenerator};
