//! Pre-configured ensembles matching the paper's three applications plus the
//! CIFAR100-like zoo of the Fig. 5 / Fig. 20a analyses.
//!
//! Skill and latency parameters are chosen to match the *relative* shape
//! reported in the paper (Fig. 1b and §VIII): BiLSTM is much faster and
//! noticeably weaker than RoBERTa/BERT; the detectors are mid-latency
//! regressors; the two DELG variants are slow and close in accuracy; the
//! CIFAR architectures span VGG16 (weakest) to ResNeXt50 (strongest).

use crate::base::BaseModel;
use crate::ensemble::Ensemble;
use crate::output::TaskSpec;
use schemble_sim::rng::mix;

/// Text matching (intelligent Q&A): BiLSTM + RoBERTa + BERT, binary output.
///
/// `seed` re-rolls every model's training seed (used by the Fig. 5-style
/// stability analysis).
pub fn text_matching(seed: u64) -> Ensemble {
    let spec = TaskSpec::Classification { num_classes: 2 };
    Ensemble::weighted_average(
        vec![
            BaseModel::classifier("BiLSTM", 0.905, 0.520, 18.0, 3.4, mix(seed, 0)),
            BaseModel::classifier("RoBERTa", 0.975, 0.700, 42.0, 2.0, mix(seed, 1)),
            BaseModel::classifier("BERT", 0.980, 0.730, 48.0, 1.4, mix(seed, 2)),
        ],
        spec,
    )
}

/// Vehicle counting on video frames: EfficientDet-0 + YOLOv5l6 + YOLOX,
/// regression with exact-count tolerance 1.0.
pub fn vehicle_counting(seed: u64) -> Ensemble {
    let spec = TaskSpec::Regression { tolerance: 1.0 };
    Ensemble::weighted_average(
        vec![
            BaseModel::regressor("EfficientDet-0", 2.8, 0.5, 30.0, mix(seed, 10)),
            BaseModel::regressor("YOLOv5l6", 2.3, -0.4, 24.0, mix(seed, 11)),
            BaseModel::regressor("YOLOX", 2.0, 0.1, 34.0, mix(seed, 12)),
        ],
        spec,
    )
}

/// Image retrieval over a 20-candidate pool: two DELG variants
/// (ResNet-50 and ResNet-101 backbones).
pub fn image_retrieval(seed: u64) -> Ensemble {
    let spec = TaskSpec::Retrieval { num_candidates: 20 };
    Ensemble::weighted_average(
        vec![
            BaseModel::classifier("DELG-R50", 0.955, 0.640, 55.0, 2.8, mix(seed, 20)),
            BaseModel::classifier("DELG-R101", 0.975, 0.710, 85.0, 1.4, mix(seed, 21)),
        ],
        spec,
    )
}

/// The six CIFAR100-like architectures of Fig. 5, in the paper's order:
/// VGG16, ResNet18, ResNet101, DenseNet121, InceptionV3, ResNeXt50.
pub const CIFAR_ARCHS: [&str; 6] =
    ["VGG16", "ResNet18", "ResNet101", "DenseNet121", "InceptionV3", "ResNeXt50"];

/// One CIFAR100-like model: architecture `arch` (0..6) trained with `seed`.
/// The architecture fixes the skill curve; the seed fixes the idiosyncratic
/// per-sample noise — re-seeding reproduces the paper's "same architecture,
/// different random seed" setting.
pub fn cifar_model(arch: usize, seed: u64) -> BaseModel {
    assert!(arch < CIFAR_ARCHS.len(), "unknown CIFAR architecture {arch}");
    // (acc_easy, acc_hard, latency_ms, miscal_temp) per architecture.
    let params = [
        (0.920, 0.300, 6.0, 2.8),  // VGG16
        (0.945, 0.360, 5.0, 2.2),  // ResNet18
        (0.965, 0.430, 14.0, 2.0), // ResNet101
        (0.960, 0.420, 11.0, 1.9), // DenseNet121
        (0.955, 0.400, 12.0, 2.4), // InceptionV3
        (0.970, 0.450, 10.0, 2.1), // ResNeXt50
    ];
    let (easy, hard, lat, temp) = params[arch];
    BaseModel::classifier(CIFAR_ARCHS[arch], easy, hard, lat, temp, mix(seed, 30 + arch as u64))
}

/// A CIFAR100-like ensemble of the first `size` architectures (Fig. 20a
/// sweeps the ensemble size).
pub fn cifar_zoo(size: usize, seed: u64) -> Ensemble {
    assert!((1..=CIFAR_ARCHS.len()).contains(&size), "cifar zoo size must be 1..=6");
    let spec = TaskSpec::Classification { num_classes: 100 };
    Ensemble::weighted_average((0..size).map(|a| cifar_model(a, seed)).collect(), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::SimDuration;

    #[test]
    fn text_matching_shape() {
        let ens = text_matching(1);
        assert_eq!(ens.m(), 3);
        assert_eq!(ens.models[0].name, "BiLSTM");
        // BiLSTM must be much faster than BERT (Fig. 1b).
        assert!(
            ens.models[0].latency.planned().as_micros() * 2
                < ens.models[2].latency.planned().as_micros()
        );
        assert_eq!(ens.slowest_planned_latency(), SimDuration::from_millis(48));
    }

    #[test]
    fn vehicle_counting_is_regression() {
        let ens = vehicle_counting(1);
        assert_eq!(ens.m(), 3);
        assert!(matches!(ens.spec, TaskSpec::Regression { .. }));
    }

    #[test]
    fn image_retrieval_has_two_models() {
        let ens = image_retrieval(1);
        assert_eq!(ens.m(), 2);
        assert!(matches!(ens.spec, TaskSpec::Retrieval { num_candidates: 20 }));
    }

    #[test]
    fn cifar_zoo_sizes() {
        for size in 1..=6 {
            let ens = cifar_zoo(size, 9);
            assert_eq!(ens.m(), size);
        }
    }

    #[test]
    fn cifar_reseeding_changes_idiosyncrasy_only() {
        let a = cifar_model(0, 1);
        let b = cifar_model(0, 2);
        assert_eq!(a.acc_easy, b.acc_easy);
        assert_eq!(a.name, b.name);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn zoo_seeds_are_distinct_across_models() {
        let ens = text_matching(5);
        let seeds: Vec<u64> = ens.models.iter().map(|m| m.seed).collect();
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
    }

    #[test]
    #[should_panic(expected = "unknown CIFAR architecture")]
    fn cifar_arch_bounds_checked() {
        let _ = cifar_model(6, 1);
    }
}
