//! Compact model subsets.
//!
//! The scheduler's decision variable is "which subset of base models runs
//! this query" — the indicator vector `s ∈ {0,1}^m` of the paper. Deep
//! ensembles are small (m ≤ ~8 here), so a bitmask is the natural encoding.

/// A subset of the ensemble's base models, encoded as a bitmask
/// (bit *k* set ⇔ model *k* included).
///
/// # Examples
///
/// ```
/// use schemble_models::ModelSet;
///
/// let set = ModelSet::from_indices(&[0, 2]);
/// assert!(set.contains(2) && !set.contains(1));
/// assert!(set.is_subset_of(ModelSet::full(3)));
/// assert_eq!(ModelSet::all_nonempty(3).count(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ModelSet(pub u32);

impl ModelSet {
    /// The empty set (no models — a rejected query).
    pub const EMPTY: ModelSet = ModelSet(0);

    /// The full ensemble of `m` models.
    ///
    /// # Panics
    /// Panics if `m > 32`.
    pub fn full(m: usize) -> ModelSet {
        assert!(m <= 32, "ModelSet supports at most 32 models");
        if m == 32 {
            ModelSet(u32::MAX)
        } else {
            ModelSet((1u32 << m) - 1)
        }
    }

    /// The singleton set `{k}`.
    pub fn singleton(k: usize) -> ModelSet {
        assert!(k < 32);
        ModelSet(1 << k)
    }

    /// Builds a set from member indices.
    pub fn from_indices(indices: &[usize]) -> ModelSet {
        let mut s = ModelSet::EMPTY;
        for &k in indices {
            s = s.with(k);
        }
        s
    }

    /// This set plus model `k`.
    pub fn with(self, k: usize) -> ModelSet {
        assert!(k < 32);
        ModelSet(self.0 | (1 << k))
    }

    /// This set minus model `k`.
    pub fn without(self, k: usize) -> ModelSet {
        ModelSet(self.0 & !(1 << k))
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, k: usize) -> bool {
        k < 32 && (self.0 >> k) & 1 == 1
    }

    /// Number of members.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True for the empty set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(self, other: ModelSet) -> bool {
        self.0 & other.0 == self.0
    }

    /// Iterates over member indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..32u32).filter(move |&k| (self.0 >> k) & 1 == 1).map(|k| k as usize)
    }

    /// All non-empty subsets of an `m`-model ensemble (2^m − 1 of them).
    pub fn all_nonempty(m: usize) -> impl Iterator<Item = ModelSet> {
        assert!(m <= 16, "enumerating subsets of more than 16 models is a bug");
        (1u32..(1u32 << m)).map(ModelSet)
    }

    /// All subsets including the empty one.
    pub fn all(m: usize) -> impl Iterator<Item = ModelSet> {
        assert!(m <= 16, "enumerating subsets of more than 16 models is a bug");
        (0u32..(1u32 << m)).map(ModelSet)
    }
}

impl std::fmt::Display for ModelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for k in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{k}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = ModelSet::from_indices(&[0, 2]);
        assert!(s.contains(0) && !s.contains(1) && s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(ModelSet::full(3).0, 0b111);
        assert!(ModelSet::EMPTY.is_empty());
        assert_eq!(ModelSet::full(3).len(), 3);
    }

    #[test]
    fn with_without_roundtrip() {
        let s = ModelSet::singleton(1).with(3);
        assert_eq!(s.without(3), ModelSet::singleton(1));
        assert_eq!(s.without(5), s, "removing an absent member is a no-op");
    }

    #[test]
    fn subset_relation() {
        let small = ModelSet::from_indices(&[1]);
        let big = ModelSet::from_indices(&[0, 1, 2]);
        assert!(small.is_subset_of(big));
        assert!(!big.is_subset_of(small));
        assert!(small.is_subset_of(small));
        assert!(ModelSet::EMPTY.is_subset_of(small));
    }

    #[test]
    fn enumeration_counts() {
        assert_eq!(ModelSet::all_nonempty(3).count(), 7);
        assert_eq!(ModelSet::all(3).count(), 8);
        // Every enumerated subset is within the ensemble.
        for s in ModelSet::all_nonempty(3) {
            assert!(s.is_subset_of(ModelSet::full(3)));
        }
    }

    #[test]
    fn display_formats_members() {
        assert_eq!(ModelSet::from_indices(&[0, 2]).to_string(), "{0,2}");
        assert_eq!(ModelSet::EMPTY.to_string(), "{}");
    }
}
