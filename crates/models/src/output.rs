//! Model outputs, task specifications and output-space distances.

use schemble_tensor::dist::{euclidean, js_divergence, symmetric_kl};
use schemble_tensor::prob::{argmax, rescale_probs};

/// What a task's models emit and how correctness is judged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskSpec {
    /// Classification over `num_classes` classes; correctness = argmax match.
    Classification {
        /// Number of classes.
        num_classes: usize,
    },
    /// Regression; a prediction within `tolerance` of the reference counts
    /// as correct (vehicle counts compare after rounding, so 0.5 is exact).
    Regression {
        /// Absolute tolerance for correctness.
        tolerance: f64,
    },
    /// Retrieval scored over a candidate set: models emit a relevance
    /// distribution over `num_candidates`; correctness = top-1 match, and
    /// the mAP metric uses the rank of the reference item.
    Retrieval {
        /// Size of the candidate set.
        num_candidates: usize,
    },
}

impl TaskSpec {
    /// Output vector dimension under this spec.
    pub fn output_dim(&self) -> usize {
        match *self {
            TaskSpec::Classification { num_classes } => num_classes,
            TaskSpec::Regression { .. } => 1,
            TaskSpec::Retrieval { num_candidates } => num_candidates,
        }
    }

    /// Number of classes, if categorical.
    pub fn num_classes(&self) -> Option<usize> {
        match *self {
            TaskSpec::Classification { num_classes } => Some(num_classes),
            TaskSpec::Retrieval { num_candidates } => Some(num_candidates),
            TaskSpec::Regression { .. } => None,
        }
    }

    /// True for categorical (probability-vector) outputs.
    pub fn is_categorical(&self) -> bool {
        !matches!(self, TaskSpec::Regression { .. })
    }
}

/// One model's (or the ensemble's) output on one sample.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Probability vector over classes/candidates.
    Probs(Vec<f64>),
    /// Scalar regression value.
    Scalar(f64),
}

impl Output {
    /// Flattens to a plain vector — the stacking meta-classifier and KNN
    /// filler both consume raw vectors.
    pub fn as_vec(&self) -> Vec<f64> {
        match self {
            Output::Probs(p) => p.clone(),
            Output::Scalar(v) => vec![*v],
        }
    }

    /// Predicted class for categorical outputs.
    ///
    /// # Panics
    /// Panics on scalar outputs.
    pub fn predicted_class(&self) -> usize {
        match self {
            Output::Probs(p) => argmax(p),
            Output::Scalar(_) => panic!("predicted_class on scalar output"),
        }
    }

    /// Scalar value.
    ///
    /// # Panics
    /// Panics on categorical outputs.
    pub fn value(&self) -> f64 {
        match self {
            Output::Scalar(v) => *v,
            Output::Probs(_) => panic!("value on categorical output"),
        }
    }

    /// Applies temperature scaling (categorical outputs only; scalars pass
    /// through unchanged — regression calibration is not needed by Eq. 1).
    pub fn calibrated(&self, temperature: f64) -> Output {
        match self {
            Output::Probs(p) => Output::Probs(rescale_probs(p, temperature)),
            Output::Scalar(v) => Output::Scalar(*v),
        }
    }

    /// Distance of Eq. 1: JS divergence for categorical outputs, Euclidean
    /// for scalars.
    ///
    /// # Panics
    /// Panics if the two outputs have different kinds.
    pub fn distance(&self, other: &Output) -> f64 {
        match (self, other) {
            (Output::Probs(p), Output::Probs(q)) => js_divergence(p, q),
            (Output::Scalar(a), Output::Scalar(b)) => euclidean(&[*a], &[*b]),
            _ => panic!("distance between mismatched output kinds"),
        }
    }

    /// Symmetric-KL distance used by the ensemble-agreement baseline
    /// (Euclidean for scalars, as agreement has no categorical structure
    /// there).
    pub fn agreement_distance(&self, other: &Output) -> f64 {
        match (self, other) {
            (Output::Probs(p), Output::Probs(q)) => symmetric_kl(p, q),
            (Output::Scalar(a), Output::Scalar(b)) => euclidean(&[*a], &[*b]),
            _ => panic!("distance between mismatched output kinds"),
        }
    }

    /// Whether this output "agrees with" a reference output under `spec` —
    /// the correctness notion used throughout the evaluation (the reference
    /// is usually the full ensemble's output, per §VIII: "we refer to results
    /// from the original deep ensemble as the ground truth").
    pub fn agrees_with(&self, reference: &Output, spec: &TaskSpec) -> bool {
        match (spec, self, reference) {
            (TaskSpec::Regression { tolerance }, Output::Scalar(a), Output::Scalar(b)) => {
                (a - b).abs() <= *tolerance
            }
            (_, Output::Probs(_), Output::Probs(_)) => {
                self.predicted_class() == reference.predicted_class()
            }
            _ => panic!("output kind does not match task spec"),
        }
    }

    /// Rank (1-based) of `class` in this categorical output; used by the
    /// retrieval mAP metric (AP of a single relevant item = 1/rank).
    ///
    /// # Panics
    /// Panics on scalar outputs or out-of-range class.
    pub fn rank_of(&self, class: usize) -> usize {
        match self {
            Output::Probs(p) => {
                assert!(class < p.len(), "class out of range");
                1 + p.iter().filter(|&&x| x > p[class]).count()
            }
            Output::Scalar(_) => panic!("rank_of on scalar output"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_kinds() {
        let a = Output::Probs(vec![0.9, 0.1]);
        let b = Output::Probs(vec![0.1, 0.9]);
        assert!(a.distance(&b) > 0.0);
        assert_eq!(a.distance(&a), 0.0);
        let s = Output::Scalar(3.0);
        let t = Output::Scalar(5.5);
        assert!((s.distance(&t) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn agreement_under_specs() {
        let spec = TaskSpec::Classification { num_classes: 2 };
        let a = Output::Probs(vec![0.6, 0.4]);
        let b = Output::Probs(vec![0.9, 0.1]);
        let c = Output::Probs(vec![0.2, 0.8]);
        assert!(a.agrees_with(&b, &spec));
        assert!(!a.agrees_with(&c, &spec));

        let reg = TaskSpec::Regression { tolerance: 0.5 };
        assert!(Output::Scalar(3.2).agrees_with(&Output::Scalar(3.0), &reg));
        assert!(!Output::Scalar(4.0).agrees_with(&Output::Scalar(3.0), &reg));
    }

    #[test]
    fn rank_of_orders_by_probability() {
        let o = Output::Probs(vec![0.1, 0.5, 0.4]);
        assert_eq!(o.rank_of(1), 1);
        assert_eq!(o.rank_of(2), 2);
        assert_eq!(o.rank_of(0), 3);
    }

    #[test]
    fn calibration_softens_categorical() {
        let o = Output::Probs(vec![0.95, 0.05]);
        if let Output::Probs(p) = o.calibrated(3.0) {
            assert!(p[0] < 0.95 && p[0] > 0.5);
        } else {
            panic!("calibrated changed kind");
        }
        assert_eq!(Output::Scalar(2.0).calibrated(3.0), Output::Scalar(2.0));
    }

    #[test]
    fn spec_dims() {
        assert_eq!(TaskSpec::Classification { num_classes: 5 }.output_dim(), 5);
        assert_eq!(TaskSpec::Regression { tolerance: 0.5 }.output_dim(), 1);
        assert_eq!(TaskSpec::Retrieval { num_candidates: 20 }.output_dim(), 20);
        assert!(TaskSpec::Retrieval { num_candidates: 20 }.is_categorical());
        assert!(!TaskSpec::Regression { tolerance: 1.0 }.is_categorical());
    }

    #[test]
    #[should_panic(expected = "mismatched output kinds")]
    fn mixed_distance_panics() {
        let _ = Output::Probs(vec![1.0]).distance(&Output::Scalar(1.0));
    }
}
