//! Deep ensembles: base models + aggregation module.

use crate::aggregate::Aggregator;
use crate::base::BaseModel;
use crate::modelset::ModelSet;
use crate::output::{Output, TaskSpec};
use crate::sample::Sample;
use schemble_sim::{LatencyModel, SimDuration};

/// A deep ensemble: `m` base models, a task spec and an aggregation module.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// The base models, in deployment order.
    pub models: Vec<BaseModel>,
    /// Task specification.
    pub spec: TaskSpec,
    /// Aggregation module.
    pub aggregator: Aggregator,
}

impl Ensemble {
    /// Builds an ensemble with accuracy-proportional weighted averaging —
    /// the aggregator used by the vehicle-counting and image-retrieval tasks.
    pub fn weighted_average(models: Vec<BaseModel>, spec: TaskSpec) -> Self {
        assert!(!models.is_empty(), "ensemble needs at least one model");
        let weights: Vec<f64> = models.iter().map(BaseModel::mean_accuracy).collect();
        Self { models, spec, aggregator: Aggregator::WeightedAverage { weights } }
    }

    /// Number of base models.
    pub fn m(&self) -> usize {
        self.models.len()
    }

    /// The full model set.
    pub fn full_set(&self) -> ModelSet {
        ModelSet::full(self.m())
    }

    /// Runs every base model on `sample`.
    pub fn infer_all(&self, sample: &Sample) -> Vec<Output> {
        self.models.iter().map(|bm| bm.infer(sample, &self.spec)).collect()
    }

    /// Runs only the models in `set`, returning `(model index, output)` pairs.
    ///
    /// # Panics
    /// Panics on the empty set.
    pub fn infer_subset(&self, sample: &Sample, set: ModelSet) -> Vec<(usize, Output)> {
        assert!(!set.is_empty(), "cannot infer with the empty model set");
        set.iter().map(|k| (k, self.models[k].infer(sample, &self.spec))).collect()
    }

    /// Aggregates already-computed outputs of the present models.
    pub fn aggregate(&self, present: &[(usize, &Output)]) -> Output {
        self.aggregator.aggregate(present, &self.spec, self.m())
    }

    /// The full ensemble's output on `sample` — the evaluation ground truth
    /// of §VIII.
    pub fn ensemble_output(&self, sample: &Sample) -> Output {
        let outputs = self.infer_all(sample);
        let present: Vec<(usize, &Output)> = outputs.iter().enumerate().collect();
        self.aggregate(&present)
    }

    /// Output of the sub-ensemble `set` on `sample`, aggregated with the
    /// missing models excluded (voting) / reweighted (averaging). Stacking
    /// aggregators cannot aggregate partial sets — use the KNN filler in
    /// `schemble-core` for those.
    pub fn subset_output(&self, sample: &Sample, set: ModelSet) -> Output {
        let outputs = self.infer_subset(sample, set);
        let present: Vec<(usize, &Output)> = outputs.iter().map(|(k, o)| (*k, o)).collect();
        self.aggregate(&present)
    }

    /// Latency profile of model `k`.
    pub fn latency(&self, k: usize) -> LatencyModel {
        self.models[k].latency
    }

    /// Planned (nominal) execution times of each model — the `{T_k}` input
    /// of Alg. 1.
    pub fn planned_latencies(&self) -> Vec<SimDuration> {
        self.models.iter().map(|bm| bm.latency.planned()).collect()
    }

    /// The slowest model's nominal latency — the floor for feasible
    /// deadlines ("all deadlines assigned are larger than the time delay of
    /// the slowest model", §VIII).
    pub fn slowest_planned_latency(&self) -> SimDuration {
        self.planned_latencies().into_iter().max().unwrap_or(SimDuration::ZERO)
    }

    /// Planned makespan of running `set` in parallel (its slowest member).
    pub fn set_planned_latency(&self, set: ModelSet) -> SimDuration {
        set.iter().map(|k| self.models[k].latency.planned()).max().unwrap_or(SimDuration::ZERO)
    }

    /// Sum of planned execution times of `set` — the *cumulative runtime*
    /// notion used by the offline budget experiment (Fig. 16).
    pub fn set_cumulative_latency(&self, set: ModelSet) -> SimDuration {
        set.iter().fold(SimDuration::ZERO, |acc, k| acc + self.models[k].latency.planned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difficulty::DifficultyDist;
    use crate::sample::SampleGenerator;

    fn small_ensemble() -> Ensemble {
        Ensemble::weighted_average(
            vec![
                BaseModel::classifier("weak", 0.92, 0.55, 18.0, 1.5, 1),
                BaseModel::classifier("mid", 0.96, 0.68, 42.0, 2.0, 2),
                BaseModel::classifier("strong", 0.975, 0.72, 48.0, 2.3, 3),
            ],
            TaskSpec::Classification { num_classes: 2 },
        )
    }

    fn gen() -> SampleGenerator {
        SampleGenerator::new(
            TaskSpec::Classification { num_classes: 2 },
            DifficultyDist::Uniform,
            77,
        )
    }

    #[test]
    fn ensemble_beats_best_base_model() {
        let ens = small_ensemble();
        let g = gen();
        let n = 6000;
        let samples = g.batch(0, n);
        let mut base_correct = vec![0usize; ens.m()];
        let mut ens_correct = 0usize;
        for s in &samples {
            let outs = ens.infer_all(s);
            for (k, o) in outs.iter().enumerate() {
                if o.predicted_class() == s.label.class() {
                    base_correct[k] += 1;
                }
            }
            let present: Vec<(usize, &Output)> = outs.iter().enumerate().collect();
            if ens.aggregate(&present).predicted_class() == s.label.class() {
                ens_correct += 1;
            }
        }
        let best_base = base_correct.iter().max().copied().unwrap() as f64 / n as f64;
        let ens_acc = ens_correct as f64 / n as f64;
        assert!(
            ens_acc > best_base + 0.005,
            "ensemble {ens_acc:.4} should beat best base {best_base:.4}"
        );
    }

    #[test]
    fn redundancy_structure_matches_paper() {
        // §I: ~78% of samples are solved (w.r.t. the ensemble output) by
        // *every single* base model alone; only a small fraction require the
        // full ensemble. Check the shape: most samples solvable by any one
        // model, few needing all three.
        let ens = small_ensemble();
        let g = gen();
        let n = 5000;
        let mut any_single = 0usize;
        let mut need_all = 0usize;
        for s in g.batch(0, n) {
            let reference = ens.ensemble_output(&s);
            let solo_ok: Vec<bool> = (0..ens.m())
                .map(|k| {
                    ens.subset_output(&s, ModelSet::singleton(k)).agrees_with(&reference, &ens.spec)
                })
                .collect();
            if solo_ok.iter().all(|&b| b) {
                any_single += 1;
            }
            // "Needs all" ≈ no proper subset matches the ensemble.
            let any_pair_ok = ModelSet::all_nonempty(ens.m())
                .filter(|set| set.len() == 2)
                .any(|set| ens.subset_output(&s, set).agrees_with(&reference, &ens.spec));
            if !solo_ok.iter().any(|&b| b) && !any_pair_ok {
                need_all += 1;
            }
        }
        let frac_any = any_single as f64 / n as f64;
        let frac_all = need_all as f64 / n as f64;
        assert!(frac_any > 0.6, "fraction solvable by every single model too low: {frac_any:.3}");
        assert!(frac_all < 0.15, "fraction needing all models too high: {frac_all:.3}");
    }

    #[test]
    fn subset_output_of_full_set_equals_ensemble_output() {
        let ens = small_ensemble();
        let s = gen().sample(12);
        assert_eq!(ens.subset_output(&s, ens.full_set()), ens.ensemble_output(&s));
    }

    #[test]
    fn latency_helpers() {
        let ens = small_ensemble();
        assert_eq!(ens.slowest_planned_latency(), SimDuration::from_millis(48));
        assert_eq!(
            ens.set_planned_latency(ModelSet::from_indices(&[0, 1])),
            SimDuration::from_millis(42)
        );
        assert_eq!(
            ens.set_cumulative_latency(ModelSet::from_indices(&[0, 1])),
            SimDuration::from_millis(60)
        );
    }

    #[test]
    #[should_panic(expected = "empty model set")]
    fn empty_subset_inference_panics() {
        let ens = small_ensemble();
        let s = gen().sample(0);
        ens.infer_subset(&s, ModelSet::EMPTY);
    }
}
