//! Aggregation modules (paper §VII).
//!
//! Three aggregators, matching the paper's missing-value strategies:
//!
//! * **Voting** — missing outputs simply stay out of the vote;
//! * **Weighted averaging** — missing weights are zeroed and the rest
//!   renormalised;
//! * **Stacking** — a trained meta-classifier with fixed input arity; it
//!   *requires* a full output vector, so callers must fill missing outputs
//!   first (the KNN filler in `schemble-core`).

use crate::output::{Output, TaskSpec};
use rand::Rng;
use schemble_nn::loss::{mse, softmax_ce_with_logits};
use schemble_nn::optim::Adam;
use schemble_nn::{Activation, Mlp};
use schemble_tensor::prob::softmax;
use schemble_tensor::Matrix;

/// How base-model outputs combine into the ensemble's output.
#[derive(Debug, Clone)]
pub enum Aggregator {
    /// Majority vote over predicted classes (categorical) / median (scalar).
    /// The emitted categorical output is the normalised vote histogram.
    Voting,
    /// Weighted average; `weights[k]` is model k's weight (need not sum to 1 —
    /// present weights are renormalised per query).
    WeightedAverage {
        /// Per-model weights.
        weights: Vec<f64>,
    },
    /// Trained meta-classifier over the concatenated base outputs.
    Stacking {
        /// The meta network. Categorical: emits class logits; regression:
        /// emits the scalar directly.
        meta: Mlp,
    },
}

impl Aggregator {
    /// Aggregates the outputs of the *present* models.
    ///
    /// `present` pairs each output with its model index (needed to pick the
    /// right weight). For [`Aggregator::Stacking`] the slice must cover the
    /// full ensemble in model order — fill missing outputs first.
    ///
    /// # Panics
    /// Panics on an empty `present` slice, or on a partial slice with
    /// stacking.
    pub fn aggregate(&self, present: &[(usize, &Output)], spec: &TaskSpec, m: usize) -> Output {
        assert!(!present.is_empty(), "cannot aggregate zero outputs");
        match self {
            Aggregator::Voting => aggregate_voting(present, spec),
            Aggregator::WeightedAverage { weights } => aggregate_weighted(present, spec, weights),
            Aggregator::Stacking { meta } => {
                assert_eq!(
                    present.len(),
                    m,
                    "stacking needs all {m} outputs; fill missing values first"
                );
                for (pos, (idx, _)) in present.iter().enumerate() {
                    assert_eq!(*idx, pos, "stacking inputs must be in model order");
                }
                let features: Vec<f64> = present.iter().flat_map(|(_, o)| o.as_vec()).collect();
                let raw = meta.infer_one(&features);
                match spec {
                    TaskSpec::Regression { .. } => Output::Scalar(raw[0]),
                    _ => Output::Probs(softmax(&raw)),
                }
            }
        }
    }
}

fn aggregate_voting(present: &[(usize, &Output)], spec: &TaskSpec) -> Output {
    match spec {
        TaskSpec::Regression { .. } => {
            // Median vote for scalars.
            let mut vals: Vec<f64> = present.iter().map(|(_, o)| o.value()).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN in regression output"));
            let n = vals.len();
            let median =
                if n % 2 == 1 { vals[n / 2] } else { 0.5 * (vals[n / 2 - 1] + vals[n / 2]) };
            Output::Scalar(median)
        }
        _ => {
            let c = spec.output_dim();
            let mut votes = vec![0.0f64; c];
            for (_, o) in present {
                votes[o.predicted_class()] += 1.0;
            }
            let total: f64 = votes.iter().sum();
            Output::Probs(votes.into_iter().map(|v| v / total).collect())
        }
    }
}

fn aggregate_weighted(present: &[(usize, &Output)], spec: &TaskSpec, weights: &[f64]) -> Output {
    let wsum: f64 = present.iter().map(|(k, _)| weights[*k]).sum();
    assert!(wsum > 0.0, "all present weights are zero");
    match spec {
        TaskSpec::Regression { .. } => {
            let v = present.iter().map(|(k, o)| weights[*k] * o.value()).sum::<f64>() / wsum;
            Output::Scalar(v)
        }
        _ => {
            let c = spec.output_dim();
            let mut acc = vec![0.0f64; c];
            for (k, o) in present {
                match o {
                    Output::Probs(p) => {
                        for (a, &pi) in acc.iter_mut().zip(p) {
                            *a += weights[*k] * pi;
                        }
                    }
                    Output::Scalar(_) => panic!("scalar output under categorical spec"),
                }
            }
            for a in &mut acc {
                *a /= wsum;
            }
            Output::Probs(acc)
        }
    }
}

/// Trains a stacking meta-classifier on full historical output files.
///
/// `rows` holds the concatenated base-model output vectors; `labels` holds
/// the ground-truth targets (class index, or scalar for regression).
pub fn train_stacking_meta(
    rows: &[Vec<f64>],
    labels: &[crate::sample::Label],
    spec: &TaskSpec,
    rng: &mut impl Rng,
) -> Mlp {
    assert!(!rows.is_empty(), "cannot train stacking on empty data");
    assert_eq!(rows.len(), labels.len(), "row/label count mismatch");
    let in_dim = rows[0].len();
    let out_dim = spec.output_dim();
    let x = Matrix::from_fn(rows.len(), in_dim, |r, c| rows[r][c]);
    let mut meta = Mlp::new(&[in_dim, 16, out_dim], Activation::Relu, Activation::Identity, rng);
    let mut opt = Adam::new(0.01);
    match spec {
        TaskSpec::Regression { .. } => {
            let targets: Vec<f64> = labels.iter().map(|l| l.value()).collect();
            meta.fit(&x, 40, 32, &mut opt, rng, |pred, idx| {
                let t = Matrix::from_fn(idx.len(), 1, |r, _| targets[idx[r]]);
                mse(pred, &t)
            });
        }
        _ => {
            let targets: Vec<usize> = labels.iter().map(|l| l.class()).collect();
            meta.fit(&x, 40, 32, &mut opt, rng, |pred, idx| {
                let batch: Vec<usize> = idx.iter().map(|&i| targets[i]).collect();
                softmax_ce_with_logits(pred, &batch)
            });
        }
    }
    meta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::Label;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cls_spec() -> TaskSpec {
        TaskSpec::Classification { num_classes: 2 }
    }

    #[test]
    fn voting_majority_wins() {
        let a = Output::Probs(vec![0.9, 0.1]);
        let b = Output::Probs(vec![0.6, 0.4]);
        let c = Output::Probs(vec![0.2, 0.8]);
        let agg = Aggregator::Voting;
        let out = agg.aggregate(&[(0, &a), (1, &b), (2, &c)], &cls_spec(), 3);
        assert_eq!(out.predicted_class(), 0);
        if let Output::Probs(p) = out {
            assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn voting_excludes_missing() {
        // With the dissenting model missing, the vote is unanimous.
        let a = Output::Probs(vec![0.2, 0.8]);
        let b = Output::Probs(vec![0.3, 0.7]);
        let out = Aggregator::Voting.aggregate(&[(0, &a), (2, &b)], &cls_spec(), 3);
        assert_eq!(out.predicted_class(), 1);
        if let Output::Probs(p) = out {
            assert_eq!(p[1], 1.0);
        }
    }

    #[test]
    fn voting_median_for_regression() {
        let spec = TaskSpec::Regression { tolerance: 0.5 };
        let o = [Output::Scalar(1.0), Output::Scalar(10.0), Output::Scalar(3.0)];
        let out = Aggregator::Voting.aggregate(&[(0, &o[0]), (1, &o[1]), (2, &o[2])], &spec, 3);
        assert_eq!(out.value(), 3.0);
    }

    #[test]
    fn weighted_average_renormalises_missing() {
        let w = Aggregator::WeightedAverage { weights: vec![0.5, 0.3, 0.2] };
        let a = Output::Probs(vec![1.0, 0.0]);
        let b = Output::Probs(vec![0.0, 1.0]);
        // Only models 0 and 1 present: weights renormalise to 5/8, 3/8.
        let out = w.aggregate(&[(0, &a), (1, &b)], &cls_spec(), 3);
        if let Output::Probs(p) = out {
            assert!((p[0] - 0.625).abs() < 1e-12);
            assert!((p[1] - 0.375).abs() < 1e-12);
        } else {
            panic!("expected probs");
        }
    }

    #[test]
    fn weighted_average_scalar() {
        let spec = TaskSpec::Regression { tolerance: 0.5 };
        let w = Aggregator::WeightedAverage { weights: vec![1.0, 3.0] };
        let out = w.aggregate(&[(0, &Output::Scalar(0.0)), (1, &Output::Scalar(4.0))], &spec, 2);
        assert_eq!(out.value(), 3.0);
    }

    #[test]
    fn stacking_learns_xor_of_experts() {
        // Two "experts" whose concatenated outputs determine the label in a
        // non-linear way only a trained meta can express.
        let mut rng = StdRng::seed_from_u64(8);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400 {
            let a = (i / 2) % 2;
            let b = i % 2;
            let y = a ^ b;
            rows.push(vec![
                if a == 1 { 0.9 } else { 0.1 },
                if a == 1 { 0.1 } else { 0.9 },
                if b == 1 { 0.85 } else { 0.15 },
                if b == 1 { 0.15 } else { 0.85 },
            ]);
            labels.push(Label::Class(y));
        }
        let spec = cls_spec();
        let meta = train_stacking_meta(&rows, &labels, &spec, &mut rng);
        let agg = Aggregator::Stacking { meta };
        let mk = |hi: bool| {
            if hi {
                Output::Probs(vec![0.9, 0.1])
            } else {
                Output::Probs(vec![0.1, 0.9])
            }
        };
        for (a, b) in [(true, true), (true, false), (false, true), (false, false)] {
            let (o1, o2) = (mk(a), mk(b));
            let out = agg.aggregate(&[(0, &o1), (1, &o2)], &spec, 2);
            let want = usize::from(a != b);
            assert_eq!(out.predicted_class(), want, "stacking failed on ({a},{b})");
        }
    }

    #[test]
    #[should_panic(expected = "fill missing values first")]
    fn stacking_rejects_partial_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let meta = Mlp::new(&[4, 2], Activation::Identity, Activation::Identity, &mut rng);
        let agg = Aggregator::Stacking { meta };
        let o = Output::Probs(vec![0.5, 0.5]);
        agg.aggregate(&[(0, &o)], &cls_spec(), 2);
    }

    #[test]
    #[should_panic(expected = "zero outputs")]
    fn empty_aggregation_panics() {
        Aggregator::Voting.aggregate(&[], &cls_spec(), 3);
    }
}
