//! Deadline assignment policies.

use rand::Rng;
use schemble_sim::rng::stream_rng;
use schemble_sim::{SimDuration, SimTime};

/// How relative deadlines are assigned to queries.
#[derive(Debug, Clone, PartialEq)]
pub enum DeadlinePolicy {
    /// Every query gets the same relative deadline ("we treat all customers
    /// the same" — text matching and image retrieval).
    Constant(SimDuration),
    /// Vehicle counting: each of `cameras` locations gets a deadline drawn
    /// once from `U[lo, hi]`; queries inherit their camera's deadline
    /// (camera = query id mod `cameras`).
    PerCameraUniform {
        /// Number of camera locations.
        cameras: usize,
        /// Lower bound of the uniform deadline draw.
        lo: SimDuration,
        /// Upper bound of the uniform deadline draw.
        hi: SimDuration,
    },
}

impl DeadlinePolicy {
    /// A constant policy from milliseconds.
    pub fn constant_millis(ms: f64) -> Self {
        DeadlinePolicy::Constant(SimDuration::from_millis_f64(ms))
    }

    /// The paper's UA-DETRAC setting: 24 cameras, deadlines uniform around a
    /// mean with ±40% spread.
    pub fn cameras_around_millis(mean_ms: f64) -> Self {
        DeadlinePolicy::PerCameraUniform {
            cameras: 24,
            lo: SimDuration::from_millis_f64(mean_ms * 0.6),
            hi: SimDuration::from_millis_f64(mean_ms * 1.4),
        }
    }

    /// Materialises the per-camera table (empty for constant policies).
    fn camera_table(&self, seed: u64) -> Vec<SimDuration> {
        match self {
            DeadlinePolicy::Constant(_) => Vec::new(),
            DeadlinePolicy::PerCameraUniform { cameras, lo, hi } => {
                let mut rng = stream_rng(seed, "camera-deadlines");
                (0..*cameras)
                    .map(|_| {
                        SimDuration::from_micros(rng.random_range(lo.as_micros()..=hi.as_micros()))
                    })
                    .collect()
            }
        }
    }

    /// Assigns absolute deadlines given arrival times. Deterministic per
    /// `(policy, seed)`.
    pub fn assign(&self, arrivals: &[SimTime], seed: u64) -> Vec<SimTime> {
        let table = self.camera_table(seed);
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &arr)| match self {
                DeadlinePolicy::Constant(d) => arr + *d,
                DeadlinePolicy::PerCameraUniform { cameras, .. } => arr + table[i % cameras],
            })
            .collect()
    }

    /// Mean relative deadline of the policy (exact for constant; midpoint for
    /// uniform), for reporting sweep axes.
    pub fn mean_relative(&self) -> SimDuration {
        match self {
            DeadlinePolicy::Constant(d) => *d,
            DeadlinePolicy::PerCameraUniform { lo, hi, .. } => {
                SimDuration::from_micros((lo.as_micros() + hi.as_micros()) / 2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn constant_policy_offsets_arrivals() {
        let p = DeadlinePolicy::constant_millis(100.0);
        let deadlines = p.assign(&[at(0), at(50)], 1);
        assert_eq!(deadlines, vec![at(100), at(150)]);
    }

    #[test]
    fn per_camera_deadlines_are_stable_per_camera() {
        let p = DeadlinePolicy::PerCameraUniform {
            cameras: 4,
            lo: SimDuration::from_millis(80),
            hi: SimDuration::from_millis(200),
        };
        let arrivals: Vec<SimTime> = (0..16).map(|i| at(i * 10)).collect();
        let deadlines = p.assign(&arrivals, 9);
        // Query i and i+4 share a camera, so share the *relative* deadline.
        for i in 0..12 {
            let rel_a = deadlines[i] - arrivals[i];
            let rel_b = deadlines[i + 4] - arrivals[i + 4];
            assert_eq!(rel_a, rel_b, "camera {} relative deadline drifted", i % 4);
        }
        // All relative deadlines in range.
        for (d, a) in deadlines.iter().zip(&arrivals) {
            let rel = *d - *a;
            assert!(rel >= SimDuration::from_millis(80) && rel <= SimDuration::from_millis(200));
        }
    }

    #[test]
    fn per_camera_is_deterministic_per_seed() {
        let p = DeadlinePolicy::cameras_around_millis(150.0);
        let arrivals: Vec<SimTime> = (0..10).map(at).collect();
        assert_eq!(p.assign(&arrivals, 3), p.assign(&arrivals, 3));
        assert_ne!(p.assign(&arrivals, 3), p.assign(&arrivals, 4));
    }

    #[test]
    fn mean_relative_reports_midpoint() {
        let p = DeadlinePolicy::PerCameraUniform {
            cameras: 4,
            lo: SimDuration::from_millis(100),
            hi: SimDuration::from_millis(200),
        };
        assert_eq!(p.mean_relative(), SimDuration::from_millis(150));
        assert_eq!(
            DeadlinePolicy::constant_millis(120.0).mean_relative(),
            SimDuration::from_millis(120)
        );
    }
}
