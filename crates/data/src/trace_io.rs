//! Loading and saving arrival traces as CSV — the plug-in point for *real*
//! recorded traces (the paper's one-day Q&A log would be loaded here).
//!
//! Format: one header line, then `arrival_s[,deadline_s]` rows sorted by
//! arrival. The deadline column is optional. Note that
//! [`crate::Workload::generate`] always assigns deadlines from its
//! [`crate::DeadlinePolicy`]; recorded deadlines are exposed through
//! [`RecordedTrace::deadlines`] for callers that want to override the
//! generated ones.

use crate::trace::ArrivalTrace;
use schemble_sim::SimTime;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// A trace loaded from (or destined for) a CSV file.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    arrivals: Vec<SimTime>,
    /// Absolute deadlines, when the file carried them.
    deadlines: Option<Vec<SimTime>>,
}

/// A malformed trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Parse/validation failure with a line number (1-based, incl. header).
    Parse {
        /// Line where the problem was found.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl RecordedTrace {
    /// Wraps arrival instants (must be sorted ascending).
    ///
    /// # Panics
    /// Panics if the arrivals are unsorted — recorded traces are
    /// chronological by definition.
    pub fn new(arrivals: Vec<SimTime>) -> Self {
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "recorded arrivals must be sorted");
        Self { arrivals, deadlines: None }
    }

    /// Wraps arrivals with absolute deadlines.
    pub fn with_deadlines(arrivals: Vec<SimTime>, deadlines: Vec<SimTime>) -> Self {
        assert_eq!(arrivals.len(), deadlines.len(), "column length mismatch");
        let mut t = Self::new(arrivals);
        t.deadlines = Some(deadlines);
        t
    }

    /// Parses the CSV format from any reader.
    pub fn parse(reader: impl BufRead) -> Result<Self, TraceError> {
        let mut arrivals = Vec::new();
        let mut deadlines: Vec<SimTime> = Vec::new();
        let mut has_deadlines = None;
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = i + 1;
            if i == 0 {
                // Header; just validate shape.
                let cols = line.split(',').count();
                if !(1..=2).contains(&cols) {
                    return Err(TraceError::Parse {
                        line: lineno,
                        message: format!("expected 1–2 columns, got {cols}"),
                    });
                }
                has_deadlines = Some(cols == 2);
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let arrival: f64 =
                parts.next().expect("split yields at least one part").trim().parse().map_err(
                    |_| TraceError::Parse { line: lineno, message: "bad arrival".to_string() },
                )?;
            if arrival < 0.0 {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: "negative arrival".to_string(),
                });
            }
            arrivals.push(SimTime::from_secs_f64(arrival));
            if has_deadlines == Some(true) {
                let d: f64 = parts
                    .next()
                    .ok_or_else(|| TraceError::Parse {
                        line: lineno,
                        message: "missing deadline column".to_string(),
                    })?
                    .trim()
                    .parse()
                    .map_err(|_| TraceError::Parse {
                        line: lineno,
                        message: "bad deadline".to_string(),
                    })?;
                if d < arrival {
                    return Err(TraceError::Parse {
                        line: lineno,
                        message: "deadline before arrival".to_string(),
                    });
                }
                deadlines.push(SimTime::from_secs_f64(d));
            }
        }
        if !arrivals.windows(2).all(|w| w[0] <= w[1]) {
            return Err(TraceError::Parse { line: 0, message: "arrivals not sorted".to_string() });
        }
        Ok(Self {
            arrivals,
            deadlines: if has_deadlines == Some(true) { Some(deadlines) } else { None },
        })
    }

    /// Loads from a file.
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)?;
        Self::parse(io::BufReader::new(file))
    }

    /// Saves to a file in the same format.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        match &self.deadlines {
            Some(ds) => {
                writeln!(w, "arrival_s,deadline_s")?;
                for (a, d) in self.arrivals.iter().zip(ds) {
                    writeln!(w, "{:.6},{:.6}", a.as_secs_f64(), d.as_secs_f64())?;
                }
            }
            None => {
                writeln!(w, "arrival_s")?;
                for a in &self.arrivals {
                    writeln!(w, "{:.6}", a.as_secs_f64())?;
                }
            }
        }
        w.flush()
    }

    /// Recorded absolute deadlines, if the file carried them.
    pub fn deadlines(&self) -> Option<&[SimTime]> {
        self.deadlines.as_deref()
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

impl ArrivalTrace for RecordedTrace {
    fn arrivals(&self, _seed: u64) -> Vec<SimTime> {
        self.arrivals.clone()
    }
    fn duration(&self) -> SimTime {
        self.arrivals.last().copied().unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_arrival_only() {
        let csv = "arrival_s\n0.5\n1.25\n3.0\n";
        let t = RecordedTrace::parse(Cursor::new(csv)).expect("parse");
        assert_eq!(t.len(), 3);
        assert_eq!(t.arrivals(0)[1], SimTime::from_millis(1250));
        assert!(t.deadlines().is_none());
        assert_eq!(t.duration(), SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn parse_with_deadlines() {
        let csv = "arrival_s,deadline_s\n0.5,0.6\n1.0,1.105\n";
        let t = RecordedTrace::parse(Cursor::new(csv)).expect("parse");
        assert_eq!(t.deadlines().expect("deadlines").len(), 2);
    }

    #[test]
    fn rejects_unsorted_and_bad_rows() {
        assert!(RecordedTrace::parse(Cursor::new("arrival_s\n2.0\n1.0\n")).is_err());
        assert!(RecordedTrace::parse(Cursor::new("arrival_s\nnope\n")).is_err());
        assert!(
            RecordedTrace::parse(Cursor::new("arrival_s,deadline_s\n1.0,0.5\n")).is_err(),
            "deadline before arrival must be rejected"
        );
        assert!(RecordedTrace::parse(Cursor::new("a,b,c\n")).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let t = RecordedTrace::with_deadlines(
            vec![SimTime::from_millis(100), SimTime::from_millis(350)],
            vec![SimTime::from_millis(200), SimTime::from_millis(500)],
        );
        let dir = std::env::temp_dir().join("schemble-trace-io");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("trace.csv");
        t.save(&path).expect("save");
        let loaded = RecordedTrace::load(&path).expect("load");
        assert_eq!(t, loaded);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn workload_generation_from_recorded_trace() {
        use crate::{DeadlinePolicy, Workload};
        use schemble_models::{DifficultyDist, SampleGenerator, TaskSpec};
        let t = RecordedTrace::new(vec![
            SimTime::from_millis(10),
            SimTime::from_millis(40),
            SimTime::from_millis(45),
        ]);
        let gen = SampleGenerator::new(
            TaskSpec::Classification { num_classes: 2 },
            DifficultyDist::Uniform,
            1,
        );
        let w = Workload::generate(&gen, &t, &DeadlinePolicy::constant_millis(100.0), 9);
        assert_eq!(w.len(), 3);
        assert_eq!(w.queries[2].arrival, SimTime::from_millis(45));
        assert_eq!(w.queries[2].deadline, SimTime::from_millis(145));
    }
}
