//! Queries and complete workloads.

use crate::deadline::DeadlinePolicy;
use crate::trace::ArrivalTrace;
use schemble_models::{Sample, SampleGenerator};
use schemble_sim::SimTime;

/// One query: a sample payload, its arrival instant and absolute deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Query index within the workload (== sample id).
    pub id: u64,
    /// The payload.
    pub sample: Sample,
    /// Arrival time.
    pub arrival: SimTime,
    /// Absolute deadline ("the time by which the query must be processed").
    pub deadline: SimTime,
}

/// A fully materialised query stream.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Queries in arrival order.
    pub queries: Vec<Query>,
    /// Span of the generating trace.
    pub duration: SimTime,
}

impl Workload {
    /// Generates a workload: arrivals from `trace`, payloads from
    /// `generator` (sample id = position in the trace), deadlines from
    /// `policy`. Fully deterministic in `(trace, generator, policy, seed)`.
    pub fn generate(
        generator: &SampleGenerator,
        trace: &dyn ArrivalTrace,
        policy: &DeadlinePolicy,
        seed: u64,
    ) -> Self {
        let arrivals = trace.arrivals(seed);
        let deadlines = policy.assign(&arrivals, seed);
        let queries = arrivals
            .into_iter()
            .zip(deadlines)
            .enumerate()
            .map(|(i, (arrival, deadline))| Query {
                id: i as u64,
                sample: generator.sample(i as u64),
                arrival,
                deadline,
            })
            .collect();
        Self { queries, duration: trace.duration() }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// An *offline dataset* view: just the samples, for historical profiling
    /// and predictor training (queries the system served yesterday).
    pub fn samples(&self) -> Vec<&Sample> {
        self.queries.iter().map(|q| &q.sample).collect()
    }

    /// Partitions the workload into `shards` sub-workloads with `assign`
    /// mapping a global query id to its shard.
    ///
    /// Engines require `query.id == index into the workload`, so each
    /// sub-workload renumbers its queries `0..n_s` (arrival order is
    /// preserved; sample payloads, arrivals and deadlines are untouched)
    /// and records the original ids in [`ShardWorkload::global_ids`] so
    /// per-shard results can be mapped back into the global namespace.
    pub fn partition(&self, shards: usize, assign: impl Fn(u64) -> usize) -> Vec<ShardWorkload> {
        let mut parts: Vec<ShardWorkload> = (0..shards.max(1))
            .map(|_| ShardWorkload {
                workload: Workload { queries: Vec::new(), duration: self.duration },
                global_ids: Vec::new(),
            })
            .collect();
        for q in &self.queries {
            let s = assign(q.id).min(parts.len() - 1);
            let part = &mut parts[s];
            let mut local = q.clone();
            local.id = part.workload.queries.len() as u64;
            part.global_ids.push(q.id);
            part.workload.queries.push(local);
        }
        parts
    }
}

/// One shard's slice of a partitioned [`Workload`].
#[derive(Debug, Clone)]
pub struct ShardWorkload {
    /// The sub-workload, renumbered so `queries[i].id == i`.
    pub workload: Workload,
    /// `global_ids[local_id]` is the query's id in the original workload.
    pub global_ids: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::PoissonTrace;
    use schemble_models::{DifficultyDist, SampleGenerator, TaskSpec};

    fn workload(n: usize) -> Workload {
        let g = SampleGenerator::new(
            TaskSpec::Classification { num_classes: 2 },
            DifficultyDist::Uniform,
            5,
        );
        Workload::generate(
            &g,
            &PoissonTrace { rate_per_sec: 100.0, n },
            &DeadlinePolicy::constant_millis(100.0),
            42,
        )
    }

    #[test]
    fn queries_are_in_arrival_order_with_ids() {
        let w = workload(200);
        assert_eq!(w.len(), 200);
        for (i, q) in w.queries.iter().enumerate() {
            assert_eq!(q.id, i as u64);
            assert_eq!(q.sample.id, i as u64);
            assert!(q.deadline > q.arrival);
        }
        assert!(w.queries.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = workload(50);
        let b = workload(50);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn partition_renumbers_locally_and_remembers_global_ids() {
        let w = workload(100);
        let parts = w.partition(3, |id| (id % 3) as usize);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.workload.len()).sum::<usize>(), 100);
        let mut seen: Vec<u64> = Vec::new();
        for (s, part) in parts.iter().enumerate() {
            assert_eq!(part.global_ids.len(), part.workload.len());
            for (i, q) in part.workload.queries.iter().enumerate() {
                assert_eq!(q.id, i as u64, "local ids must be dense");
                let global = part.global_ids[i];
                assert_eq!(global % 3, s as u64);
                // Payload and timing travel with the query unchanged.
                let original = &w.queries[global as usize];
                assert_eq!(q.sample, original.sample);
                assert_eq!(q.arrival, original.arrival);
                assert_eq!(q.deadline, original.deadline);
                seen.push(global);
            }
            assert!(
                part.workload.queries.windows(2).all(|p| p[0].arrival <= p[1].arrival),
                "arrival order preserved within a shard"
            );
            assert_eq!(part.workload.duration, w.duration);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<u64>>(), "a partition, not a sample");
    }

    #[test]
    fn samples_view_matches_queries() {
        let w = workload(10);
        let samples = w.samples();
        assert_eq!(samples.len(), 10);
        assert_eq!(samples[3].id, w.queries[3].sample.id);
    }
}
