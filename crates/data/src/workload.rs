//! Queries and complete workloads.

use crate::deadline::DeadlinePolicy;
use crate::trace::ArrivalTrace;
use schemble_models::{Sample, SampleGenerator};
use schemble_sim::SimTime;

/// One query: a sample payload, its arrival instant and absolute deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Query index within the workload (== sample id).
    pub id: u64,
    /// Routing key: what a shard router hashes to place the query. Defaults
    /// to `id` (uniform placement); [`Workload::with_zipf_keys`] re-keys the
    /// stream to model hot-key skew.
    pub key: u64,
    /// The payload.
    pub sample: Sample,
    /// Arrival time.
    pub arrival: SimTime,
    /// Absolute deadline ("the time by which the query must be processed").
    pub deadline: SimTime,
}

/// A fully materialised query stream.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Queries in arrival order.
    pub queries: Vec<Query>,
    /// Span of the generating trace.
    pub duration: SimTime,
}

impl Workload {
    /// Generates a workload: arrivals from `trace`, payloads from
    /// `generator` (sample id = position in the trace), deadlines from
    /// `policy`. Fully deterministic in `(trace, generator, policy, seed)`.
    pub fn generate(
        generator: &SampleGenerator,
        trace: &dyn ArrivalTrace,
        policy: &DeadlinePolicy,
        seed: u64,
    ) -> Self {
        let arrivals = trace.arrivals(seed);
        let deadlines = policy.assign(&arrivals, seed);
        let queries = arrivals
            .into_iter()
            .zip(deadlines)
            .enumerate()
            .map(|(i, (arrival, deadline))| Query {
                id: i as u64,
                key: i as u64,
                sample: generator.sample(i as u64),
                arrival,
                deadline,
            })
            .collect();
        Self { queries, duration: trace.duration() }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// An *offline dataset* view: just the samples, for historical profiling
    /// and predictor training (queries the system served yesterday).
    pub fn samples(&self) -> Vec<&Sample> {
        self.queries.iter().map(|q| &q.sample).collect()
    }

    /// Re-keys the stream with a Zipfian hot-key distribution: each query's
    /// routing [`Query::key`] is drawn from `keys` distinct keys with
    /// probability proportional to `1/(rank+1)^theta` (`theta = 0` is
    /// uniform; larger exponents concentrate mass on key 0). The draw is a
    /// pure per-id hash through the inverse CDF — no sequential RNG — so
    /// re-keying the same workload with the same `(keys, theta, seed)`
    /// yields identical keys regardless of iteration order. Ids, payloads,
    /// arrivals and deadlines are untouched.
    pub fn with_zipf_keys(mut self, keys: usize, theta: f64, seed: u64) -> Self {
        let keys = keys.max(1);
        let weights: Vec<f64> = (0..keys).map(|k| 1.0 / ((k + 1) as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(keys);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        for q in &mut self.queries {
            let h = splitmix64(seed ^ splitmix64(q.id));
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            q.key = cdf.partition_point(|&c| c < u).min(keys - 1) as u64;
        }
        self
    }

    /// Partitions the workload into `shards` sub-workloads with `assign`
    /// mapping a query to its shard (routers typically hash [`Query::key`]).
    ///
    /// Engines require `query.id == index into the workload`, so each
    /// sub-workload renumbers its queries `0..n_s` (arrival order is
    /// preserved; sample payloads, routing keys, arrivals and deadlines are
    /// untouched) and records the original ids in
    /// [`ShardWorkload::global_ids`] so per-shard results can be mapped back
    /// into the global namespace.
    pub fn partition(&self, shards: usize, assign: impl Fn(&Query) -> usize) -> Vec<ShardWorkload> {
        let mut parts: Vec<ShardWorkload> = (0..shards.max(1))
            .map(|_| ShardWorkload {
                workload: Workload { queries: Vec::new(), duration: self.duration },
                global_ids: Vec::new(),
            })
            .collect();
        for q in &self.queries {
            let s = assign(q).min(parts.len() - 1);
            let part = &mut parts[s];
            let mut local = q.clone();
            local.id = part.workload.queries.len() as u64;
            part.global_ids.push(q.id);
            part.workload.queries.push(local);
        }
        parts
    }
}

/// SplitMix64 finalizer: a stateless avalanche hash (same mixer the shard
/// router uses), here driving the per-id Zipf key draw.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One shard's slice of a partitioned [`Workload`].
#[derive(Debug, Clone)]
pub struct ShardWorkload {
    /// The sub-workload, renumbered so `queries[i].id == i`.
    pub workload: Workload,
    /// `global_ids[local_id]` is the query's id in the original workload.
    pub global_ids: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::PoissonTrace;
    use schemble_models::{DifficultyDist, SampleGenerator, TaskSpec};

    fn workload(n: usize) -> Workload {
        let g = SampleGenerator::new(
            TaskSpec::Classification { num_classes: 2 },
            DifficultyDist::Uniform,
            5,
        );
        Workload::generate(
            &g,
            &PoissonTrace { rate_per_sec: 100.0, n },
            &DeadlinePolicy::constant_millis(100.0),
            42,
        )
    }

    #[test]
    fn queries_are_in_arrival_order_with_ids() {
        let w = workload(200);
        assert_eq!(w.len(), 200);
        for (i, q) in w.queries.iter().enumerate() {
            assert_eq!(q.id, i as u64);
            assert_eq!(q.sample.id, i as u64);
            assert!(q.deadline > q.arrival);
        }
        assert!(w.queries.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = workload(50);
        let b = workload(50);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn partition_renumbers_locally_and_remembers_global_ids() {
        let w = workload(100);
        let parts = w.partition(3, |q| (q.id % 3) as usize);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.workload.len()).sum::<usize>(), 100);
        let mut seen: Vec<u64> = Vec::new();
        for (s, part) in parts.iter().enumerate() {
            assert_eq!(part.global_ids.len(), part.workload.len());
            for (i, q) in part.workload.queries.iter().enumerate() {
                assert_eq!(q.id, i as u64, "local ids must be dense");
                let global = part.global_ids[i];
                assert_eq!(global % 3, s as u64);
                // Payload and timing travel with the query unchanged.
                let original = &w.queries[global as usize];
                assert_eq!(q.sample, original.sample);
                assert_eq!(q.arrival, original.arrival);
                assert_eq!(q.deadline, original.deadline);
                seen.push(global);
            }
            assert!(
                part.workload.queries.windows(2).all(|p| p[0].arrival <= p[1].arrival),
                "arrival order preserved within a shard"
            );
            assert_eq!(part.workload.duration, w.duration);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<u64>>(), "a partition, not a sample");
    }

    #[test]
    fn partition_tolerates_empty_shards() {
        // Every id hashes to shard 0: shards 1 and 2 must come back as
        // valid, empty sub-workloads rather than being dropped or panicking.
        let w = workload(20);
        let parts = w.partition(3, |_| 0);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].workload.len(), 20);
        for part in &parts[1..] {
            assert!(part.workload.is_empty());
            assert!(part.global_ids.is_empty());
            assert_eq!(part.workload.duration, w.duration);
        }
    }

    #[test]
    fn partition_single_query_workload() {
        let w = workload(1);
        let parts = w.partition(4, |q| (q.id as usize + 2) % 4);
        assert_eq!(parts.iter().map(|p| p.workload.len()).sum::<usize>(), 1);
        let home = parts.iter().position(|p| !p.workload.is_empty()).unwrap();
        assert_eq!(home, 2);
        assert_eq!(parts[home].workload.queries[0].id, 0);
        assert_eq!(parts[home].global_ids, vec![0]);
    }

    #[test]
    fn partition_local_global_round_trip() {
        // Property: for every shard s and local id l,
        // original[global_ids[l]] == shard query l (modulo the renumbered
        // id), across several shard counts and assignment functions.
        let w = workload(67);
        for shards in [1usize, 2, 3, 5, 8] {
            for salt in [0u64, 7, 13] {
                let parts = w.partition(shards, |q| ((q.id ^ salt) % shards as u64) as usize);
                let mut covered = 0usize;
                for part in &parts {
                    for (l, q) in part.workload.queries.iter().enumerate() {
                        let mut back = q.clone();
                        back.id = part.global_ids[l];
                        assert_eq!(back, w.queries[part.global_ids[l] as usize]);
                        covered += 1;
                    }
                }
                assert_eq!(covered, w.len());
            }
        }
    }

    #[test]
    fn default_keys_equal_ids_and_zipf_rekeys_deterministically() {
        let w = workload(50);
        assert!(w.queries.iter().all(|q| q.key == q.id));
        let a = w.clone().with_zipf_keys(16, 1.5, 7);
        let b = w.clone().with_zipf_keys(16, 1.5, 7);
        assert_eq!(a.queries, b.queries);
        assert!(a.queries.iter().all(|q| q.key < 16));
        // Everything except the key is untouched.
        for (orig, rekeyed) in w.queries.iter().zip(&a.queries) {
            assert_eq!(orig.id, rekeyed.id);
            assert_eq!(orig.sample, rekeyed.sample);
            assert_eq!(orig.arrival, rekeyed.arrival);
            assert_eq!(orig.deadline, rekeyed.deadline);
        }
    }

    #[test]
    fn zipf_skew_concentrates_mass_on_the_hot_key() {
        let w = workload(400).with_zipf_keys(64, 2.0, 11);
        let hot = w.queries.iter().filter(|q| q.key == 0).count();
        // p(key 0) ~ 1/zeta(2.0, 64) ~ 0.62; allow a generous band.
        assert!(hot > 180, "expected a hot key under theta=2.0, got {hot}/400");
        let uniform = workload(400).with_zipf_keys(64, 0.0, 11);
        let hot0 = uniform.queries.iter().filter(|q| q.key == 0).count();
        assert!(hot0 < 40, "theta=0 must be near-uniform, got {hot0}/400");
    }

    #[test]
    fn samples_view_matches_queries() {
        let w = workload(10);
        let samples = w.samples();
        assert_eq!(samples.len(), 10);
        assert_eq!(samples[3].id, w.queries[3].sample.id);
    }
}
