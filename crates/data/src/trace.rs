//! Arrival traces.

use rand::Rng;
use schemble_sim::rng::stream_rng;
use schemble_sim::SimTime;

/// Something that can produce a sorted list of arrival instants.
pub trait ArrivalTrace {
    /// Generates the arrival instants (sorted ascending).
    fn arrivals(&self, seed: u64) -> Vec<SimTime>;
    /// Total span covered by the trace.
    fn duration(&self) -> SimTime;
}

/// Homogeneous Poisson arrivals at `rate_per_sec`, `n` queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonTrace {
    /// Arrival rate (queries per second).
    pub rate_per_sec: f64,
    /// Number of queries.
    pub n: usize,
}

impl ArrivalTrace for PoissonTrace {
    fn arrivals(&self, seed: u64) -> Vec<SimTime> {
        assert!(self.rate_per_sec > 0.0, "rate must be positive");
        let mut rng = stream_rng(seed, "poisson-trace");
        let mut t = 0.0f64;
        (0..self.n)
            .map(|_| {
                t += exponential(&mut rng, self.rate_per_sec);
                SimTime::from_secs_f64(t)
            })
            .collect()
    }

    fn duration(&self) -> SimTime {
        SimTime::from_secs_f64(self.n as f64 / self.rate_per_sec)
    }
}

/// A compressed "one-day" trace with the burst profile of the paper's
/// Fig. 1a: light traffic overnight (hours 0–8), a morning ramp, a sustained
/// daytime burst (hours 10–18, ~30× the overnight rate) and an evening
/// decline.
///
/// The day is compressed to `day_secs` of simulated time (relative hour
/// structure preserved — 1 "hour" = `day_secs`/24). `n` queries are
/// distributed across hours proportionally to [`DiurnalTrace::HOUR_WEIGHTS`],
/// with Poisson arrivals within each hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalTrace {
    /// Total number of queries in the day.
    pub n: usize,
    /// Length of the compressed day in simulated seconds.
    pub day_secs: f64,
}

impl DiurnalTrace {
    /// Relative traffic weight of each hour (Fig. 1a shape: quiet nights,
    /// ~30× burst mid-day).
    pub const HOUR_WEIGHTS: [f64; 24] = [
        1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, // 0-7: overnight
        4.0, 8.0, // 8-9: ramp
        20.0, 25.0, 30.0, 28.0, 30.0, 26.0, 22.0, 18.0, // 10-17: burst
        10.0, 6.0, 4.0, 3.0, 2.0, 1.5, // 18-23: decline
    ];

    /// The hour (0–23) an instant belongs to; instants past the day clamp
    /// to 23. Used to aggregate the per-time-segment plots (Fig. 9/14).
    pub fn hour_of(&self, t: SimTime) -> usize {
        let hour_len = self.day_secs / 24.0;
        ((t.as_secs_f64() / hour_len) as usize).min(23)
    }

    /// Mean arrival rate during hour `h` (queries/second).
    pub fn hour_rate(&self, h: usize) -> f64 {
        let total: f64 = Self::HOUR_WEIGHTS.iter().sum();
        let hour_len = self.day_secs / 24.0;
        self.n as f64 * Self::HOUR_WEIGHTS[h] / total / hour_len
    }
}

impl ArrivalTrace for DiurnalTrace {
    fn arrivals(&self, seed: u64) -> Vec<SimTime> {
        let mut rng = stream_rng(seed, "diurnal-trace");
        let hour_len = self.day_secs / 24.0;
        let mut out = Vec::with_capacity(self.n);
        for h in 0..24 {
            let rate = self.hour_rate(h);
            let start = h as f64 * hour_len;
            let end = start + hour_len;
            let mut t = start;
            loop {
                t += exponential(&mut rng, rate);
                if t >= end {
                    break;
                }
                out.push(SimTime::from_secs_f64(t));
            }
        }
        out
    }

    fn duration(&self) -> SimTime {
        SimTime::from_secs_f64(self.day_secs)
    }
}

/// A contiguous hour window cut out of a [`DiurnalTrace`], re-based so the
/// window opens at `t = 0`.
///
/// Fig. 19 evaluates schedulers on the bursty 14–19 h afternoon segment in
/// isolation: the slice reproduces exactly the arrivals the full day would
/// place in the window (same seed stream), so a sliced run sees the same
/// burst shape without simulating the quiet hours around it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalSliceTrace {
    /// The full-day trace to slice.
    pub day: DiurnalTrace,
    /// First hour included (0–23).
    pub start_hour: usize,
    /// One past the last hour included (`start_hour < end_hour <= 24`).
    pub end_hour: usize,
}

impl DiurnalSliceTrace {
    /// The fraction of the day's queries that fall in the window, in
    /// expectation. Useful to size `day.n` for a target slice volume.
    pub fn expected_fraction(&self) -> f64 {
        let total: f64 = DiurnalTrace::HOUR_WEIGHTS.iter().sum();
        let window: f64 = DiurnalTrace::HOUR_WEIGHTS[self.start_hour..self.end_hour].iter().sum();
        window / total
    }
}

impl ArrivalTrace for DiurnalSliceTrace {
    fn arrivals(&self, seed: u64) -> Vec<SimTime> {
        assert!(
            self.start_hour < self.end_hour && self.end_hour <= 24,
            "hour window {}..{} out of range",
            self.start_hour,
            self.end_hour
        );
        let hour_len = self.day.day_secs / 24.0;
        let start = SimTime::from_secs_f64(self.start_hour as f64 * hour_len);
        let end = SimTime::from_secs_f64(self.end_hour as f64 * hour_len);
        self.day
            .arrivals(seed)
            .into_iter()
            .filter(|&t| t >= start && t < end)
            .map(|t| SimTime::ZERO + t.saturating_since(start))
            .collect()
    }

    fn duration(&self) -> SimTime {
        let hour_len = self.day.day_secs / 24.0;
        SimTime::from_secs_f64((self.end_hour - self.start_hour) as f64 * hour_len)
    }
}

/// Exponential inter-arrival sample with the given rate.
fn exponential(rng: &mut impl Rng, rate: f64) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_sorted_with_right_mean_rate() {
        let trace = PoissonTrace { rate_per_sec: 50.0, n: 10_000 };
        let arrivals = trace.arrivals(1);
        assert_eq!(arrivals.len(), 10_000);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        let span = arrivals.last().unwrap().as_secs_f64();
        let rate = 10_000.0 / span;
        assert!((rate - 50.0).abs() < 2.5, "empirical rate {rate}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let trace = PoissonTrace { rate_per_sec: 10.0, n: 100 };
        assert_eq!(trace.arrivals(7), trace.arrivals(7));
        assert_ne!(trace.arrivals(7), trace.arrivals(8));
    }

    #[test]
    fn diurnal_burst_is_much_denser_than_night() {
        let trace = DiurnalTrace { n: 20_000, day_secs: 1200.0 };
        let arrivals = trace.arrivals(3);
        let mut per_hour = [0usize; 24];
        for &t in &arrivals {
            per_hour[trace.hour_of(t)] += 1;
        }
        let night: usize = per_hour[0..8].iter().sum();
        let burst: usize = per_hour[10..18].iter().sum();
        let night_rate = night as f64 / 8.0;
        let burst_rate = burst as f64 / 8.0;
        assert!(
            burst_rate > 15.0 * night_rate,
            "burst {burst_rate:.0}/h vs night {night_rate:.0}/h — want ≳20×"
        );
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "arrivals must be sorted");
    }

    #[test]
    fn diurnal_totals_approximately_n() {
        let trace = DiurnalTrace { n: 5000, day_secs: 600.0 };
        let arrivals = trace.arrivals(5);
        let n = arrivals.len() as f64;
        assert!((n - 5000.0).abs() < 300.0, "generated {n} arrivals for n=5000");
    }

    #[test]
    fn hour_of_maps_boundaries() {
        let trace = DiurnalTrace { n: 10, day_secs: 2400.0 }; // 100 s/hour
        assert_eq!(trace.hour_of(SimTime::from_secs_f64(0.0)), 0);
        assert_eq!(trace.hour_of(SimTime::from_secs_f64(150.0)), 1);
        assert_eq!(trace.hour_of(SimTime::from_secs_f64(2399.0)), 23);
        assert_eq!(trace.hour_of(SimTime::from_secs_f64(99999.0)), 23);
    }

    #[test]
    fn slice_reproduces_the_windowed_arrivals_rebased() {
        let day = DiurnalTrace { n: 20_000, day_secs: 2400.0 }; // 100 s/hour
        let slice = DiurnalSliceTrace { day, start_hour: 14, end_hour: 19 };
        let full = day.arrivals(9);
        let sliced = slice.arrivals(9);
        let start = SimTime::from_secs_f64(1400.0);
        let end = SimTime::from_secs_f64(1900.0);
        let expected: Vec<SimTime> = full
            .iter()
            .filter(|&&t| t >= start && t < end)
            .map(|&t| SimTime::ZERO + t.saturating_since(start))
            .collect();
        assert_eq!(sliced, expected);
        assert!(!sliced.is_empty());
        assert!(sliced.iter().all(|&t| t < slice.duration()));
        assert_eq!(slice.duration(), SimTime::from_secs_f64(500.0));
    }

    #[test]
    fn slice_volume_tracks_expected_fraction() {
        let day = DiurnalTrace { n: 20_000, day_secs: 1200.0 };
        let slice = DiurnalSliceTrace { day, start_hour: 14, end_hour: 19 };
        let n = slice.arrivals(3).len() as f64;
        let expected = 20_000.0 * slice.expected_fraction();
        assert!(
            (n - expected).abs() < 0.1 * expected,
            "slice produced {n} arrivals, expected about {expected:.0}"
        );
    }

    #[test]
    fn hour_rate_peaks_midday() {
        let trace = DiurnalTrace { n: 10_000, day_secs: 1200.0 };
        assert!(trace.hour_rate(12) > 25.0 * trace.hour_rate(2));
    }
}
