//! The three evaluation applications.

use schemble_models::zoo;
use schemble_models::{DifficultyDist, Ensemble, SampleGenerator};

/// The paper's three applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Intelligent Q&A text matching (BiLSTM + RoBERTa + BERT).
    TextMatching,
    /// UA-DETRAC-style vehicle counting (three detectors, regression).
    VehicleCounting,
    /// R1M-style image retrieval (two DELG variants).
    ImageRetrieval,
}

impl TaskKind {
    /// All three tasks, in the paper's order.
    pub const ALL: [TaskKind; 3] =
        [TaskKind::TextMatching, TaskKind::VehicleCounting, TaskKind::ImageRetrieval];

    /// Short label used in experiment output ("TM"/"VC"/"IR").
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::TextMatching => "TM",
            TaskKind::VehicleCounting => "VC",
            TaskKind::ImageRetrieval => "IR",
        }
    }

    /// Builds the task's ensemble.
    pub fn ensemble(self, seed: u64) -> Ensemble {
        match self {
            TaskKind::TextMatching => zoo::text_matching(seed),
            TaskKind::VehicleCounting => zoo::vehicle_counting(seed),
            TaskKind::ImageRetrieval => zoo::image_retrieval(seed),
        }
    }

    /// The default (real-data-like, easy-heavy) difficulty distribution:
    /// Fig. 4a shows "a great proportion of samples possess a low discrepancy
    /// score around zero".
    pub fn default_difficulty(self) -> DifficultyDist {
        DifficultyDist::EasySkewed { exponent: 2.5 }
    }

    /// A sample generator for this task with the given difficulty law.
    pub fn generator(self, difficulty: DifficultyDist, seed: u64) -> SampleGenerator {
        let spec = self.ensemble(seed).spec;
        SampleGenerator::new(spec, difficulty, seed.wrapping_add(0x5a5a))
    }

    /// Like [`TaskKind::generator`] with the default difficulty law.
    pub fn default_generator(self, seed: u64) -> SampleGenerator {
        self.generator(self.default_difficulty(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_models::TaskSpec;

    #[test]
    fn labels_match_paper() {
        assert_eq!(TaskKind::TextMatching.label(), "TM");
        assert_eq!(TaskKind::VehicleCounting.label(), "VC");
        assert_eq!(TaskKind::ImageRetrieval.label(), "IR");
    }

    #[test]
    fn ensembles_have_expected_specs() {
        assert!(matches!(
            TaskKind::TextMatching.ensemble(1).spec,
            TaskSpec::Classification { num_classes: 2 }
        ));
        assert!(matches!(TaskKind::VehicleCounting.ensemble(1).spec, TaskSpec::Regression { .. }));
        assert!(matches!(TaskKind::ImageRetrieval.ensemble(1).spec, TaskSpec::Retrieval { .. }));
    }

    #[test]
    fn generator_spec_matches_ensemble_spec() {
        for task in TaskKind::ALL {
            let ens = task.ensemble(7);
            let g = task.default_generator(7);
            assert_eq!(g.spec, ens.spec, "{:?} generator/ensemble spec mismatch", task);
        }
    }

    #[test]
    fn default_difficulty_is_easy_heavy() {
        let g = TaskKind::TextMatching.default_generator(3);
        let mean: f64 = g.batch(0, 4000).iter().map(|s| s.difficulty).sum::<f64>() / 4000.0;
        assert!(mean < 0.4, "default difficulty should skew easy, mean {mean}");
    }
}
