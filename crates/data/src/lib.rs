//! Workload generation: samples, arrival traces and deadline assignment.
//!
//! The paper drives each application with a different query process
//! (§VIII, "Query traffic and evaluation metric"):
//!
//! * **Text matching** — a recorded one-day trace from a production Q&A
//!   system with a pronounced daytime burst (traffic "multiplied by 30"),
//!   constant deadlines. [`trace::DiurnalTrace`] reproduces the shape with a
//!   compressed day whose per-hour rates follow the paper's Fig. 1a profile.
//! * **Vehicle counting** — Poisson arrivals with constant rate; each query
//!   carries a deadline drawn per *camera* from a uniform distribution
//!   (locations have different priorities).
//! * **Image retrieval** — Poisson arrivals, constant deadlines.
//!
//! [`workload::Workload`] ties a sample generator, an arrival trace and a
//! deadline policy into the query stream consumed by the serving pipelines.

pub mod deadline;
pub mod task;
pub mod trace;
pub mod trace_io;
pub mod workload;

pub use deadline::DeadlinePolicy;
pub use task::TaskKind;
pub use trace::{ArrivalTrace, DiurnalSliceTrace, DiurnalTrace, PoissonTrace};
pub use trace_io::{RecordedTrace, TraceError};
pub use workload::{Query, Workload};
