//! Property-based tests of the simulation engine.

use proptest::prelude::*;
use schemble_sim::{EventQueue, Server, SimDuration, SimTime, TaskId};

proptest! {
    /// Events always pop in (time, insertion) order regardless of push order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0u64..1000, 1..50)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated on tie");
            }
        }
    }

    /// A server executing a random task sequence conserves work: busy time
    /// equals the sum of executed durations, and completions never overlap.
    #[test]
    fn server_conserves_work(durations in proptest::collection::vec(1u64..50, 1..30)) {
        let mut server = Server::new();
        let mut now = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        for (i, &d) in durations.iter().enumerate() {
            let dur = SimDuration::from_millis(d);
            let run = server.start_immediately(TaskId(i as u64), now, dur);
            prop_assert_eq!(run.completes_at, now + dur);
            server.complete(TaskId(i as u64), run.completes_at);
            now = run.completes_at;
            total = total.saturating_add(dur);
        }
        prop_assert_eq!(server.busy_time(), total);
        prop_assert_eq!(server.completed_tasks(), durations.len() as u64);
    }

    /// Backlog FIFO order is preserved under arbitrary enqueue patterns.
    #[test]
    fn backlog_is_fifo(durations in proptest::collection::vec(1u64..20, 1..20)) {
        let mut server = Server::new();
        for (i, &d) in durations.iter().enumerate() {
            server.enqueue(TaskId(i as u64), SimDuration::from_millis(d));
        }
        let mut now = SimTime::ZERO;
        for i in 0..durations.len() {
            let run = server.start_next(now).expect("backlog non-empty");
            prop_assert_eq!(run.task, TaskId(i as u64));
            server.complete(run.task, run.completes_at);
            now = run.completes_at;
        }
        prop_assert!(server.start_next(now).is_none());
    }

    /// available_at is exactly now + remaining work.
    #[test]
    fn available_at_matches_backlog_sum(durations in proptest::collection::vec(1u64..20, 0..15)) {
        let mut server = Server::new();
        let mut sum = 0u64;
        for (i, &d) in durations.iter().enumerate() {
            server.enqueue(TaskId(i as u64), SimDuration::from_millis(d));
            sum += d;
        }
        let now = SimTime::from_millis(5);
        prop_assert_eq!(server.available_at(now), now + SimDuration::from_millis(sum));
    }

    /// Time arithmetic round-trips through milliseconds and seconds.
    #[test]
    fn time_conversions_roundtrip(us in 0u64..10_000_000_000) {
        let t = SimTime::from_micros(us);
        prop_assert_eq!(SimTime::from_secs_f64(t.as_secs_f64()).as_micros() as i64 - us as i64, 0);
        let d = SimDuration::from_micros(us);
        prop_assert!((d.as_millis_f64() - us as f64 / 1000.0).abs() < 1e-6);
    }
}
