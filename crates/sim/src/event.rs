//! Totally ordered event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: fire time, tie-break sequence, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties deterministically in insertion order.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list with deterministic same-instant ordering.
///
/// Events scheduled for the same [`SimTime`] pop in the order they were
/// pushed, which makes whole-simulation runs reproducible regardless of heap
/// internals.
///
/// # Examples
///
/// ```
/// use schemble_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(20), "late");
/// q.push(SimTime::from_millis(10), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.now(), SimTime::from_millis(10));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// Current simulation clock: the fire time of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — an event in the
    /// past indicates a logic error in the caller, not a recoverable state.
    pub fn push(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {} < now {}",
            at.as_micros(),
            self.now.as_micros()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pops the next event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Fire time of the next event, if any, without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    fn can_push_at_current_instant_during_processing() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), 0u32);
        let (t, _) = q.pop().unwrap();
        q.push(t, 1); // same instant re-entry (e.g. immediate dispatch)
        q.push(t + SimDuration::from_millis(1), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn pushing_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        q.pop();
        q.push(SimTime::from_millis(5), ());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
