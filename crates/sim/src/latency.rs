//! Per-model execution-time models.
//!
//! The paper notes deep-network execution time is "approximately constant"
//! per model; in practice there is small jitter (kernel launch, memory
//! traffic). [`LatencyModel`] captures both: a nominal duration the scheduler
//! *plans with*, and a bounded jitter the simulator *charges*. Planning with
//! the nominal value while charging jittered values reproduces the mild
//! estimation error a real system would see.

use crate::time::SimDuration;
use rand::Rng;

/// Execution-time model for one base model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Nominal execution time, used by schedulers to plan completions.
    pub nominal: SimDuration,
    /// Half-width of the uniform jitter applied around the nominal value,
    /// as a fraction of it (e.g. `0.05` = ±5%).
    pub jitter_frac: f64,
}

impl LatencyModel {
    /// A model with the given nominal milliseconds and no jitter.
    pub fn constant_millis(ms: f64) -> Self {
        Self { nominal: SimDuration::from_millis_f64(ms), jitter_frac: 0.0 }
    }

    /// A model with nominal milliseconds and ±`jitter_frac` uniform jitter.
    ///
    /// # Panics
    /// Panics if `jitter_frac` is not in `[0, 1)`.
    pub fn jittered_millis(ms: f64, jitter_frac: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter_frac), "jitter_frac must be in [0,1)");
        Self { nominal: SimDuration::from_millis_f64(ms), jitter_frac }
    }

    /// Samples an actual execution time.
    pub fn sample(&self, rng: &mut impl Rng) -> SimDuration {
        // A zero nominal has nothing to jitter around (and an empty
        // `lo..hi` range would panic), so both branches short-circuit.
        if self.jitter_frac == 0.0 || self.nominal == SimDuration::ZERO {
            return self.nominal;
        }
        let n = self.nominal.as_micros() as f64;
        let lo = n * (1.0 - self.jitter_frac);
        let hi = n * (1.0 + self.jitter_frac);
        SimDuration::from_micros(rng.random_range(lo..hi).round() as u64)
    }

    /// The nominal duration used for planning.
    pub fn planned(&self) -> SimDuration {
        self.nominal
    }

    /// The `q`-quantile of the (uniform) execution-time distribution:
    /// `nominal * (1 - j + 2jq)`. This is what per-task timeouts are derived
    /// from — a timeout at `quantile(0.99)` kills the slowest ~1% of
    /// fault-free executions and essentially every straggler.
    pub fn quantile(&self, q: f64) -> SimDuration {
        debug_assert!((0.0..=1.0).contains(&q), "quantile out of [0,1]");
        let n = self.nominal.as_micros() as f64;
        SimDuration::from_micros(
            (n * (1.0 - self.jitter_frac + 2.0 * self.jitter_frac * q)).round() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    #[test]
    fn constant_model_has_no_jitter() {
        let m = LatencyModel::constant_millis(25.0);
        let mut rng = stream_rng(1, "lat");
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(25));
        }
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let m = LatencyModel::jittered_millis(100.0, 0.1);
        let mut rng = stream_rng(2, "lat");
        for _ in 0..1000 {
            let d = m.sample(&mut rng).as_micros() as f64;
            assert!((90_000.0..=110_000.0).contains(&d), "sample {d} out of ±10% band");
        }
    }

    #[test]
    fn jitter_mean_is_close_to_nominal() {
        let m = LatencyModel::jittered_millis(50.0, 0.2);
        let mut rng = stream_rng(3, "lat");
        let mean: f64 =
            (0..5000).map(|_| m.sample(&mut rng).as_micros() as f64).sum::<f64>() / 5000.0;
        assert!((mean - 50_000.0).abs() < 1_000.0, "mean {mean} too far from nominal");
    }

    #[test]
    #[should_panic(expected = "jitter_frac")]
    fn invalid_jitter_rejected() {
        let _ = LatencyModel::jittered_millis(10.0, 1.5);
    }
}

#[cfg(test)]
mod zero_nominal_tests {
    use super::*;
    use crate::rng::stream_rng;

    #[test]
    fn zero_nominal_with_jitter_does_not_panic() {
        let m = LatencyModel::jittered_millis(0.0, 0.1);
        let mut rng = stream_rng(1, "zero");
        assert_eq!(m.sample(&mut rng), SimDuration::ZERO);
    }
}
