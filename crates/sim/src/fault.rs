//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] describes *what goes wrong and when*: per-executor
//! crash/recover windows, latency-multiplier straggler episodes, and a
//! transient task-failure probability. The plan is pure data; both the DES
//! backend and the threaded serving backend interpret it through a shared
//! [`FaultState`], which owns the single `"faults"` RNG stream. Because the
//! two backends submit tasks in the same order and call [`FaultState`] at the
//! same points, a DES run and a virtual-clock serve run under the same plan
//! and seed stay bit-identical.
//!
//! Semantics:
//!
//! * **Crash windows** — the executor is *down* on `[from, until)`. The task
//!   it was running is killed (and reported failed), its backlog is dropped
//!   (each entry reported failed), and no new work may start until `until`.
//! * **Straggler episodes** — task durations sampled while an episode is
//!   active are multiplied by `multiplier` (the max over overlapping
//!   episodes). The multiplier is applied at *submission* time, matching the
//!   backends' sampling-at-submission contract.
//! * **Transient failures** — each submitted task independently fails with
//!   probability `transient_p`, part-way through its execution.
//! * **Timeouts** — orthogonal to the plan file: a task whose (post-fault)
//!   duration exceeds the executor's timeout (a profiled latency quantile,
//!   see [`LatencyModel::quantile`]) is killed at the timeout and reported
//!   failed. This is how stragglers are actually *detected* by the runtime.

use crate::latency::LatencyModel;
use crate::rng::stream_rng;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// One crash/recover window: the executor is down on `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// Executor index the window applies to.
    pub executor: usize,
    /// Instant the executor goes down.
    pub from: SimTime,
    /// Instant the executor recovers.
    pub until: SimTime,
}

/// One straggler episode: task durations sampled on `[from, until)` are
/// stretched by `multiplier`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerEpisode {
    /// Executor index the episode applies to.
    pub executor: usize,
    /// Episode start.
    pub from: SimTime,
    /// Episode end.
    pub until: SimTime,
    /// Latency multiplier (≥ 1.0).
    pub multiplier: f64,
}

/// A deterministic fault schedule, shared verbatim by both backends.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Crash/recover windows.
    pub crashes: Vec<CrashWindow>,
    /// Straggler episodes.
    pub stragglers: Vec<StragglerEpisode>,
    /// Per-task transient failure probability in `[0, 1)`.
    pub transient_p: f64,
    /// Per-task timeout as a quantile of the executor's latency model
    /// (e.g. `0.99`). `None` disables timeouts.
    pub timeout_quantile: Option<f64>,
}

/// An up/down transition derived from the plan's crash windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTransition {
    /// When the transition happens.
    pub at: SimTime,
    /// Which executor transitions.
    pub executor: usize,
    /// `true` = comes back up, `false` = goes down.
    pub up: bool,
}

impl FaultPlan {
    /// True when the plan injects nothing — backends with a no-op plan behave
    /// byte-identically to backends with no plan at all.
    pub fn is_noop(&self) -> bool {
        self.crashes.is_empty()
            && self.stragglers.is_empty()
            && self.transient_p == 0.0
            && self.timeout_quantile.is_none()
    }

    /// Parses the line-oriented fault-plan file format:
    ///
    /// ```text
    /// # comment
    /// crash <executor> <from_secs> <until_secs>
    /// straggle <executor> <from_secs> <until_secs> <multiplier>
    /// transient <probability>
    /// timeout-q <quantile>
    /// ```
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("fault plan line {}: {msg}: `{raw}`", i + 1);
            let mut it = line.split_whitespace();
            let kind = it.next().unwrap_or("");
            let fields: Vec<&str> = it.collect();
            match kind {
                "crash" => {
                    let [e, from, until] = fields[..] else {
                        return Err(err("expected `crash <executor> <from_s> <until_s>`"));
                    };
                    let w = CrashWindow {
                        executor: e.parse().map_err(|_| err("bad executor"))?,
                        from: parse_secs(from).map_err(&err)?,
                        until: parse_secs(until).map_err(&err)?,
                    };
                    if w.until <= w.from {
                        return Err(err("window must satisfy from < until"));
                    }
                    plan.crashes.push(w);
                }
                "straggle" => {
                    let [e, from, until, mult] = fields[..] else {
                        return Err(err(
                            "expected `straggle <executor> <from_s> <until_s> <multiplier>`",
                        ));
                    };
                    let ep = StragglerEpisode {
                        executor: e.parse().map_err(|_| err("bad executor"))?,
                        from: parse_secs(from).map_err(&err)?,
                        until: parse_secs(until).map_err(&err)?,
                        multiplier: mult.parse().map_err(|_| err("bad multiplier"))?,
                    };
                    if ep.until <= ep.from {
                        return Err(err("episode must satisfy from < until"));
                    }
                    if ep.multiplier < 1.0 || ep.multiplier.is_nan() {
                        return Err(err("multiplier must be >= 1.0"));
                    }
                    plan.stragglers.push(ep);
                }
                "transient" => {
                    let [p] = fields[..] else {
                        return Err(err("expected `transient <probability>`"));
                    };
                    let p: f64 = p.parse().map_err(|_| err("bad probability"))?;
                    if !(0.0..1.0).contains(&p) {
                        return Err(err("probability must be in [0, 1)"));
                    }
                    plan.transient_p = p;
                }
                "timeout-q" => {
                    let [q] = fields[..] else {
                        return Err(err("expected `timeout-q <quantile>`"));
                    };
                    let q: f64 = q.parse().map_err(|_| err("bad quantile"))?;
                    if !(0.0..=1.0).contains(&q) {
                        return Err(err("quantile must be in [0, 1]"));
                    }
                    plan.timeout_quantile = Some(q);
                }
                other => return Err(err(&format!("unknown directive `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// Up/down transitions from the crash windows, with overlapping windows
    /// per executor merged, sorted by `(at, executor, up)`. Pushing these
    /// into an event queue before any arrival gives both backends the same
    /// total order of fault events.
    pub fn transitions(&self) -> Vec<FaultTransition> {
        let mut per_exec: std::collections::BTreeMap<usize, Vec<(SimTime, SimTime)>> =
            std::collections::BTreeMap::new();
        for w in &self.crashes {
            per_exec.entry(w.executor).or_default().push((w.from, w.until));
        }
        let mut out = Vec::new();
        for (executor, mut windows) in per_exec {
            windows.sort();
            let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
            for (from, until) in windows {
                match merged.last_mut() {
                    Some((_, end)) if from <= *end => *end = (*end).max(until),
                    _ => merged.push((from, until)),
                }
            }
            for (from, until) in merged {
                out.push(FaultTransition { at: from, executor, up: false });
                out.push(FaultTransition { at: until, executor, up: true });
            }
        }
        out.sort_by_key(|t| (t.at, t.executor, t.up));
        out
    }

    /// True when `executor` is inside any crash window at `t`.
    pub fn is_down(&self, executor: usize, t: SimTime) -> bool {
        self.crashes.iter().any(|w| w.executor == executor && w.from <= t && t < w.until)
    }
}

fn parse_secs(s: &str) -> Result<SimTime, &'static str> {
    let v: f64 = s.parse().map_err(|_| "bad time")?;
    if v < 0.0 {
        return Err("time must be >= 0");
    }
    Ok(SimTime::from_secs_f64(v))
}

/// The fate of one submitted task under the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskFate {
    /// Time the executor is occupied by the task (truncated at the failure
    /// point or timeout when `failed`).
    pub duration: SimDuration,
    /// Whether the task ends in failure instead of a completion.
    pub failed: bool,
}

/// Live interpreter of a [`FaultPlan`]: owns the dedicated `"faults"` RNG
/// stream, so fault draws never perturb workload or latency streams.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultState {
    /// Builds the interpreter for `plan` under the run's root `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self { plan, rng: stream_rng(seed, "faults") }
    }

    /// The plan being interpreted.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The straggler multiplier in force on `executor` at `t` (max over
    /// active episodes; `1.0` when none).
    pub fn straggler_multiplier(&self, executor: usize, t: SimTime) -> f64 {
        self.plan
            .stragglers
            .iter()
            .filter(|e| e.executor == executor && e.from <= t && t < e.until)
            .map(|e| e.multiplier)
            .fold(1.0, f64::max)
    }

    /// Per-task timeout for an executor with latency model `model`, if the
    /// plan configures one.
    pub fn timeout_for(&self, model: &LatencyModel) -> Option<SimDuration> {
        self.plan.timeout_quantile.map(|q| model.quantile(q))
    }

    /// Decides the fate of a task submitted to `executor` at `now` whose
    /// fault-free sampled duration is `sampled`, under timeout `timeout`.
    ///
    /// Draw discipline (critical for cross-backend determinism): when
    /// `transient_p > 0`, exactly one roll is drawn per submission, plus one
    /// failure-fraction draw *only* when the roll fails. Both backends submit
    /// in the same order, so the `"faults"` stream stays aligned. When the
    /// plan is a no-op the stream is never touched.
    pub fn task_fate(
        &mut self,
        executor: usize,
        now: SimTime,
        sampled: SimDuration,
        timeout: Option<SimDuration>,
    ) -> TaskFate {
        let mult = self.straggler_multiplier(executor, now);
        let effective = if mult > 1.0 {
            SimDuration::from_micros((sampled.as_micros() as f64 * mult).round() as u64)
        } else {
            sampled
        };
        if self.plan.transient_p > 0.0 {
            let roll: f64 = self.rng.random_range(0.0..1.0);
            if roll < self.plan.transient_p {
                // Fails part-way through: the executor is still occupied for
                // a fraction of the work before the failure surfaces.
                let frac: f64 = self.rng.random_range(0.05..0.95);
                let spent =
                    SimDuration::from_micros((effective.as_micros() as f64 * frac).round() as u64);
                let spent = match timeout {
                    Some(cap) if cap < spent => cap,
                    _ => spent,
                };
                return TaskFate { duration: spent, failed: true };
            }
        }
        match timeout {
            Some(cap) if effective > cap => TaskFate { duration: cap, failed: true },
            _ => TaskFate { duration: effective, failed: false },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn parses_all_directives_and_comments() {
        let plan = FaultPlan::parse(
            "# gauntlet\ncrash 1 0.5 2.0\nstraggle 0 1.0 3.0 4.0  # slow\ntransient 0.05\ntimeout-q 0.99\n\n",
        )
        .expect("plan must parse");
        assert_eq!(plan.crashes.len(), 1);
        assert_eq!(plan.crashes[0].executor, 1);
        assert_eq!(plan.stragglers[0].multiplier, 4.0);
        assert_eq!(plan.transient_p, 0.05);
        assert_eq!(plan.timeout_quantile, Some(0.99));
        assert!(!plan.is_noop());
        assert!(FaultPlan::default().is_noop());
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "crash 0 2.0 1.0",
            "crash x 0 1",
            "straggle 0 0 1 0.5",
            "transient 1.5",
            "timeout-q 2",
            "flarp 1 2 3",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn transitions_merge_overlaps_and_sort() {
        let plan = FaultPlan::parse("crash 0 1 3\ncrash 0 2 4\ncrash 1 0.5 1").unwrap();
        let ts = plan.transitions();
        assert_eq!(
            ts,
            vec![
                FaultTransition { at: at(0.5), executor: 1, up: false },
                FaultTransition { at: at(1.0), executor: 0, up: false },
                FaultTransition { at: at(1.0), executor: 1, up: true },
                FaultTransition { at: at(4.0), executor: 0, up: true },
            ]
        );
        assert!(plan.is_down(0, at(3.5)));
        assert!(!plan.is_down(0, at(4.0)), "recovery instant is up");
        assert!(!plan.is_down(1, at(2.0)));
    }

    #[test]
    fn straggler_multiplier_takes_max_of_active_episodes() {
        let plan = FaultPlan::parse("straggle 0 1 5 2.0\nstraggle 0 2 3 6.0").unwrap();
        let st = FaultState::new(plan, 1);
        assert_eq!(st.straggler_multiplier(0, at(0.5)), 1.0);
        assert_eq!(st.straggler_multiplier(0, at(1.5)), 2.0);
        assert_eq!(st.straggler_multiplier(0, at(2.5)), 6.0);
        assert_eq!(st.straggler_multiplier(1, at(2.5)), 1.0);
    }

    #[test]
    fn task_fate_is_deterministic_per_seed() {
        let plan = FaultPlan::parse("transient 0.3\nstraggle 0 0 10 3.0").unwrap();
        let run = |seed| {
            let mut st = FaultState::new(plan.clone(), seed);
            (0..50)
                .map(|i| st.task_fate(0, at(i as f64 * 0.1), SimDuration::from_millis(20), None))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same fates");
        assert_ne!(run(7), run(8), "different seed, different fates");
        let fates = run(7);
        assert!(fates.iter().any(|f| f.failed), "p=0.3 over 50 draws must fail sometimes");
        assert!(fates.iter().any(|f| !f.failed));
        // Straggled successes are 3x the 20ms nominal.
        assert!(fates
            .iter()
            .filter(|f| !f.failed)
            .all(|f| f.duration == SimDuration::from_millis(60)));
    }

    #[test]
    fn timeout_truncates_and_fails_long_tasks() {
        let plan = FaultPlan::parse("straggle 0 0 10 5.0").unwrap();
        let mut st = FaultState::new(plan, 1);
        let cap = SimDuration::from_millis(30);
        let fate = st.task_fate(0, at(1.0), SimDuration::from_millis(20), Some(cap));
        assert_eq!(fate, TaskFate { duration: cap, failed: true });
        let ok = st.task_fate(1, at(1.0), SimDuration::from_millis(20), Some(cap));
        assert_eq!(ok, TaskFate { duration: SimDuration::from_millis(20), failed: false });
    }
}
