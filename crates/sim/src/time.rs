//! Integer simulation time.
//!
//! Time is counted in microseconds from simulation start. Microsecond
//! resolution is three orders of magnitude finer than the millisecond-scale
//! deadlines in the paper, and a `u64` lasts ~584 000 years — plenty for a
//! one-day trace.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from (possibly fractional) seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimTime");
        SimTime((s * 1e6).round() as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as `f64` (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds since the epoch as `f64` (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from (possibly fractional) seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimDuration");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Builds a span from (possibly fractional) milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        debug_assert!(ms >= 0.0, "negative SimDuration");
        SimDuration((ms * 1e3).round() as u64)
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds as `f64` (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating sum of two spans.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(100).as_micros(), 100_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert!((SimTime::from_micros(2_500_000).as_secs_f64() - 2.5).abs() < 1e-12);
        assert!((SimDuration::from_millis_f64(0.5).as_micros()) == 500);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!(SimTime::from_micros(5) < SimTime::from_micros(6));
        assert_eq!(SimTime::from_micros(5).max(SimTime::from_micros(6)), SimTime::from_micros(6));
    }
}
