//! Deterministic discrete-event simulation engine.
//!
//! The paper evaluates Schemble on a GPU server executing base-model
//! inference tasks non-preemptively. This crate substitutes that testbed with
//! a discrete-event simulator exposing exactly the observables the scheduler
//! consumes: a virtual clock, per-model servers with FIFO task queues and
//! known (approximately constant) execution times, and a totally ordered
//! event stream.
//!
//! Design points:
//!
//! * **Integer time.** [`SimTime`]/[`SimDuration`] are microsecond counters
//!   (`u64`). Floating-point time makes event ordering platform-dependent;
//!   integer microseconds keep every run bit-reproducible.
//! * **Total event order.** The event heap breaks time ties with a
//!   monotonically increasing sequence number, so two events at the same
//!   instant always pop in insertion order.
//! * **Servers are passive.** A [`Server`] models one deployed base model:
//!   it tracks the task currently executing and a FIFO backlog. Scheduling
//!   *policy* lives upstream (in `schemble-core`); the server only answers
//!   "when would a task enqueued now finish?".
//! * **Deterministic randomness.** [`rng::derive_seed`] splits a root seed
//!   into independent named streams so workload generation, latency jitter
//!   and model noise never share state.

pub mod batch;
pub mod event;
pub mod fault;
pub mod latency;
pub mod rng;
pub mod server;
pub mod time;

pub use batch::{BatchConfig, BatchCurve};
pub use event::EventQueue;
pub use fault::{CrashWindow, FaultPlan, FaultState, FaultTransition, StragglerEpisode, TaskFate};
pub use latency::LatencyModel;
pub use server::{Server, ServerBank, TaskId};
pub use time::{SimDuration, SimTime};
