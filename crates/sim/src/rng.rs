//! Deterministic seed derivation.
//!
//! Every stochastic component of the reproduction (arrival process, model
//! noise, latency jitter, NN initialisation, …) draws from its own RNG whose
//! seed is derived from a single root seed plus a stream label. This makes
//! experiments reproducible end-to-end while keeping the streams
//! statistically independent: changing how many numbers one component draws
//! never perturbs another.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from `root` and a stream `label` using the SplitMix64
/// finaliser over the FNV-1a hash of the label. The finaliser's avalanche
/// behaviour keeps nearby roots/labels uncorrelated.
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(root ^ h)
}

/// A ready-to-use RNG for the stream `label` under `root`.
pub fn stream_rng(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

/// Derives a child seed from `root` and a numeric stream id. Cheaper than
/// [`derive_seed`] (no string hashing) — used on hot per-inference paths
/// where the stream is identified by a sample id.
pub fn mix(root: u64, stream: u64) -> u64 {
    splitmix64(root ^ splitmix64(stream))
}

/// A ready-to-use RNG for numeric stream `stream` under `root`.
pub fn stream_rng_u64(root: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(mix(root, stream))
}

/// SplitMix64 finaliser: a cheap avalanche mix of a 64-bit value. Public
/// because shard routing uses it as a seed-independent hash of query ids.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(derive_seed(42, "arrivals"), derive_seed(42, "arrivals"));
    }

    #[test]
    fn different_labels_differ() {
        assert_ne!(derive_seed(42, "arrivals"), derive_seed(42, "latency"));
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(derive_seed(1, "arrivals"), derive_seed(2, "arrivals"));
    }

    #[test]
    fn stream_rng_is_reproducible() {
        let a: Vec<u32> = {
            let mut r = stream_rng(7, "x");
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u32> = {
            let mut r = stream_rng(7, "x");
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn adjacent_roots_produce_unrelated_streams() {
        let mut r1 = stream_rng(100, "s");
        let mut r2 = stream_rng(101, "s");
        let a: Vec<u8> = (0..32).map(|_| r1.random()).collect();
        let b: Vec<u8> = (0..32).map(|_| r2.random()).collect();
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod mix_tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
        assert_ne!(mix(1, 2), mix(2, 2));
        // sequential streams must not be sequential seeds
        assert!(mix(1, 3).abs_diff(mix(1, 2)) > 1000);
    }
}
