//! Batched-execution latency curves and configuration.
//!
//! Production model servers amortise per-invocation overhead by running one
//! forward pass over a batch of requests. The cost of that pass is well
//! approximated by an affine curve in the batch size,
//! `lat(b) = base + b · per_item`, normalised here so a batch of one costs
//! exactly the model's profiled single-task latency: scaling a sampled
//! duration by [`BatchCurve::gamma`]`(1) == 1.0` reproduces the unbatched
//! number bit for bit, which is what keeps `batch_max = 1` runs
//! byte-identical to a build without batching.

use crate::time::SimDuration;

/// A monotone batch-latency curve, `lat(b) = gamma(b) · lat(1)`.
///
/// `gamma(b) = (base_frac + b · per_item_frac) / (base_frac + per_item_frac)`
/// — the affine curve `base + b · per_item` with the fractions expressing the
/// fixed-versus-marginal split of the single-task latency. `gamma(1)` is
/// `1.0` *exactly* for every split, so a batch of one always costs the plain
/// sampled duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCurve {
    /// Fraction of a single task's latency that is fixed per batch
    /// (weight loads, kernel launch, dispatch overhead).
    pub base_frac: f64,
    /// Fraction of a single task's latency paid again per extra member.
    pub per_item_frac: f64,
}

impl Default for BatchCurve {
    /// A GPU-flavoured split: 85% of a single task is batch-fixed cost,
    /// 15% is per-member — `gamma(16) = 3.25`, i.e. a full batch of 16
    /// finishes ~4.9× more tasks per unit time than 16 singleton runs.
    fn default() -> Self {
        Self { base_frac: 0.85, per_item_frac: 0.15 }
    }
}

impl BatchCurve {
    /// The latency multiplier for a batch of `b` tasks. `gamma(1) == 1.0`
    /// exactly; monotone non-decreasing in `b` for non-negative fractions.
    pub fn gamma(&self, b: usize) -> f64 {
        debug_assert!(b >= 1, "a batch holds at least one task");
        (self.base_frac + b as f64 * self.per_item_frac) / (self.base_frac + self.per_item_frac)
    }

    /// Scales a single-task duration to the batched service time of a batch
    /// of `b`. `b == 1` returns `d` unchanged (no float round-trip).
    pub fn scale(&self, d: SimDuration, b: usize) -> SimDuration {
        if b <= 1 {
            return d;
        }
        SimDuration::from_micros((d.as_micros() as f64 * self.gamma(b)).round() as u64)
    }
}

/// Cross-query batching knobs for an execution backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Largest batch an executor forms; reaching it launches immediately.
    pub batch_max: usize,
    /// How long an open batch waits for more members before launching
    /// anyway. Low load therefore degrades to batches of one after at most
    /// this delay.
    pub window: SimDuration,
    /// The executor's batch-latency curve.
    pub curve: BatchCurve,
}

impl BatchConfig {
    /// A config batching up to `batch_max` per executor with the default
    /// curve and `window`.
    pub fn new(batch_max: usize, window: SimDuration) -> Self {
        Self { batch_max, window, curve: BatchCurve::default() }
    }

    /// Whether this config batches at all. `batch_max <= 1` is the off
    /// switch: callers treat an inactive config exactly like `None`, which
    /// is what makes `--batch-max 1` byte-identical to an unbatched build.
    pub fn active(&self) -> bool {
        self.batch_max > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_is_one_at_batch_of_one() {
        for curve in [
            BatchCurve::default(),
            BatchCurve { base_frac: 0.5, per_item_frac: 0.5 },
            BatchCurve { base_frac: 1.0, per_item_frac: 0.0 },
        ] {
            assert_eq!(curve.gamma(1), 1.0, "{curve:?}");
            let d = SimDuration::from_micros(12_345);
            assert_eq!(curve.scale(d, 1), d);
        }
    }

    #[test]
    fn gamma_is_monotone_and_sublinear() {
        let curve = BatchCurve::default();
        let mut prev = curve.gamma(1);
        for b in 2..=32 {
            let g = curve.gamma(b);
            assert!(g > prev, "gamma must grow with batch size");
            assert!(g < b as f64, "batching must beat running singletons");
            prev = g;
        }
        // The default split amortises well: a full batch of 16 costs 3.25×
        // one task, i.e. ~4.9× throughput.
        assert!((curve.gamma(16) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn scale_rounds_to_whole_micros() {
        let curve = BatchCurve::default();
        let d = SimDuration::from_micros(1_000);
        assert_eq!(curve.scale(d, 2), SimDuration::from_micros(1_150));
        assert_eq!(curve.scale(d, 16), SimDuration::from_micros(3_250));
    }

    #[test]
    fn config_activity_switch() {
        assert!(!BatchConfig::new(1, SimDuration::from_millis(2)).active());
        assert!(!BatchConfig::new(0, SimDuration::from_millis(2)).active());
        assert!(BatchConfig::new(2, SimDuration::from_millis(2)).active());
    }
}
