//! Model servers: non-preemptive single-task executors with FIFO backlogs.
//!
//! One [`Server`] models one deployed base model. It executes at most one
//! inference task at a time (deep-network execution is non-preemptive) and
//! keeps a FIFO backlog of tasks that have been *committed* to it. Policies
//! that want to delay commitment (Schemble's query buffer) simply keep tasks
//! out of the backlog until a server idles.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Identifier of an inference task. In the serving pipelines a task is
/// "query *q* on the model this server hosts", so the id carries the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// A pending task in a server backlog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    task: TaskId,
    duration: SimDuration,
}

/// A running task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Running {
    /// The executing task.
    pub task: TaskId,
    /// When it started.
    pub started_at: SimTime,
    /// When it will complete.
    pub completes_at: SimTime,
}

/// One deployed base model: a non-preemptive executor plus FIFO backlog.
#[derive(Debug, Default)]
pub struct Server {
    running: Option<Running>,
    backlog: VecDeque<Pending>,
    /// Cumulative busy time, for utilisation reporting.
    busy: SimDuration,
    /// Number of tasks completed, for reporting.
    completed: u64,
}

impl Server {
    /// A fresh idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no task is executing (the backlog may still be non-empty;
    /// callers drive `start_next` explicitly so completion events stay in
    /// the event queue's control).
    pub fn is_idle(&self) -> bool {
        self.running.is_none()
    }

    /// The currently running task, if any.
    pub fn running(&self) -> Option<Running> {
        self.running
    }

    /// Number of tasks waiting in the backlog.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Appends a committed task to the backlog.
    pub fn enqueue(&mut self, task: TaskId, duration: SimDuration) {
        self.backlog.push_back(Pending { task, duration });
    }

    /// Pushes a committed task to the *front* of the backlog (EDF re-ordering
    /// by policies that re-plan on arrival).
    pub fn enqueue_front(&mut self, task: TaskId, duration: SimDuration) {
        self.backlog.push_front(Pending { task, duration });
    }

    /// Drops every backlog entry (used when a policy re-plans from scratch);
    /// the running task, being non-preemptive, is unaffected. Returns the
    /// dropped tasks.
    pub fn drain_backlog(&mut self) -> Vec<TaskId> {
        self.backlog.drain(..).map(|p| p.task).collect()
    }

    /// Starts the next backlog task if the server is idle. Returns its
    /// completion time so the caller can schedule the completion event.
    pub fn start_next(&mut self, now: SimTime) -> Option<Running> {
        if self.running.is_some() {
            return None;
        }
        let pending = self.backlog.pop_front()?;
        let run =
            Running { task: pending.task, started_at: now, completes_at: now + pending.duration };
        self.running = Some(run);
        Some(run)
    }

    /// Starts `task` immediately, bypassing the backlog.
    ///
    /// # Panics
    /// Panics if the server is busy — dispatching onto a busy server is a
    /// policy bug, not a runtime condition.
    pub fn start_immediately(
        &mut self,
        task: TaskId,
        now: SimTime,
        duration: SimDuration,
    ) -> Running {
        assert!(self.running.is_none(), "dispatch onto busy server");
        let run = Running { task, started_at: now, completes_at: now + duration };
        self.running = Some(run);
        run
    }

    /// Marks the running task complete.
    ///
    /// # Panics
    /// Panics if `task` is not the running task — a completion event for the
    /// wrong task means the event plumbing is corrupt.
    pub fn complete(&mut self, task: TaskId, now: SimTime) {
        let run = self.running.take().expect("completion on idle server");
        assert_eq!(run.task, task, "completion for wrong task");
        debug_assert_eq!(run.completes_at, now, "completion at wrong time");
        self.busy = self.busy.saturating_add(now.saturating_since(run.started_at));
        self.completed += 1;
    }

    /// Marks the running task *failed*: the server idles, busy time up to
    /// `now` is charged, but the completed-task counter does not move.
    ///
    /// # Panics
    /// Panics if `task` is not the running task.
    pub fn fail(&mut self, task: TaskId, now: SimTime) {
        let run = self.running.take().expect("failure on idle server");
        assert_eq!(run.task, task, "failure for wrong task");
        self.busy = self.busy.saturating_add(now.saturating_since(run.started_at));
        // `completed` intentionally not incremented.
    }

    /// Kills whatever is running (executor crash): charges the partial busy
    /// time and returns the killed task, if any. The backlog is untouched —
    /// callers drop it separately via [`Server::drain_backlog`].
    pub fn kill(&mut self, now: SimTime) -> Option<TaskId> {
        let run = self.running.take()?;
        self.busy = self.busy.saturating_add(now.saturating_since(run.started_at));
        Some(run.task)
    }

    /// Earliest time a *newly appended* task could start: now if idle with an
    /// empty backlog, otherwise after the running task and every backlog entry.
    pub fn available_at(&self, now: SimTime) -> SimTime {
        let mut t = match self.running {
            Some(run) => run.completes_at,
            None => now,
        };
        for p in &self.backlog {
            t += p.duration;
        }
        t
    }

    /// Cumulative busy time (completed tasks only).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of completed tasks.
    pub fn completed_tasks(&self) -> u64 {
        self.completed
    }
}

/// A bank of `m` model servers, one per base model in the ensemble.
#[derive(Debug, Default)]
pub struct ServerBank {
    servers: Vec<Server>,
}

impl ServerBank {
    /// `m` fresh idle servers.
    pub fn new(m: usize) -> Self {
        Self { servers: (0..m).map(|_| Server::new()).collect() }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the bank has no servers.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Borrow of server `k`.
    pub fn get(&self, k: usize) -> &Server {
        &self.servers[k]
    }

    /// Mutable borrow of server `k`.
    pub fn get_mut(&mut self, k: usize) -> &mut Server {
        &mut self.servers[k]
    }

    /// Indices of servers currently idle.
    pub fn idle_indices(&self) -> Vec<usize> {
        self.servers.iter().enumerate().filter_map(|(k, s)| s.is_idle().then_some(k)).collect()
    }

    /// True if any server is idle.
    pub fn any_idle(&self) -> bool {
        self.servers.iter().any(Server::is_idle)
    }

    /// Per-server `available_at` vector — the scheduler's "base models'
    /// remained execution time" input from Alg. 1.
    pub fn availability(&self, now: SimTime) -> Vec<SimTime> {
        self.servers.iter().map(|s| s.available_at(now)).collect()
    }

    /// Iterate over servers.
    pub fn iter(&self) -> impl Iterator<Item = &Server> {
        self.servers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn fifo_backlog_executes_in_order() {
        let mut s = Server::new();
        s.enqueue(TaskId(1), ms(10));
        s.enqueue(TaskId(2), ms(20));
        let r1 = s.start_next(at(0)).unwrap();
        assert_eq!(r1.task, TaskId(1));
        assert_eq!(r1.completes_at, at(10));
        assert!(s.start_next(at(0)).is_none(), "busy server must refuse");
        s.complete(TaskId(1), at(10));
        let r2 = s.start_next(at(10)).unwrap();
        assert_eq!(r2.task, TaskId(2));
        assert_eq!(r2.completes_at, at(30));
    }

    #[test]
    fn available_at_accounts_for_running_and_backlog() {
        let mut s = Server::new();
        assert_eq!(s.available_at(at(5)), at(5));
        s.enqueue(TaskId(1), ms(10));
        s.start_next(at(0));
        s.enqueue(TaskId(2), ms(20));
        assert_eq!(s.available_at(at(3)), at(30));
    }

    #[test]
    fn busy_time_accumulates() {
        let mut s = Server::new();
        s.start_immediately(TaskId(9), at(0), ms(15));
        s.complete(TaskId(9), at(15));
        assert_eq!(s.busy_time(), ms(15));
        assert_eq!(s.completed_tasks(), 1);
    }

    #[test]
    #[should_panic(expected = "busy server")]
    fn double_dispatch_panics() {
        let mut s = Server::new();
        s.start_immediately(TaskId(1), at(0), ms(5));
        s.start_immediately(TaskId(2), at(1), ms(5));
    }

    #[test]
    #[should_panic(expected = "wrong task")]
    fn mismatched_completion_panics() {
        let mut s = Server::new();
        s.start_immediately(TaskId(1), at(0), ms(5));
        s.complete(TaskId(2), at(5));
    }

    #[test]
    fn drain_backlog_clears_pending_only() {
        let mut s = Server::new();
        s.enqueue(TaskId(1), ms(1));
        s.start_next(at(0));
        s.enqueue(TaskId(2), ms(1));
        s.enqueue(TaskId(3), ms(1));
        let dropped = s.drain_backlog();
        assert_eq!(dropped, vec![TaskId(2), TaskId(3)]);
        assert!(s.running().is_some());
        assert_eq!(s.backlog_len(), 0);
    }

    #[test]
    fn bank_tracks_idleness() {
        let mut bank = ServerBank::new(3);
        assert_eq!(bank.idle_indices(), vec![0, 1, 2]);
        bank.get_mut(1).start_immediately(TaskId(7), at(0), ms(10));
        assert_eq!(bank.idle_indices(), vec![0, 2]);
        assert!(bank.any_idle());
        let avail = bank.availability(at(2));
        assert_eq!(avail, vec![at(2), at(10), at(2)]);
    }

    #[test]
    fn fail_charges_busy_without_counting_completion() {
        let mut s = Server::new();
        s.start_immediately(TaskId(4), at(0), ms(10));
        s.fail(TaskId(4), at(6));
        assert!(s.is_idle());
        assert_eq!(s.busy_time(), ms(6));
        assert_eq!(s.completed_tasks(), 0);
    }

    #[test]
    fn kill_takes_running_task_and_charges_partial_time() {
        let mut s = Server::new();
        assert_eq!(s.kill(at(1)), None, "idle kill is a no-op");
        s.enqueue(TaskId(8), ms(5));
        s.start_next(at(0));
        assert_eq!(s.kill(at(2)), Some(TaskId(8)));
        assert!(s.is_idle());
        assert_eq!(s.busy_time(), ms(2));
        assert_eq!(s.completed_tasks(), 0);
    }

    #[test]
    fn enqueue_front_reorders() {
        let mut s = Server::new();
        s.enqueue(TaskId(1), ms(1));
        s.enqueue_front(TaskId(2), ms(1));
        assert_eq!(s.start_next(at(0)).unwrap().task, TaskId(2));
    }
}
