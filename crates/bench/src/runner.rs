//! Uniform access to all six Table-I methods.

use schemble_baselines::{run_baseline, BaselineKind};
use schemble_core::experiment::{ExperimentContext, PipelineKind};
use schemble_data::Workload;
use schemble_metrics::RunSummary;

/// A method under evaluation: a core pipeline or a feature-based baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// One of the pipelines implemented in `schemble-core`.
    Core(PipelineKind),
    /// DES or Gating from `schemble-baselines`.
    Baseline(BaselineKind),
}

impl Method {
    /// Table label.
    pub fn label(&self) -> String {
        match self {
            Method::Core(kind) => kind.label(),
            Method::Baseline(kind) => kind.label().to_string(),
        }
    }
}

/// The six methods of Table I, in the paper's row order.
pub fn standard_methods() -> Vec<Method> {
    vec![
        Method::Core(PipelineKind::Original),
        Method::Core(PipelineKind::Static),
        Method::Baseline(BaselineKind::Des),
        Method::Baseline(BaselineKind::Gating),
        Method::Core(PipelineKind::SchembleEa),
        Method::Core(PipelineKind::Schemble),
    ]
}

/// Runs one method over a workload reusing the context's trained artifacts.
pub fn run_method(ctx: &mut ExperimentContext, method: Method, workload: &Workload) -> RunSummary {
    match method {
        Method::Core(kind) => ctx.run(kind, workload),
        Method::Baseline(kind) => run_baseline(
            kind,
            &ctx.ensemble,
            &ctx.generator,
            workload,
            ctx.config.admission,
            ctx.config.history_n,
            ctx.config.seed,
        ),
    }
}

/// True when `QUICK=1` is set — drivers shrink their workloads.
pub fn quick() -> bool {
    std::env::var("QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Scales a default size down in quick mode.
pub fn sized(full: usize) -> usize {
    if quick() {
        (full / 10).max(100)
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_standard_methods_with_paper_labels() {
        let methods = standard_methods();
        let labels: Vec<String> = methods.iter().map(Method::label).collect();
        assert_eq!(labels, vec!["Original", "Static", "DES", "Gating", "Schemble(ea)", "Schemble"]);
    }

    #[test]
    fn sized_scales_in_quick_mode_only() {
        // Not setting QUICK here (env mutation races with other tests);
        // just exercise the arithmetic.
        assert!(sized(5000) == 5000 || sized(5000) == 500);
    }
}
