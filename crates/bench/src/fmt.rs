//! Column-aligned plain-text tables for experiment output.

/// Prints a header + rows with columns padded to the widest cell.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch in table '{title}'");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        println!("  {}", line.join("  "));
    };
    print_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    print_row(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        print_row(row);
    }
}

/// Formats an `f64` with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an `f64` with 1 decimal as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.456), "45.6");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        print_table("bad", &["a"], &[vec!["1".into(), "2".into()]]);
    }
}
