//! **Fig. 9 / Fig. 14** — behaviour across the one-day trace.
//!
//! Per-time-segment latency, accuracy and DMR for all six methods on the
//! text-matching diurnal trace. Shape: all methods are clean overnight;
//! during the burst Original/DES collapse, Schemble/Static/Gating keep the
//! latency flat, and Schemble keeps the highest accuracy by shedding models
//! adaptively (its mean models/query drops during the burst).

use schemble_bench::fmt::{pct, print_table};
use schemble_bench::runner::{run_method, sized, standard_methods};
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble_data::TaskKind;
use schemble_metrics::SegmentSeries;

fn main() {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = sized(9000);
    config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let trace = ctx.diurnal().expect("diurnal trace");

    // Aggregate into 6 four-hour segments for readability.
    let seg_of = |hour: usize| hour / 4;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for method in standard_methods() {
        let summary = run_method(&mut ctx, method, &workload);
        let series =
            SegmentSeries::compute(summary.records(), 6, |r| seg_of(trace.hour_of(r.arrival)));
        for seg in 0..6 {
            rows.push(vec![
                format!("{:02}-{:02}h", seg * 4, seg * 4 + 4),
                method.label(),
                series.counts[seg].to_string(),
                pct(series.accuracy[seg]),
                pct(series.dmr[seg]),
                format!("{:.3}", series.mean_latency[seg]),
            ]);
        }
    }
    rows.sort_by(|a, b| a[0].cmp(&b[0]));
    print_table(
        "Fig. 9/14 — per-segment accuracy, DMR and latency (text matching, one day)",
        &["segment", "method", "n", "Acc %", "DMR %", "lat s"],
        &rows,
    );

    // Adaptivity: Schemble's models/query across segments.
    let schemble = ctx.run(PipelineKind::Schemble, &workload);
    let mut seg_models = [(0.0f64, 0usize); 6];
    for r in schemble.records() {
        let seg = seg_of(trace.hour_of(r.arrival));
        seg_models[seg].0 += r.models_used as f64;
        seg_models[seg].1 += 1;
    }
    let adapt: Vec<String> =
        seg_models.iter().map(|(sum, n)| format!("{:.2}", sum / (*n).max(1) as f64)).collect();
    println!(
        "\n  Schemble mean models/query per segment: {}  \
         (drops during the 08–16h burst — the paper's adaptive shedding)",
        adapt.join("  ")
    );
}
