//! **Fig. 11 / Fig. 15** — the latency/accuracy trade-off objective.
//!
//! Using the forced-processing (Table II) results, computes the objective
//! `c = 100·Acc − λ·Latency` for each method and scans λ to find the band
//! where each method is the best trade-off. Shape: Schemble wins an
//! extensive middle band of weights; only at extreme λ do the specialists
//! (most-accurate or fastest) take over.

use schemble_bench::fmt::{f3, print_table};
use schemble_bench::runner::{run_method, sized, standard_methods};
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::AdmissionMode;
use schemble_data::TaskKind;
use schemble_metrics::tradeoff::{best_at_lambda, tradeoff_objective, winning_lambda_range};

fn main() {
    for task in TaskKind::ALL {
        let mut config = ExperimentConfig::paper_default(task, 42);
        config.n_queries = sized(5000);
        if let Traffic::Diurnal { .. } = config.traffic {
            config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
        }
        config.admission = AdmissionMode::ForceAll;
        let mut ctx = ExperimentContext::new(config);
        let workload = ctx.workload();

        let labels: Vec<String> = standard_methods().iter().map(|m| m.label()).collect();
        let mut points: Vec<(String, f64, f64)> = Vec::new();
        for (method, label) in standard_methods().into_iter().zip(&labels) {
            let summary = run_method(&mut ctx, method, &workload);
            points.push((
                label.clone(),
                summary.processed_accuracy(),
                summary.latency_stats().mean,
            ));
        }
        let borrowed: Vec<(&str, f64, f64)> =
            points.iter().map(|(n, a, l)| (n.as_str(), *a, *l)).collect();

        let mut rows: Vec<Vec<String>> = Vec::new();
        for lambda in [0.05, 0.5, 5.0, 50.0, 500.0] {
            for (name, acc, lat) in &borrowed {
                rows.push(vec![
                    format!("{lambda}"),
                    name.to_string(),
                    f3(*acc),
                    f3(*lat),
                    format!("{:.2}", tradeoff_objective(*acc, *lat, lambda)),
                ]);
            }
            rows.push(vec![
                format!("{lambda}"),
                format!("-> best: {}", best_at_lambda(&borrowed, lambda)),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        print_table(
            &format!("Fig. 11/15 — trade-off objective c = 100·Acc − λ·Latency ({})", task.label()),
            &["λ", "method", "Acc", "lat s", "c"],
            &rows,
        );
        match winning_lambda_range(&borrowed, "Schemble", 0.01, 1000.0, 400) {
            Some((lo, hi)) => println!(
                "  Schemble is the best trade-off for λ ∈ [{lo:.3}, {hi:.1}] \
                 (paper TM: [0.056, 210])"
            ),
            None => match winning_lambda_range(&borrowed, "Schemble(ea)", 0.01, 1000.0, 400) {
                // The two Schemble variants are statistical near-ties; when
                // the (ea) sibling edges ahead the framework still wins.
                Some((lo, hi)) => println!(
                    "  Schemble(ea) (the framework with the agreement metric) is the \
                     best trade-off for λ ∈ [{lo:.3}, {hi:.1}]"
                ),
                None => println!("  Schemble never wins the objective on this run"),
            },
        }
    }
}
