//! **Exp-3 / Fig. 10** — how the difficulty distribution affects each method.
//!
//! Queries' latent difficulty is resampled from Normal(mean, 0.03) and
//! Gamma(mean) distributions with the mean swept; deadline fixed at 105 ms.
//! Reports accuracy and processed accuracy, with `Schemble(t)` (no
//! difficulty prediction) added. Shape: accuracy decreases with the mean;
//! Schemble leads except against Schemble(t) at extreme means (where
//! distinguishing queries is pointless and the constant-score variant's
//! lower overhead wins); in the middle Schemble's gap is largest.

use schemble_bench::fmt::{pct, print_table};
use schemble_bench::runner::{run_method, sized, standard_methods, Method};
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble_data::TaskKind;
use schemble_models::DifficultyDist;

fn main() {
    let means = [0.1, 0.3, 0.5, 0.7, 0.9];
    let mut methods = standard_methods();
    methods.push(Method::Core(PipelineKind::SchembleT));

    for (dist_name, make) in [
        (
            "Normal (σ=0.03)",
            (|mean: f64| DifficultyDist::Normal { mean, std: 0.03 }) as fn(f64) -> DifficultyDist,
        ),
        ("Gamma (scale=1)", |mean: f64| DifficultyDist::Gamma { mean }),
    ] {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for &mean in &means {
            let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42)
                .with_deadline_millis(105.0);
            config.n_queries = sized(4000);
            config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
            config.difficulty = make(mean);
            let mut ctx = ExperimentContext::new(config);
            let workload = ctx.workload();
            for &method in &methods {
                let summary = run_method(&mut ctx, method, &workload);
                rows.push(vec![
                    format!("{mean:.1}"),
                    method.label(),
                    pct(summary.accuracy()),
                    pct(summary.processed_accuracy()),
                ]);
            }
        }
        print_table(
            &format!("Fig. 10 — {dist_name} difficulty mean sweep (text matching, d=105ms)"),
            &["mean", "method", "Acc %", "processed Acc %"],
            &rows,
        );
    }
}
