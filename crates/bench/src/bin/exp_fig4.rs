//! **Fig. 4** — discrepancy-score analysis.
//!
//! (a) Distribution of discrepancy scores on the three datasets: a large
//!     share of samples must sit in the low-score bins.
//! (b) Accuracy (vs. the ensemble) of every model combination per score bin
//!     on text matching: easy bins ≥ ~90% for all combos; hard bins show
//!     much larger error for small sets.

use schemble_bench::fmt::{f3, print_table};
use schemble_bench::runner::sized;
use schemble_core::discrepancy::{DifficultyMetric, DiscrepancyScorer};
use schemble_core::profiling::AccuracyProfile;
use schemble_data::TaskKind;
use schemble_models::ModelSet;
use schemble_tensor::stats::histogram;

fn main() {
    let n = sized(6000);
    // --- Fig. 4a ---------------------------------------------------------
    let mut rows: Vec<Vec<String>> = Vec::new();
    for task in TaskKind::ALL {
        let ens = task.ensemble(42);
        let gen = task.default_generator(42);
        let history = gen.batch(0, n);
        let scorer = DiscrepancyScorer::fit(&ens, &history, DifficultyMetric::Discrepancy);
        let scores = scorer.score_batch(&ens, &history);
        let hist = histogram(&scores, 0.0, 1.0, 10);
        let mut row = vec![task.label().to_string()];
        row.extend(hist.iter().map(|c| format!("{:.1}", 100.0 * *c as f64 / n as f64)));
        rows.push(row);
    }
    print_table(
        "Fig. 4a — distribution of discrepancy scores (% of samples per decile bin)",
        &["task", "0.0", "0.1", "0.2", "0.3", "0.4", "0.5", "0.6", "0.7", "0.8", "0.9"],
        &rows,
    );

    // --- Fig. 4b ---------------------------------------------------------
    let task = TaskKind::TextMatching;
    let ens = task.ensemble(42);
    let gen = task.default_generator(42);
    let history = gen.batch(0, n);
    let scorer = DiscrepancyScorer::fit(&ens, &history, DifficultyMetric::Discrepancy);
    let scores = scorer.score_batch(&ens, &history);
    let profile = AccuracyProfile::fit(&ens, &history, &scores, 10);
    let combos: Vec<(String, ModelSet)> = ModelSet::all_nonempty(ens.m())
        .map(|set| {
            let names: Vec<&str> = set.iter().map(|k| ens.models[k].name.as_str()).collect();
            (names.join("+"), set)
        })
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for b in 0..10 {
        let score = (b as f64 + 0.5) / 10.0;
        let mut row = vec![format!("[{:.1},{:.1})", b as f64 / 10.0, (b + 1) as f64 / 10.0)];
        row.push(profile.bin_count(b).to_string());
        for (_, set) in &combos {
            row.push(f3(profile.utility(score, *set)));
        }
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["score bin", "n"];
    let combo_names: Vec<String> = combos.iter().map(|(n, _)| n.clone()).collect();
    headers.extend(combo_names.iter().map(String::as_str));
    print_table(
        "Fig. 4b — accuracy of model combinations per discrepancy bin (text matching)",
        &headers,
        &rows,
    );
    println!(
        "  shape check: singleton accuracy in bin 0 = {:.3} vs bin 9 = {:.3}",
        profile.utility(0.05, ModelSet::singleton(0)),
        profile.utility(0.95, ModelSet::singleton(0)),
    );
}
