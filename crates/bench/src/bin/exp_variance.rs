//! Seed-robustness check: the Table-I headline orderings across independent
//! re-seedings of everything (models, workload, training).
//!
//! The paper reports single runs; a reproduction should show its claims
//! aren't seed luck. Runs the text-matching comparison over `SEEDS`
//! (default 5) root seeds and reports mean ± std per method, asserting the
//! headline ordering (Schemble > Original) holds in *every* run.

use schemble_bench::fmt::print_table;
use schemble_bench::runner::{run_method, sized, standard_methods};
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_data::TaskKind;
use schemble_metrics::aggregate::SeedStats;

fn main() {
    let seeds: u64 = std::env::var("SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    let methods = standard_methods();
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let mut dmr: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for seed in 0..seeds {
        let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 1000 + seed);
        config.n_queries = sized(4000);
        config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
        let mut ctx = ExperimentContext::new(config);
        let workload = ctx.workload();
        for (mi, &method) in methods.iter().enumerate() {
            let summary = run_method(&mut ctx, method, &workload);
            acc[mi].push(summary.accuracy());
            dmr[mi].push(summary.deadline_miss_rate());
        }
    }
    let rows: Vec<Vec<String>> = methods
        .iter()
        .enumerate()
        .map(|(mi, method)| {
            vec![
                method.label(),
                SeedStats::from_runs(&acc[mi]).pct(),
                SeedStats::from_runs(&dmr[mi]).pct(),
            ]
        })
        .collect();
    print_table(
        &format!("Seed robustness — TM over {seeds} independent seeds (mean ± std, %)"),
        &["method", "Acc", "DMR"],
        &rows,
    );

    let idx =
        |label: &str| methods.iter().position(|m| m.label() == label).expect("method present");
    let schemble = SeedStats::from_runs(&acc[idx("Schemble")]);
    let original = SeedStats::from_runs(&acc[idx("Original")]);
    assert!(
        original.clearly_below(&schemble),
        "headline ordering not seed-robust: Original max {:.3} vs Schemble min {:.3}",
        original.max,
        schemble.min
    );
    println!(
        "\n  Schemble beats Original in every run: worst Schemble {:.1}% > best Original {:.1}%",
        100.0 * schemble.min,
        100.0 * original.max
    );
}
