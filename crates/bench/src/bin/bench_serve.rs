//! `bench_serve` — serving-runtime benchmark with a regression gate.
//!
//! Replays a small deterministic workload through the virtual-clock serving
//! runtime and reports:
//!
//! * `p50_latency_ms` / `p99_latency_ms` — end-to-end query latency
//!   quantiles. Virtual clock + fixed seed make these **exactly**
//!   reproducible: any drift means a decision change, not noise.
//! * `queries_per_sec` — serving throughput (queries ÷ wall time of the
//!   *measured* pass; an untimed warmup pass runs first so cold caches and
//!   allocator warmup never leak into the rate).
//! * `plans_per_sec` — scheduler re-planning throughput over the measured
//!   pass only.
//! * `sched_overhead_us` — mean wall-clock cost of one plan.
//!
//! ```text
//! bench_serve [--shards|--obs|--anytime|--batch|--steal] [--out PATH] [--check BASELINE] [--write PATH]
//! ```
//!
//! `--shards` switches to the shard-scaling sweep: S ∈ {1, 2, 4, 8} engine
//! shards, run twice — once with offered load scaled proportionally (so
//! per-shard load — and hence the deterministic latency profile — is
//! constant while total throughput must grow with the core count), and
//! once with the S=1 offered load held fixed while shards grow (strong
//! scaling — the series where the shard plateau shows). Both speedup
//! series land in `BENCH_serve_shards.json` together with the machine's
//! core count; `--check` gates the deterministic per-S quality metrics
//! tightly and the scaled S=4 speedup against 1.6x/1.2 when the runner has
//! the cores to show it.
//!
//! `--steal` switches to the work-stealing comparison: a Zipfian hot-key
//! trace (θ = 2.0 over 64 keys) at S = 4 whose hash-routed partition
//! saturates one shard, served once with `steal_epoch` off and once at
//! 50 ms. Throughput is *served* load in simulated time (completed ÷ sim
//! seconds) — virtual-clock deterministic — and the comparison self-gates
//! on every run: stealing must lift served throughput ≥ 1.5x while moving
//! the deadline-miss rate by at most +1 pp, the off pass must steal
//! nothing, and the on pass must actually steal.
//!
//! `--obs` switches to the introspection-overhead benchmark: the same
//! measured pass runs once with all observability off and once with the
//! full stack on (event emission, a tapped flight recorder, and the
//! post-run SLO/drift fold). The virtual-clock p99 must agree within 5%
//! between the two — tracing is decision-neutral, so any drift is a leak
//! of observability into scheduling — and that self-gate applies on every
//! run, `--check` or not.
//!
//! `--batch` switches to the cross-query batching sweep: batch_max ∈
//! {1, 4, 16} on a diurnal trace offered well above unbatched capacity.
//! The reported throughput is *served* load in simulated time
//! (completed ÷ sim seconds) — virtual-clock deterministic — and the
//! sweep self-gates on every run: batch_max = 16 must serve ≥ 1.5x the
//! unbatched reference while moving the deadline-miss rate by at most
//! +1 pp (in practice batching *improves* it: more capacity means fewer
//! expiries).
//!
//! `--out` (default `BENCH_serve.json`, or `BENCH_serve_shards.json` with
//! `--shards`, or `BENCH_obs.json` with `--obs`, or `BENCH_anytime.json`
//! with `--anytime`, or `BENCH_batch.json` with `--batch`, or
//! `BENCH_steal.json` with `--steal`) writes the results as JSON — the CI bench jobs upload it as
//! an artifact. `--check` compares against a checked-in baseline and exits
//! non-zero on regression: >20% on the deterministic latency quantiles; 4x
//! on the wall-clock-dependent throughput/overhead numbers (CI runners vary
//! widely in single-core speed, so a tight gate there would only produce
//! flakes). `--write` regenerates the baseline file.

use schemble_core::engine::AnytimePolicy;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::schemble::SchembleConfig;
use schemble_core::pipeline::AdmissionMode;
use schemble_core::predictor::OnlineScorer;
use schemble_core::scheduler::DpScheduler;
use schemble_data::{TaskKind, Workload};
use schemble_models::Ensemble;
use schemble_obs::{FlightRecorder, ObsConfig, ObsState};
use schemble_serve::{serve_schemble, ClockMode, ServeConfig, ServeReport};
use schemble_sim::{BatchConfig, SimDuration};
use schemble_trace::TraceSink;
use std::process::ExitCode;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Instant;

/// Base offered load at S=1; the shard sweep multiplies both by S.
const BASE_QUERIES: usize = 600;
const BASE_RATE: f64 = 35.0;
/// Query count for the anytime accuracy-vs-compute bench; its one-day
/// diurnal trace keeps the mean rate at 15 q/s like the loadtest.
const ANYTIME_QUERIES: usize = 1500;
/// Shard counts swept by `--shards`.
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Batch caps swept by `--batch`; `1` is the unbatched reference point.
const BATCH_SWEEP: [usize; 3] = [1, 4, 16];
/// Query count and mean rate for the `--batch` diurnal trace. The mean sits
/// well above unbatched capacity (the flat bench saturates near 35 q/s and
/// the diurnal peak is ~2.9x the mean), so the sweep measures batching where
/// it matters: how much offered load the system can actually retire.
const BATCH_QUERIES: usize = 1500;
const BATCH_RATE: f64 = 90.0;
/// Coalescing window used by every batched point in the sweep.
const BATCH_WINDOW_MS: u64 = 2;
/// Required served-throughput gain at batch_max = 16 over unbatched.
const B16_SPEEDUP_FLOOR: f64 = 1.5;
/// Batching may not cost more than this much deadline-miss rate.
const BATCH_DMR_CEILING_PP: f64 = 0.01;
/// The `--steal` fixture: a hot-key Zipfian trace at S = 4, offered well
/// above what the hash router's hottest shard can retire alone. The key
/// count and skew match the serve-crate property tests; the rate is set so
/// the hot shard saturates while the ensemble as a whole has headroom —
/// the regime work stealing exists for.
const STEAL_SHARDS: usize = 4;
const STEAL_QUERIES: usize = 1200;
const STEAL_RATE: f64 = 140.0;
const STEAL_KEYS: usize = 64;
const STEAL_THETA: f64 = 2.0;
const STEAL_EPOCH_MS: u64 = 50;
const STEAL_DEADLINE_MS: f64 = 150.0;
/// Required served-throughput gain with stealing on vs off.
const STEAL_SPEEDUP_FLOOR: f64 = 1.5;
/// Stealing may not cost more than this much deadline-miss rate.
const STEAL_DMR_CEILING_PP: f64 = 0.01;
/// Required S=4 speedup on a multi-core runner: the issue's 1.6x floor with
/// a 20% tolerance (1.6 / 1.2).
const S4_SPEEDUP_FLOOR: f64 = 1.6 / 1.2;

struct BenchResult {
    queries: usize,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    queries_per_sec: f64,
    plans_per_sec: f64,
    sched_overhead_us: f64,
    wall_secs: f64,
}

impl BenchResult {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"queries\": {},\n  \"p50_latency_ms\": {:.4},\n  \"p99_latency_ms\": {:.4},\n  \"queries_per_sec\": {:.1},\n  \"plans_per_sec\": {:.1},\n  \"sched_overhead_us\": {:.2},\n  \"wall_secs\": {:.3}\n}}\n",
            self.queries,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.queries_per_sec,
            self.plans_per_sec,
            self.sched_overhead_us,
            self.wall_secs,
        )
    }
}

/// One shard count's measured pass in the scaling sweep.
struct ShardPoint {
    shards: usize,
    queries: usize,
    queries_per_sec: f64,
    p99_latency_ms: f64,
    deadline_miss_rate: f64,
}

struct ShardSweep {
    cores: usize,
    /// Scaled-load series: offered load grows with S (weak scaling), so
    /// per-shard pressure — and the deterministic quality profile — is
    /// constant while total throughput must grow with the core count.
    points: Vec<ShardPoint>,
    /// Fixed-load series: the S=1 offered load is held constant while the
    /// shard count grows (strong scaling). This is the series that exposes
    /// the shard-scaling plateau: with total work fixed, adding shards
    /// only helps until coordination and partition imbalance eat the gain.
    fixed: Vec<ShardPoint>,
}

impl ShardSweep {
    fn speedup_of(points: &[ShardPoint], shards: usize) -> f64 {
        let base = points[0].queries_per_sec.max(1e-9);
        points.iter().find(|p| p.shards == shards).map_or(0.0, |p| p.queries_per_sec / base)
    }

    fn speedup(&self, shards: usize) -> f64 {
        Self::speedup_of(&self.points, shards)
    }

    fn fixed_speedup(&self, shards: usize) -> f64 {
        Self::speedup_of(&self.fixed, shards)
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"base_queries\": {BASE_QUERIES},\n"));
        out.push_str(&format!("  \"base_rate_per_sec\": {BASE_RATE:.1},\n"));
        for p in &self.points {
            let s = p.shards;
            out.push_str(&format!("  \"s{s}_queries\": {},\n", p.queries));
            out.push_str(&format!("  \"s{s}_queries_per_sec\": {:.1},\n", p.queries_per_sec));
            out.push_str(&format!("  \"s{s}_p99_latency_ms\": {:.4},\n", p.p99_latency_ms));
            out.push_str(&format!("  \"s{s}_deadline_miss_rate\": {:.6},\n", p.deadline_miss_rate));
        }
        for p in &self.fixed {
            let s = p.shards;
            out.push_str(&format!("  \"f{s}_queries_per_sec\": {:.1},\n", p.queries_per_sec));
            out.push_str(&format!("  \"f{s}_p99_latency_ms\": {:.4},\n", p.p99_latency_ms));
            out.push_str(&format!("  \"f{s}_deadline_miss_rate\": {:.6},\n", p.deadline_miss_rate));
        }
        for &s in &SHARD_SWEEP[1..] {
            out.push_str(&format!("  \"speedup_s{s}\": {:.4},\n", self.speedup(s)));
        }
        for &s in &SHARD_SWEEP[1..] {
            out.push_str(&format!("  \"fixed_speedup_s{s}\": {:.4},\n", self.fixed_speedup(s)));
        }
        // Trailing key without a comma keeps the document valid JSON.
        out.push_str(&format!("  \"shard_counts\": {}\n}}\n", SHARD_SWEEP.len()));
        out
    }
}

/// The introspection-overhead comparison: one pass dark, one pass with
/// the full obs stack armed.
struct ObsResult {
    queries: usize,
    p99_obs_off_ms: f64,
    p99_obs_on_ms: f64,
    p99_obs_delta_pct: f64,
    events: usize,
    obs_fold_ms: f64,
    wall_off_secs: f64,
    wall_on_secs: f64,
}

impl ObsResult {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"queries\": {},\n  \"p99_obs_off_ms\": {:.4},\n  \"p99_obs_on_ms\": {:.4},\n  \"p99_obs_delta_pct\": {:.4},\n  \"events\": {},\n  \"obs_fold_ms\": {:.3},\n  \"wall_off_secs\": {:.3},\n  \"wall_on_secs\": {:.3}\n}}\n",
            self.queries,
            self.p99_obs_off_ms,
            self.p99_obs_on_ms,
            self.p99_obs_delta_pct,
            self.events,
            self.obs_fold_ms,
            self.wall_off_secs,
            self.wall_on_secs,
        )
    }
}

/// The anytime accuracy-vs-compute comparison on the diurnal trace: one
/// pass with full plans, one with the early-exit policy quitting tasks.
struct AnytimeResult {
    queries: usize,
    acc_full_pct: f64,
    acc_anytime_pct: f64,
    /// Accuracy given up by quitting, in percentage points (negative when
    /// anytime comes out *ahead*, which early completion under load can).
    acc_delta_pp: f64,
    tasks_saved: u64,
    /// Quit tasks as a fraction of everything the anytime run attempted.
    saved_frac: f64,
    p99_full_ms: f64,
    p99_anytime_ms: f64,
    models_per_query_full: f64,
    models_per_query_anytime: f64,
    wall_full_secs: f64,
    wall_anytime_secs: f64,
}

impl AnytimeResult {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"queries\": {},\n  \"acc_full_pct\": {:.4},\n  \"acc_anytime_pct\": {:.4},\n  \"acc_delta_pp\": {:.4},\n  \"tasks_saved\": {},\n  \"saved_frac\": {:.4},\n  \"p99_full_ms\": {:.4},\n  \"p99_anytime_ms\": {:.4},\n  \"models_per_query_full\": {:.4},\n  \"models_per_query_anytime\": {:.4},\n  \"wall_full_secs\": {:.3},\n  \"wall_anytime_secs\": {:.3}\n}}\n",
            self.queries,
            self.acc_full_pct,
            self.acc_anytime_pct,
            self.acc_delta_pp,
            self.tasks_saved,
            self.saved_frac,
            self.p99_full_ms,
            self.p99_anytime_ms,
            self.models_per_query_full,
            self.models_per_query_anytime,
            self.wall_full_secs,
            self.wall_anytime_secs,
        )
    }
}

/// One batch cap's measured pass in the cross-query batching sweep.
struct BatchPoint {
    batch_max: usize,
    completed: u64,
    /// Served throughput in *simulated* time: completed / sim_secs. Under
    /// the virtual clock this is exactly reproducible, so it isolates how
    /// much more offered load batching lets the executors retire — wall
    /// speed of the runner never enters.
    queries_per_sec: f64,
    deadline_miss_rate: f64,
    tasks_batched: u64,
    p99_latency_ms: f64,
}

struct BatchSweep {
    points: Vec<BatchPoint>,
}

impl BatchSweep {
    fn speedup(&self, batch_max: usize) -> f64 {
        let base = self.points[0].queries_per_sec.max(1e-9);
        self.points
            .iter()
            .find(|p| p.batch_max == batch_max)
            .map_or(0.0, |p| p.queries_per_sec / base)
    }

    fn point(&self, batch_max: usize) -> &BatchPoint {
        self.points.iter().find(|p| p.batch_max == batch_max).expect("swept point")
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"queries\": {BATCH_QUERIES},\n"));
        out.push_str(&format!("  \"mean_rate_per_sec\": {BATCH_RATE:.1},\n"));
        out.push_str(&format!("  \"batch_window_ms\": {BATCH_WINDOW_MS},\n"));
        for p in &self.points {
            let b = p.batch_max;
            out.push_str(&format!("  \"b{b}_completed\": {},\n", p.completed));
            out.push_str(&format!("  \"b{b}_queries_per_sec\": {:.4},\n", p.queries_per_sec));
            out.push_str(&format!("  \"b{b}_deadline_miss_rate\": {:.6},\n", p.deadline_miss_rate));
            out.push_str(&format!("  \"b{b}_tasks_batched\": {},\n", p.tasks_batched));
            out.push_str(&format!("  \"b{b}_p99_latency_ms\": {:.4},\n", p.p99_latency_ms));
        }
        for &b in &BATCH_SWEEP[1..] {
            out.push_str(&format!("  \"speedup_b{b}\": {:.4},\n", self.speedup(b)));
        }
        // Trailing key without a comma keeps the document valid JSON.
        out.push_str(&format!("  \"batch_counts\": {}\n}}\n", BATCH_SWEEP.len()));
        out
    }
}

/// The work-stealing comparison: the same hot-key trace served at S = 4
/// with the steal epoch off and on. Both passes are virtual-clock runs, so
/// every number here is exactly reproducible.
struct StealResult {
    queries: usize,
    shards: usize,
    zipf_keys: usize,
    zipf_theta: f64,
    steal_epoch_ms: u64,
    off_completed: u64,
    /// Served throughput in *simulated* time: completed / sim_secs, the
    /// same served-load metric the batching sweep gates on.
    off_queries_per_sec: f64,
    off_deadline_miss_rate: f64,
    on_completed: u64,
    on_queries_per_sec: f64,
    on_deadline_miss_rate: f64,
    /// Queries that actually changed shards in the stealing-on pass.
    queries_stolen: u64,
    speedup: f64,
}

impl StealResult {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"queries\": {},\n  \"shards\": {},\n  \"zipf_keys\": {},\n  \"zipf_theta\": {:.2},\n  \"steal_epoch_ms\": {},\n  \"off_completed\": {},\n  \"off_queries_per_sec\": {:.4},\n  \"off_deadline_miss_rate\": {:.6},\n  \"on_completed\": {},\n  \"on_queries_per_sec\": {:.4},\n  \"on_deadline_miss_rate\": {:.6},\n  \"queries_stolen\": {},\n  \"speedup\": {:.4}\n}}\n",
            self.queries,
            self.shards,
            self.zipf_keys,
            self.zipf_theta,
            self.steal_epoch_ms,
            self.off_completed,
            self.off_queries_per_sec,
            self.off_deadline_miss_rate,
            self.on_completed,
            self.on_queries_per_sec,
            self.on_deadline_miss_rate,
            self.queries_stolen,
            self.speedup,
        )
    }
}

/// Pulls `"key": <number>` out of the baseline JSON. The file is produced
/// by `to_json` above, so a flat scan is all the parsing needed.
fn json_number(text: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat).ok_or_else(|| format!("baseline is missing \"{key}\""))?;
    let rest = &text[start + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().map_err(|_| format!("baseline \"{key}\" is not a number"))
}

struct BenchSetup {
    ensemble: Ensemble,
    pipeline: SchembleConfig,
    workload: Workload,
    seed: u64,
}

/// Deterministic bench fixture with offered load scaled by `scale` (shard
/// sweeps keep per-shard load constant by growing the total with S).
fn setup(scale: usize) -> BenchSetup {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = BASE_QUERIES * scale;
    config.traffic = Traffic::Poisson { rate_per_sec: BASE_RATE * scale as f64 };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;
    BenchSetup { ensemble: ctx.ensemble, pipeline, workload, seed: ctx.config.seed }
}

/// Fixture for the anytime accuracy-vs-compute comparison: the one-day
/// diurnal trace (mean 15 q/s, peak ≈ 44 q/s) the loadtest uses, so the
/// bench measures the policy where it matters — under a load swing, not
/// flat Poisson. Both passes share the seed; only `anytime` differs.
fn setup_anytime(anytime: Option<AnytimePolicy>) -> BenchSetup {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = ANYTIME_QUERIES;
    config.traffic = Traffic::Diurnal { day_secs: ANYTIME_QUERIES as f64 / 15.0 };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;
    pipeline.anytime = anytime;
    BenchSetup { ensemble: ctx.ensemble, pipeline, workload, seed: ctx.config.seed }
}

/// One virtual-clock serve pass. Each pass gets a fresh sink so the
/// planning self-profile covers exactly this pass — warmup plans never
/// inflate a measured rate.
fn serve_once(bench: &BenchSetup, shards: usize) -> (ServeReport, Arc<TraceSink>) {
    let sink = TraceSink::enabled();
    // Events off: only the planning self-profile records, so the bench
    // measures the scheduler, not the trace ring.
    sink.set_enabled(false);
    let scfg = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        shards,
        ..ServeConfig::default()
    };
    let report =
        serve_schemble(&bench.ensemble, &bench.pipeline, &bench.workload, bench.seed, &scfg);
    assert_eq!(report.stats.open(), 0, "bench run left queries open");
    (report, sink)
}

fn run_bench() -> BenchResult {
    let bench = setup(1);
    // Untimed warmup pass: first-touch page faults, lazy allocations and
    // branch-predictor training land here, not in the measured window.
    let _ = serve_once(&bench, 1);
    let (report, sink) = serve_once(&bench, 1);

    let p = &sink.planning;
    let plans = p.plans.load(Relaxed);
    BenchResult {
        queries: bench.workload.len(),
        p50_latency_ms: 1e3 * report.metrics.latency.quantile(0.50).unwrap_or(0.0),
        p99_latency_ms: 1e3 * report.metrics.latency.quantile(0.99).unwrap_or(0.0),
        queries_per_sec: bench.workload.len() as f64 / report.wall_secs.max(1e-9),
        plans_per_sec: plans as f64 / report.wall_secs.max(1e-9),
        sched_overhead_us: 1e6 * p.mean_secs().unwrap_or(0.0),
        wall_secs: report.wall_secs,
    }
}

/// One virtual-clock serve pass with the whole introspection stack armed:
/// event emission on, a flight recorder tapped into the sink, and the
/// post-run SLO/drift fold with both exports rendered.
fn serve_once_obs(bench: &BenchSetup) -> (ServeReport, usize, f64) {
    let sink = TraceSink::enabled();
    let recorder = Arc::new(FlightRecorder::new(4096, Some(u64::MAX)));
    sink.set_tap(Some(recorder.clone()));
    let scfg = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        recorder: Some(recorder),
        ..ServeConfig::default()
    };
    let report =
        serve_schemble(&bench.ensemble, &bench.pipeline, &bench.workload, bench.seed, &scfg);
    assert_eq!(report.stats.open(), 0, "bench run left queries open");
    let events = sink.snapshot();
    let ocfg = ObsConfig {
        bins: 4,
        profiled_latencies_us: (0..bench.ensemble.m())
            .map(|k| bench.ensemble.latency(k).planned().as_micros())
            .collect(),
        ..ObsConfig::default()
    };
    let fold_start = Instant::now();
    let state = ObsState::fold(&ocfg, &events);
    let exports = state.slo_ndjson().len() + state.prometheus().len();
    assert!(exports > 0, "the fold produced both exports");
    let fold_ms = fold_start.elapsed().as_secs_f64() * 1e3;
    (report, events.len(), fold_ms)
}

fn run_obs_bench() -> Result<ObsResult, String> {
    let bench = setup(1);
    let _ = serve_once(&bench, 1); // warmup, untimed
    let (off, _) = serve_once(&bench, 1);
    let (on, events, obs_fold_ms) = serve_once_obs(&bench);

    let p99_off = 1e3 * off.metrics.latency.quantile(0.99).unwrap_or(0.0);
    let p99_on = 1e3 * on.metrics.latency.quantile(0.99).unwrap_or(0.0);
    let delta_pct = 100.0 * (p99_on - p99_off).abs() / p99_off.max(1e-9);
    let result = ObsResult {
        queries: bench.workload.len(),
        p99_obs_off_ms: p99_off,
        p99_obs_on_ms: p99_on,
        p99_obs_delta_pct: delta_pct,
        events,
        obs_fold_ms,
        wall_off_secs: off.wall_secs,
        wall_on_secs: on.wall_secs,
    };
    // The hard acceptance gate, applied on every run: full observability
    // must not move the virtual-clock p99 by more than 5%. Decision
    // neutrality actually makes the two identical; any gap at all means
    // the obs layer leaked into a scheduling decision.
    if delta_pct > 5.0 {
        return Err(format!(
            "observability perturbed p99: {p99_on:.4} ms with obs vs {p99_off:.4} ms without \
             ({delta_pct:.2}% > 5%)"
        ));
    }
    Ok(result)
}

fn check_obs(result: &ObsResult, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    println!("obs regression check vs {baseline_path}:");
    let mut failures = Vec::new();
    for (label, new, key, tol, higher) in [
        // Deterministic under the virtual clock: tight gates.
        ("p99_obs_off_ms", result.p99_obs_off_ms, "p99_obs_off_ms", 0.20, false),
        ("p99_obs_on_ms", result.p99_obs_on_ms, "p99_obs_on_ms", 0.20, false),
        // Wall-clock dependent: loose gate, CI runners vary widely.
        ("obs_fold_ms", result.obs_fold_ms, "obs_fold_ms", 4.0, false),
    ] {
        if let Err(e) = gate(label, new, json_number(&text, key)?, tol, higher) {
            failures.push(e);
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn run_anytime_bench() -> Result<AnytimeResult, String> {
    let full = setup_anytime(None);
    let _ = serve_once(&full, 1); // warmup, untimed
    let (full_report, _) = serve_once(&full, 1);
    let any = setup_anytime(Some(AnytimePolicy::default()));
    let (any_report, _) = serve_once(&any, 1);

    let acc_full_pct = 100.0 * full_report.summary.accuracy();
    let acc_anytime_pct = 100.0 * any_report.summary.accuracy();
    let tasks_saved = any_report.snapshot.tasks_saved;
    // Everything the anytime run attempted: tasks that ran to completion
    // plus tasks it planned and then quit.
    let attempted = any_report.snapshot.tasks_completed + tasks_saved;
    let result = AnytimeResult {
        queries: full.workload.len(),
        acc_full_pct,
        acc_anytime_pct,
        acc_delta_pp: acc_full_pct - acc_anytime_pct,
        tasks_saved,
        saved_frac: tasks_saved as f64 / attempted.max(1) as f64,
        p99_full_ms: 1e3 * full_report.metrics.latency.quantile(0.99).unwrap_or(0.0),
        p99_anytime_ms: 1e3 * any_report.metrics.latency.quantile(0.99).unwrap_or(0.0),
        models_per_query_full: full_report.summary.mean_models_used(),
        models_per_query_anytime: any_report.summary.mean_models_used(),
        wall_full_secs: full_report.wall_secs,
        wall_anytime_secs: any_report.wall_secs,
    };
    // The hard acceptance gates, applied on every run (not just --check):
    // early exit must actually save meaningful work, and the saved work
    // must not cost meaningful accuracy.
    if result.saved_frac < 0.15 {
        return Err(format!(
            "anytime saved too little work: {:.1}% of attempted tasks quit (< 15% floor)",
            100.0 * result.saved_frac
        ));
    }
    if result.acc_delta_pp > 0.5 {
        return Err(format!(
            "anytime gave up too much accuracy: {:.2} pp drop ({:.2}% -> {:.2}%, > 0.5 pp ceiling)",
            result.acc_delta_pp, acc_full_pct, acc_anytime_pct
        ));
    }
    Ok(result)
}

fn check_anytime(result: &AnytimeResult, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    println!("anytime regression check vs {baseline_path}:");
    let mut failures = Vec::new();
    for (label, new, key, tol, higher) in [
        // Virtual-clock deterministic: drift here is a decision change.
        ("p99_full_ms", result.p99_full_ms, "p99_full_ms", 0.20, false),
        ("p99_anytime_ms", result.p99_anytime_ms, "p99_anytime_ms", 0.20, false),
        ("saved_frac", result.saved_frac, "saved_frac", 0.25, true),
        ("acc_anytime_pct", result.acc_anytime_pct, "acc_anytime_pct", 0.01, true),
    ] {
        if let Err(e) = gate(label, new, json_number(&text, key)?, tol, higher) {
            failures.push(e);
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Fixture for the cross-query batching sweep: the same one-day diurnal
/// shape the anytime bench uses, but offered at a mean rate the unbatched
/// executors cannot keep up with. Only `batch_max` varies across points;
/// `batch_max = 1` normalizes to no batching at all (the degradation
/// guarantee), making point `b1` the exact unbatched reference.
fn setup_batch(batch_max: usize) -> BenchSetup {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = BATCH_QUERIES;
    config.traffic = Traffic::Diurnal { day_secs: BATCH_QUERIES as f64 / BATCH_RATE };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;
    pipeline.batching =
        Some(BatchConfig::new(batch_max, SimDuration::from_millis(BATCH_WINDOW_MS)));
    BenchSetup { ensemble: ctx.ensemble, pipeline, workload, seed: ctx.config.seed }
}

fn run_batch_sweep() -> Result<BatchSweep, String> {
    let mut points = Vec::with_capacity(BATCH_SWEEP.len());
    for &batch_max in &BATCH_SWEEP {
        let bench = setup_batch(batch_max);
        let (report, _) = serve_once(&bench, 1);
        let point = BatchPoint {
            batch_max,
            completed: report.stats.completed,
            queries_per_sec: report.stats.completed as f64 / report.sim_secs.max(1e-9),
            deadline_miss_rate: report.summary.deadline_miss_rate(),
            tasks_batched: report.snapshot.tasks_batched,
            p99_latency_ms: 1e3 * report.metrics.latency.quantile(0.99).unwrap_or(0.0),
        };
        println!(
            "  b={:<2} {:>5} completed  {:>8.1} q/s served  dmr {:>6.3}%  p99 {:>8.3} ms  {:>5} tasks batched",
            point.batch_max,
            point.completed,
            point.queries_per_sec,
            100.0 * point.deadline_miss_rate,
            point.p99_latency_ms,
            point.tasks_batched,
        );
        points.push(point);
    }
    let sweep = BatchSweep { points };

    // Hard acceptance gates, applied on every run (not just --check). All
    // three quantities are virtual-clock deterministic.
    let b1 = sweep.point(1);
    let b16 = sweep.point(16);
    if b1.tasks_batched != 0 {
        return Err(format!(
            "batch_max = 1 formed {} batched tasks; the reference point must be unbatched",
            b1.tasks_batched
        ));
    }
    if b16.tasks_batched == 0 {
        return Err("batch_max = 16 never batched under saturation".into());
    }
    let speedup = sweep.speedup(16);
    if speedup < B16_SPEEDUP_FLOOR {
        return Err(format!(
            "batching speedup too small: {speedup:.3}x served throughput at batch_max = 16 \
             (floor {B16_SPEEDUP_FLOOR:.2}x)"
        ));
    }
    let dmr_delta = b16.deadline_miss_rate - b1.deadline_miss_rate;
    if dmr_delta > BATCH_DMR_CEILING_PP {
        return Err(format!(
            "batching costs deadlines: miss rate {:.4} at batch_max = 16 vs {:.4} unbatched \
             (+{:.2} pp > +{:.2} pp ceiling)",
            b16.deadline_miss_rate,
            b1.deadline_miss_rate,
            100.0 * dmr_delta,
            100.0 * BATCH_DMR_CEILING_PP
        ));
    }
    Ok(sweep)
}

fn check_batch(sweep: &BatchSweep, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    println!("batching check vs {baseline_path}:");
    let mut failures = Vec::new();

    // Every number in the sweep is virtual-clock deterministic — served
    // throughput is completed / sim_secs, not a wall rate — so the gates
    // are tight: any drift is a decision change, not noise.
    for p in &sweep.points {
        let b = p.batch_max;
        let qps_key = format!("b{b}_queries_per_sec");
        match json_number(&text, &qps_key) {
            Ok(base) => {
                if let Err(e) = gate(&qps_key, p.queries_per_sec, base, 0.05, true) {
                    failures.push(e);
                }
            }
            Err(e) => failures.push(e),
        }
        let dmr_key = format!("b{b}_deadline_miss_rate");
        match json_number(&text, &dmr_key) {
            Ok(base) => {
                let ceiling = base + BATCH_DMR_CEILING_PP;
                let regressed = p.deadline_miss_rate > ceiling;
                println!(
                    "  {dmr_key:<22} {:>10.4}  (baseline {base:>10.4}, max tolerated {ceiling:>10.4}) {}",
                    p.deadline_miss_rate,
                    if regressed { "REGRESSED" } else { "ok" }
                );
                if regressed {
                    failures.push(format!(
                        "{dmr_key} regressed: {:.4} vs baseline {base:.4}",
                        p.deadline_miss_rate
                    ));
                }
            }
            Err(e) => failures.push(e),
        }
    }
    match json_number(&text, "speedup_b16") {
        Ok(base) => {
            if let Err(e) = gate("speedup_b16", sweep.speedup(16), base, 0.10, true) {
                failures.push(e);
            }
        }
        Err(e) => failures.push(e),
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn run_shard_sweep() -> ShardSweep {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut points = Vec::with_capacity(SHARD_SWEEP.len());
    println!("  scaled offered load (per-shard pressure constant):");
    for &shards in &SHARD_SWEEP {
        let bench = setup(shards);
        let _ = serve_once(&bench, shards); // warmup, untimed
        let (report, _) = serve_once(&bench, shards);
        let point = ShardPoint {
            shards,
            queries: bench.workload.len(),
            queries_per_sec: bench.workload.len() as f64 / report.wall_secs.max(1e-9),
            p99_latency_ms: 1e3 * report.metrics.latency.quantile(0.99).unwrap_or(0.0),
            deadline_miss_rate: report.summary.deadline_miss_rate(),
        };
        println!(
            "  S={:<2} {:>5} queries  {:>9.0} q/s  p99 {:>8.3} ms  dmr {:>6.3}%  ({:.3}s wall)",
            point.shards,
            point.queries,
            point.queries_per_sec,
            point.p99_latency_ms,
            100.0 * point.deadline_miss_rate,
            report.wall_secs,
        );
        points.push(point);
    }
    // Fixed total offered load: the S=1 workload, re-served at every shard
    // count. Total work is constant, so any speedup is pure parallelism —
    // and the flattening of this series is the scaling plateau itself.
    let bench = setup(1);
    let mut fixed = Vec::with_capacity(SHARD_SWEEP.len());
    println!(
        "  fixed total offered load ({} queries at {BASE_RATE:.0} q/s):",
        bench.workload.len()
    );
    for &shards in &SHARD_SWEEP {
        let _ = serve_once(&bench, shards); // warmup, untimed
        let (report, _) = serve_once(&bench, shards);
        let point = ShardPoint {
            shards,
            queries: bench.workload.len(),
            queries_per_sec: bench.workload.len() as f64 / report.wall_secs.max(1e-9),
            p99_latency_ms: 1e3 * report.metrics.latency.quantile(0.99).unwrap_or(0.0),
            deadline_miss_rate: report.summary.deadline_miss_rate(),
        };
        println!(
            "  S={:<2} {:>5} queries  {:>9.0} q/s  p99 {:>8.3} ms  dmr {:>6.3}%  ({:.3}s wall)",
            point.shards,
            point.queries,
            point.queries_per_sec,
            point.p99_latency_ms,
            100.0 * point.deadline_miss_rate,
            report.wall_secs,
        );
        fixed.push(point);
    }
    ShardSweep { cores, points, fixed }
}

/// Fixture for the `--steal` comparison: a Zipfian hot-key trace whose
/// hash-routed partition overloads one shard while its siblings idle.
/// Deadlines are generous enough that queries survive a rebalancing hop
/// but tight enough that a saturated hot shard sheds them as expiries;
/// ForceAll admission keeps the offered set identical across both passes
/// so served throughput measures retirement capacity, not gatekeeping.
fn setup_steal() -> BenchSetup {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = STEAL_QUERIES;
    config.traffic = Traffic::Poisson { rate_per_sec: STEAL_RATE };
    let mut config = config.with_deadline_millis(STEAL_DEADLINE_MS);
    config.admission = AdmissionMode::ForceAll;
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload().with_zipf_keys(STEAL_KEYS, STEAL_THETA, ctx.config.seed);
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;
    BenchSetup { ensemble: ctx.ensemble, pipeline, workload, seed: ctx.config.seed }
}

/// One virtual-clock sharded pass with an optional steal epoch.
fn serve_once_steal(bench: &BenchSetup, steal_epoch: Option<SimDuration>) -> ServeReport {
    let scfg = ServeConfig {
        mode: ClockMode::Virtual,
        shards: STEAL_SHARDS,
        steal_epoch,
        ..ServeConfig::default()
    };
    let report =
        serve_schemble(&bench.ensemble, &bench.pipeline, &bench.workload, bench.seed, &scfg);
    assert_eq!(report.stats.open(), 0, "bench run left queries open");
    report
}

fn run_steal_bench() -> Result<StealResult, String> {
    let bench = setup_steal();
    let off = serve_once_steal(&bench, None);
    let on = serve_once_steal(&bench, Some(SimDuration::from_millis(STEAL_EPOCH_MS)));

    let off_qps = off.stats.completed as f64 / off.sim_secs.max(1e-9);
    let on_qps = on.stats.completed as f64 / on.sim_secs.max(1e-9);
    let result = StealResult {
        queries: bench.workload.len(),
        shards: STEAL_SHARDS,
        zipf_keys: STEAL_KEYS,
        zipf_theta: STEAL_THETA,
        steal_epoch_ms: STEAL_EPOCH_MS,
        off_completed: off.stats.completed,
        off_queries_per_sec: off_qps,
        off_deadline_miss_rate: off.summary.deadline_miss_rate(),
        on_completed: on.stats.completed,
        on_queries_per_sec: on_qps,
        on_deadline_miss_rate: on.summary.deadline_miss_rate(),
        queries_stolen: on.stats.stolen_in,
        speedup: on_qps / off_qps.max(1e-9),
    };

    // Hard acceptance gates, applied on every run (not just --check). All
    // of these are virtual-clock deterministic.
    if off.stats.stolen_in != 0 {
        return Err(format!(
            "steal-off pass stole {} queries; the reference must be untouched",
            off.stats.stolen_in
        ));
    }
    if result.queries_stolen == 0 {
        return Err("stealing-on pass never stole under a saturated hot key".into());
    }
    if result.speedup < STEAL_SPEEDUP_FLOOR {
        return Err(format!(
            "stealing speedup too small: {:.3}x served throughput at S = {STEAL_SHARDS} \
             (floor {STEAL_SPEEDUP_FLOOR:.2}x)",
            result.speedup
        ));
    }
    let dmr_delta = result.on_deadline_miss_rate - result.off_deadline_miss_rate;
    if dmr_delta > STEAL_DMR_CEILING_PP {
        return Err(format!(
            "stealing costs deadlines: miss rate {:.4} on vs {:.4} off \
             (+{:.2} pp > +{:.2} pp ceiling)",
            result.on_deadline_miss_rate,
            result.off_deadline_miss_rate,
            100.0 * dmr_delta,
            100.0 * STEAL_DMR_CEILING_PP
        ));
    }
    Ok(result)
}

fn check_steal(result: &StealResult, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    println!("stealing check vs {baseline_path}:");
    let mut failures = Vec::new();
    // Virtual-clock deterministic throughout: tight gates, any drift is a
    // decision change rather than runner noise.
    for (label, new, key, tol, higher) in [
        ("off_queries_per_sec", result.off_queries_per_sec, "off_queries_per_sec", 0.05, true),
        ("on_queries_per_sec", result.on_queries_per_sec, "on_queries_per_sec", 0.05, true),
        ("speedup", result.speedup, "speedup", 0.10, true),
        ("queries_stolen", result.queries_stolen as f64, "queries_stolen", 0.25, true),
    ] {
        match json_number(&text, key) {
            Ok(base) => {
                if let Err(e) = gate(label, new, base, tol, higher) {
                    failures.push(e);
                }
            }
            Err(e) => failures.push(e),
        }
    }
    match json_number(&text, "on_deadline_miss_rate") {
        Ok(base) => {
            let ceiling = base + STEAL_DMR_CEILING_PP;
            let regressed = result.on_deadline_miss_rate > ceiling;
            println!(
                "  {:<22} {:>10.4}  (baseline {base:>10.4}, max tolerated {ceiling:>10.4}) {}",
                "on_deadline_miss_rate",
                result.on_deadline_miss_rate,
                if regressed { "REGRESSED" } else { "ok" }
            );
            if regressed {
                failures.push(format!(
                    "on_deadline_miss_rate regressed: {:.4} vs baseline {base:.4}",
                    result.on_deadline_miss_rate
                ));
            }
        }
        Err(e) => failures.push(e),
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// One gate: `label` regressed if the new value is worse than the baseline
/// by more than `tolerance` (relative). `higher_is_better` flips direction.
fn gate(
    label: &str,
    new: f64,
    base: f64,
    tolerance: f64,
    higher_is_better: bool,
) -> Result<(), String> {
    let regressed = if higher_is_better {
        new < base / (1.0 + tolerance)
    } else {
        new > base * (1.0 + tolerance)
    };
    let arrow = if higher_is_better { "min" } else { "max" };
    println!(
        "  {label:<22} {new:>10.3}  (baseline {base:>10.3}, {arrow} tolerated {:>10.3}) {}",
        if higher_is_better { base / (1.0 + tolerance) } else { base * (1.0 + tolerance) },
        if regressed { "REGRESSED" } else { "ok" }
    );
    if regressed {
        return Err(format!("{label} regressed: {new:.3} vs baseline {base:.3}"));
    }
    Ok(())
}

fn check(result: &BenchResult, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    println!("regression check vs {baseline_path}:");
    let mut failures = Vec::new();
    for (label, new, key, tol, higher) in [
        ("p50_latency_ms", result.p50_latency_ms, "p50_latency_ms", 0.20, false),
        ("p99_latency_ms", result.p99_latency_ms, "p99_latency_ms", 0.20, false),
        ("queries_per_sec", result.queries_per_sec, "queries_per_sec", 3.0, true),
        ("plans_per_sec", result.plans_per_sec, "plans_per_sec", 3.0, true),
        ("sched_overhead_us", result.sched_overhead_us, "sched_overhead_us", 3.0, false),
    ] {
        if let Err(e) = gate(label, new, json_number(&text, key)?, tol, higher) {
            failures.push(e);
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn check_shards(sweep: &ShardSweep, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    println!("shard-scaling check vs {baseline_path} ({} cores):", sweep.cores);
    let mut failures = Vec::new();

    // Per-S quality metrics are virtual-clock deterministic — any drift is
    // a decision change. p99 gates at 20%; the miss rate gates absolutely
    // (baselines can legitimately be 0, where a relative gate degenerates).
    for p in &sweep.points {
        let s = p.shards;
        let p99_key = format!("s{s}_p99_latency_ms");
        match json_number(&text, &p99_key) {
            Ok(base) => {
                if let Err(e) = gate(&p99_key, p.p99_latency_ms, base, 0.20, false) {
                    failures.push(e);
                }
            }
            Err(e) => failures.push(e),
        }
        let dmr_key = format!("s{s}_deadline_miss_rate");
        match json_number(&text, &dmr_key) {
            Ok(base) => {
                let ceiling = base + 0.01;
                let regressed = p.deadline_miss_rate > ceiling;
                println!(
                    "  {dmr_key:<22} {:>10.4}  (baseline {base:>10.4}, max tolerated {ceiling:>10.4}) {}",
                    p.deadline_miss_rate,
                    if regressed { "REGRESSED" } else { "ok" }
                );
                if regressed {
                    failures.push(format!(
                        "{dmr_key} regressed: {:.4} vs baseline {base:.4}",
                        p.deadline_miss_rate
                    ));
                }
            }
            Err(e) => failures.push(e),
        }
    }

    // Fixed-load quality metrics are just as deterministic: the same
    // workload partitioned S ways must reproduce its latency profile.
    for p in &sweep.fixed {
        let s = p.shards;
        let p99_key = format!("f{s}_p99_latency_ms");
        match json_number(&text, &p99_key) {
            Ok(base) => {
                if let Err(e) = gate(&p99_key, p.p99_latency_ms, base, 0.20, false) {
                    failures.push(e);
                }
            }
            Err(e) => failures.push(e),
        }
    }
    // The fixed-load speedup is wall-clock dependent (and flat on a
    // single-core runner by construction), so it only gates loosely
    // against its own baseline — its value is the recorded series itself.
    match json_number(&text, "fixed_speedup_s4") {
        Ok(base) => {
            if let Err(e) = gate("fixed_speedup_s4", sweep.fixed_speedup(4), base, 0.50, true) {
                failures.push(e);
            }
        }
        Err(e) => failures.push(e),
    }

    // Throughput scaling. A single-core runner cannot show parallel
    // speedup (shard threads time-slice), so the hard 1.6x/1.2 floor only
    // applies where the machine has the cores to express it; on one core
    // the sweep still gates no-regression against its own baseline.
    let s4 = sweep.speedup(4);
    if sweep.cores >= 2 {
        let regressed = s4 < S4_SPEEDUP_FLOOR;
        println!(
            "  {:<22} {s4:>10.3}  (floor {S4_SPEEDUP_FLOOR:>10.3}, {} cores) {}",
            "speedup_s4",
            sweep.cores,
            if regressed { "REGRESSED" } else { "ok" }
        );
        if regressed {
            failures.push(format!("speedup_s4 regressed: {s4:.3} < floor {S4_SPEEDUP_FLOOR:.3}"));
        }
    } else {
        match json_number(&text, "speedup_s4") {
            Ok(base) => {
                if let Err(e) = gate("speedup_s4", s4, base, 0.25, true) {
                    failures.push(e);
                }
            }
            Err(e) => failures.push(e),
        }
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut write_path: Option<String> = None;
    let mut shards_mode = false;
    let mut obs_mode = false;
    let mut anytime_mode = false;
    let mut batch_mode = false;
    let mut steal_mode = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                i += 1;
                out = Some(args[i].clone());
            }
            "--check" if i + 1 < args.len() => {
                i += 1;
                check_path = Some(args[i].clone());
            }
            "--write" if i + 1 < args.len() => {
                i += 1;
                write_path = Some(args[i].clone());
            }
            "--shards" => shards_mode = true,
            "--obs" => obs_mode = true,
            "--anytime" => anytime_mode = true,
            "--batch" => batch_mode = true,
            "--steal" => steal_mode = true,
            other => {
                eprintln!(
                    "usage: bench_serve [--shards|--obs|--anytime|--batch|--steal] [--out PATH] \
                     [--check BASELINE] [--write PATH]"
                );
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let (json, check_result) = if steal_mode {
        println!(
            "bench_serve --steal: hot-key trace (zipf theta {STEAL_THETA:.1} over {STEAL_KEYS} \
             keys) at S={STEAL_SHARDS}, steal epoch off vs {STEAL_EPOCH_MS} ms"
        );
        let result = match run_steal_bench() {
            Ok(result) => result,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  off: {:>5} completed  {:>8.1} q/s served  dmr {:>6.3}%",
            result.off_completed,
            result.off_queries_per_sec,
            100.0 * result.off_deadline_miss_rate,
        );
        println!(
            "  on:  {:>5} completed  {:>8.1} q/s served  dmr {:>6.3}%  ({} stolen)",
            result.on_completed,
            result.on_queries_per_sec,
            100.0 * result.on_deadline_miss_rate,
            result.queries_stolen,
        );
        println!("  served-throughput speedup with stealing: x{:.2}", result.speedup);
        let check_result = check_path.as_deref().map(|p| check_steal(&result, p));
        (result.to_json(), check_result)
    } else if batch_mode {
        println!(
            "bench_serve --batch: cross-query batching sweep over batch_max in {BATCH_SWEEP:?} \
             on the saturated diurnal trace"
        );
        let sweep = match run_batch_sweep() {
            Ok(sweep) => sweep,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  served-throughput speedups vs batch_max=1: x{:.2} (b=4), x{:.2} (b=16)",
            sweep.speedup(4),
            sweep.speedup(16),
        );
        let check_result = check_path.as_deref().map(|p| check_batch(&sweep, p));
        (sweep.to_json(), check_result)
    } else if anytime_mode {
        println!("bench_serve --anytime: accuracy vs compute on the diurnal trace");
        let result = match run_anytime_bench() {
            Ok(result) => result,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  acc {:.2}% full vs {:.2}% anytime ({:+.2} pp); {} tasks quit ({:.1}% of \
             attempted); {:.2} vs {:.2} models/query; p99 {:.3} vs {:.3} ms",
            result.acc_full_pct,
            result.acc_anytime_pct,
            -result.acc_delta_pp,
            result.tasks_saved,
            100.0 * result.saved_frac,
            result.models_per_query_full,
            result.models_per_query_anytime,
            result.p99_full_ms,
            result.p99_anytime_ms,
        );
        let check_result = check_path.as_deref().map(|p| check_anytime(&result, p));
        (result.to_json(), check_result)
    } else if obs_mode {
        println!("bench_serve --obs: introspection overhead, obs-off vs full obs stack");
        let result = match run_obs_bench() {
            Ok(result) => result,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  p99 {:.3} ms dark vs {:.3} ms with obs ({:.2}% delta); {} events, fold {:.2} ms, \
             wall {:.3}s vs {:.3}s",
            result.p99_obs_off_ms,
            result.p99_obs_on_ms,
            result.p99_obs_delta_pct,
            result.events,
            result.obs_fold_ms,
            result.wall_off_secs,
            result.wall_on_secs,
        );
        let check_result = check_path.as_deref().map(|p| check_obs(&result, p));
        (result.to_json(), check_result)
    } else if shards_mode {
        println!("bench_serve --shards: scaling sweep over S in {SHARD_SWEEP:?}");
        let sweep = run_shard_sweep();
        println!(
            "  scaled-load speedups vs S=1: x{:.2} (S=2), x{:.2} (S=4), x{:.2} (S=8) on {} cores",
            sweep.speedup(2),
            sweep.speedup(4),
            sweep.speedup(8),
            sweep.cores,
        );
        println!(
            "  fixed-load speedups vs S=1:  x{:.2} (S=2), x{:.2} (S=4), x{:.2} (S=8)",
            sweep.fixed_speedup(2),
            sweep.fixed_speedup(4),
            sweep.fixed_speedup(8),
        );
        let check_result = check_path.as_deref().map(|p| check_shards(&sweep, p));
        (sweep.to_json(), check_result)
    } else {
        let result = run_bench();
        println!(
            "bench_serve: {} queries, p50 {:.3} ms, p99 {:.3} ms, {:.0} q/s, {:.0} plans/s, {:.1} us/plan, {:.2}s wall",
            result.queries,
            result.p50_latency_ms,
            result.p99_latency_ms,
            result.queries_per_sec,
            result.plans_per_sec,
            result.sched_overhead_us,
            result.wall_secs,
        );
        let check_result = check_path.as_deref().map(|p| check(&result, p));
        (result.to_json(), check_result)
    };

    let out = out.unwrap_or_else(|| {
        if steal_mode {
            "BENCH_steal.json"
        } else if batch_mode {
            "BENCH_batch.json"
        } else if anytime_mode {
            "BENCH_anytime.json"
        } else if obs_mode {
            "BENCH_obs.json"
        } else if shards_mode {
            "BENCH_serve_shards.json"
        } else {
            "BENCH_serve.json"
        }
        .to_string()
    });
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if let Some(path) = write_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote baseline {path}");
    }
    if let Some(Err(e)) = check_result {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
