//! `bench_serve` — serving-runtime benchmark with a regression gate.
//!
//! Replays a small deterministic workload through the virtual-clock serving
//! runtime and reports:
//!
//! * `p50_latency_ms` / `p99_latency_ms` — end-to-end query latency
//!   quantiles. Virtual clock + fixed seed make these **exactly**
//!   reproducible: any drift means a decision change, not noise.
//! * `plans_per_sec` — scheduler re-planning throughput (plans ÷ wall time
//!   of the run loop).
//! * `sched_overhead_us` — mean wall-clock cost of one plan.
//!
//! ```text
//! bench_serve [--out PATH] [--check BASELINE] [--write PATH]
//! ```
//!
//! `--out` (default `BENCH_serve.json`) writes the results as JSON — the CI
//! bench job uploads it as an artifact. `--check` compares against a
//! checked-in baseline and exits non-zero on regression: >20% on the
//! deterministic latency quantiles; 4x on the wall-clock-dependent
//! throughput/overhead numbers (CI runners vary widely in single-core
//! speed, so a tight gate there would only produce flakes). `--write`
//! regenerates the baseline file.

use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::schemble::SchembleConfig;
use schemble_core::predictor::OnlineScorer;
use schemble_core::scheduler::DpScheduler;
use schemble_data::TaskKind;
use schemble_serve::{serve_schemble, ClockMode, ServeConfig};
use schemble_trace::TraceSink;
use std::process::ExitCode;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

struct BenchResult {
    queries: usize,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    plans_per_sec: f64,
    sched_overhead_us: f64,
    wall_secs: f64,
}

impl BenchResult {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"queries\": {},\n  \"p50_latency_ms\": {:.4},\n  \"p99_latency_ms\": {:.4},\n  \"plans_per_sec\": {:.1},\n  \"sched_overhead_us\": {:.2},\n  \"wall_secs\": {:.3}\n}}\n",
            self.queries,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.plans_per_sec,
            self.sched_overhead_us,
            self.wall_secs,
        )
    }
}

/// Pulls `"key": <number>` out of the baseline JSON. The file is produced
/// by [`BenchResult::to_json`], so a flat scan is all the parsing needed.
fn json_number(text: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat).ok_or_else(|| format!("baseline is missing \"{key}\""))?;
    let rest = &text[start + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().map_err(|_| format!("baseline \"{key}\" is not a number"))
}

fn run_bench() -> BenchResult {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = 600;
    config.traffic = Traffic::Poisson { rate_per_sec: 35.0 };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let art = ctx.artifacts().clone();
    let mut pipeline = SchembleConfig::new(
        Box::new(DpScheduler::default()),
        OnlineScorer::Predictor(art.predictor),
        art.profile,
    );
    pipeline.admission = ctx.config.admission;

    let sink = TraceSink::enabled();
    // Events off: only the planning self-profile records, so the bench
    // measures the scheduler, not the trace ring.
    sink.set_enabled(false);
    let scfg = ServeConfig {
        mode: ClockMode::Virtual,
        trace: Some(Arc::clone(&sink)),
        ..ServeConfig::default()
    };
    let report = serve_schemble(&ctx.ensemble, &pipeline, &workload, ctx.config.seed, &scfg);
    assert_eq!(report.stats.open(), 0, "bench run left queries open");

    let p = &sink.planning;
    let plans = p.plans.load(Relaxed);
    BenchResult {
        queries: workload.len(),
        p50_latency_ms: 1e3 * report.metrics.latency.quantile(0.50).unwrap_or(0.0),
        p99_latency_ms: 1e3 * report.metrics.latency.quantile(0.99).unwrap_or(0.0),
        plans_per_sec: plans as f64 / report.wall_secs.max(1e-9),
        sched_overhead_us: 1e6 * p.mean_secs().unwrap_or(0.0),
        wall_secs: report.wall_secs,
    }
}

/// One gate: `label` regressed if the new value is worse than the baseline
/// by more than `tolerance` (relative). `higher_is_better` flips direction.
fn gate(
    label: &str,
    new: f64,
    base: f64,
    tolerance: f64,
    higher_is_better: bool,
) -> Result<(), String> {
    let regressed = if higher_is_better {
        new < base / (1.0 + tolerance)
    } else {
        new > base * (1.0 + tolerance)
    };
    let arrow = if higher_is_better { "min" } else { "max" };
    println!(
        "  {label:<18} {new:>10.3}  (baseline {base:>10.3}, {arrow} tolerated {:>10.3}) {}",
        if higher_is_better { base / (1.0 + tolerance) } else { base * (1.0 + tolerance) },
        if regressed { "REGRESSED" } else { "ok" }
    );
    if regressed {
        return Err(format!("{label} regressed: {new:.3} vs baseline {base:.3}"));
    }
    Ok(())
}

fn check(result: &BenchResult, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    println!("regression check vs {baseline_path}:");
    let mut failures = Vec::new();
    for (label, new, key, tol, higher) in [
        ("p50_latency_ms", result.p50_latency_ms, "p50_latency_ms", 0.20, false),
        ("p99_latency_ms", result.p99_latency_ms, "p99_latency_ms", 0.20, false),
        ("plans_per_sec", result.plans_per_sec, "plans_per_sec", 3.0, true),
        ("sched_overhead_us", result.sched_overhead_us, "sched_overhead_us", 3.0, false),
    ] {
        if let Err(e) = gate(label, new, json_number(&text, key)?, tol, higher) {
            failures.push(e);
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_serve.json".to_string();
    let mut check_path: Option<String> = None;
    let mut write_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                i += 1;
                out = args[i].clone();
            }
            "--check" if i + 1 < args.len() => {
                i += 1;
                check_path = Some(args[i].clone());
            }
            "--write" if i + 1 < args.len() => {
                i += 1;
                write_path = Some(args[i].clone());
            }
            other => {
                eprintln!("usage: bench_serve [--out PATH] [--check BASELINE] [--write PATH]");
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let result = run_bench();
    println!(
        "bench_serve: {} queries, p50 {:.3} ms, p99 {:.3} ms, {:.0} plans/s, {:.1} us/plan, {:.2}s wall",
        result.queries,
        result.p50_latency_ms,
        result.p99_latency_ms,
        result.plans_per_sec,
        result.sched_overhead_us,
        result.wall_secs,
    );
    let json = result.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if let Some(path) = write_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote baseline {path}");
    }
    if let Some(path) = check_path {
        if let Err(e) = check(&result, &path) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
