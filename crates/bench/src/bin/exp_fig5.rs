//! **Fig. 5** — model preferences are unstable across architectures and
//! seeds; the discrepancy score is not.
//!
//! On the CIFAR100-like six-architecture zoo, computes the correlation
//! matrix between per-model *preference vectors* — `[d(f_k(x_i), E(x_i))]_i`
//! — across architectures, plus the same-architecture/different-seed
//! diagonal, and contrasts it with the discrepancy score's cross-seed
//! correlation. Shape: off-diagonal and diagonal preference correlations are
//! weak; the discrepancy diagonal is clearly stronger.

use schemble_bench::fmt::{f3, print_table};
use schemble_bench::runner::sized;
use schemble_core::calibration::Calibration;
use schemble_core::discrepancy::{DifficultyMetric, DiscrepancyScorer};
use schemble_data::TaskKind;
use schemble_models::zoo::{cifar_zoo, CIFAR_ARCHS};
use schemble_models::{DifficultyDist, SampleGenerator};
use schemble_tensor::stats::pearson;

fn main() {
    let n = sized(3000);
    let seed_a = 1u64;
    let seed_b = 2u64;
    let zoo_a = cifar_zoo(6, seed_a);
    let zoo_b = cifar_zoo(6, seed_b);
    let gen = SampleGenerator::new(zoo_a.spec, DifficultyDist::Uniform, 99);
    let samples = gen.batch(0, n);

    // Preference vector of model k in an ensemble: calibrated distance to
    // the ensemble output per sample.
    let preferences = |ens: &schemble_models::Ensemble| -> Vec<Vec<f64>> {
        let cal = Calibration::fit(ens, &samples);
        samples
            .iter()
            .map(|s| {
                let outs = ens.infer_all(s);
                let refs: Vec<(usize, &schemble_models::Output)> =
                    outs.iter().enumerate().collect();
                let e = ens.aggregate(&refs);
                (0..ens.m())
                    .map(|k| cal.apply(k, &outs[k]).distance(&cal.apply(k, &e)))
                    .collect::<Vec<f64>>()
            })
            .collect()
    };
    let pref_a = preferences(&zoo_a);
    let pref_b = preferences(&zoo_b);
    let column =
        |prefs: &[Vec<f64>], k: usize| -> Vec<f64> { prefs.iter().map(|row| row[k]).collect() };

    // Cross-architecture correlations (within seed A) + same-arch diagonal
    // across seeds, + the discrepancy column.
    let dis_a = DiscrepancyScorer::fit(&zoo_a, &samples, DifficultyMetric::Discrepancy)
        .score_batch(&zoo_a, &samples);
    let dis_b = DiscrepancyScorer::fit(&zoo_b, &samples, DifficultyMetric::Discrepancy)
        .score_batch(&zoo_b, &samples);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, arch) in CIFAR_ARCHS.iter().enumerate() {
        let mut row = vec![arch.to_string()];
        for j in 0..6 {
            let c = if i == j {
                // Diagonal: same architecture, different training seed.
                pearson(&column(&pref_a, i), &column(&pref_b, i))
            } else {
                pearson(&column(&pref_a, i), &column(&pref_a, j))
            };
            row.push(f3(c));
        }
        row.push(f3(pearson(&column(&pref_a, i), &dis_a)));
        rows.push(row);
    }
    let dis_diag = pearson(&dis_a, &dis_b);
    let mut dis_row = vec!["Dis".to_string()];
    for j in 0..6 {
        dis_row.push(f3(pearson(&dis_a, &column(&pref_a, j))));
    }
    dis_row.push(f3(dis_diag));
    rows.push(dis_row);

    print_table(
        "Fig. 5 — preference/discrepancy correlations (diagonal = reseeded twin)",
        &["", "V", "Re18", "Re101", "D", "I", "Rn50", "Dis"],
        &rows,
    );

    // The paper's claim, quantified.
    let mean_pref_diag: f64 =
        (0..6).map(|i| pearson(&column(&pref_a, i), &column(&pref_b, i))).sum::<f64>() / 6.0;
    println!(
        "\n  mean same-arch cross-seed preference correlation: {mean_pref_diag:.3}\n  \
         discrepancy cross-seed correlation:               {dis_diag:.3}\n  \
         (paper: preferences are poorly consistent; the discrepancy score is much stronger)"
    );
    assert!(dis_diag > mean_pref_diag, "discrepancy must be more seed-stable than preferences");
    let _ = TaskKind::ALL; // keep the import pattern consistent across drivers
}
