//! Ablations of Schemble's design choices (beyond the paper's own Exp-3/4):
//!
//! 1. **Profile bins** — how coarse can the score binning get before the
//!    reward function stops discriminating?
//! 2. **Eq. 2's λ** — the paper claims the auxiliary task head (λ > 0)
//!    improves discrepancy prediction; sweep λ including 0 (no task head
//!    signal) and large values (task loss drowned out).
//! 3. **Predictor latency** — how sensitive is the pipeline to the
//!    difficulty-prediction delay (Fig. 13's cost, injected at 0–15 ms)?
//! 4. **Fast path (§VIII)** — the skip-the-scheduler optimisation at light
//!    and heavy load.

use schemble_bench::fmt::{f3, pct, print_table};
use schemble_bench::runner::sized;
use schemble_core::artifacts::SchembleArtifacts;
use schemble_core::discrepancy::{DifficultyMetric, DiscrepancyScorer};
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::schemble::{run_schemble, SchembleConfig};
use schemble_core::predictor::{train_score_predictor_with_lambda, OnlineScorer};
use schemble_core::scheduler::DpScheduler;
use schemble_data::TaskKind;
use schemble_sim::rng::stream_rng;
use schemble_sim::SimDuration;
use schemble_tensor::stats::pearson;

fn main() {
    let task = TaskKind::TextMatching;
    let mut base = ExperimentConfig::paper_default(task, 42);
    base.n_queries = sized(5000);
    base.traffic = Traffic::Diurnal { day_secs: base.n_queries as f64 / 15.0 };

    // ---- 1. profile bins --------------------------------------------------
    let mut rows = Vec::new();
    for bins in [2usize, 5, 10, 20, 40] {
        let ctx = ExperimentContext::new(base.clone());
        let art = SchembleArtifacts::build(
            &ctx.ensemble,
            &ctx.generator,
            base.history_n,
            bins,
            DifficultyMetric::Discrepancy,
            42,
        );
        let workload = ctx.workload();
        let config = SchembleConfig::new(
            Box::new(DpScheduler::default()),
            OnlineScorer::Predictor(art.predictor.clone()),
            art.profile.clone(),
        );
        let summary = run_schemble(&ctx.ensemble, &config, &workload, 42);
        rows.push(vec![
            bins.to_string(),
            pct(summary.accuracy()),
            pct(summary.deadline_miss_rate()),
        ]);
    }
    print_table("Ablation 1 — profile bin count (TM, diurnal)", &["bins", "Acc %", "DMR %"], &rows);

    // ---- 2. Eq. 2 λ -------------------------------------------------------
    let ens = task.ensemble(42);
    let gen = task.default_generator(42);
    let history = gen.batch(1 << 42, sized(2000));
    let scorer = DiscrepancyScorer::fit(&ens, &history, DifficultyMetric::Discrepancy);
    let scores = scorer.score_batch(&ens, &history);
    let test = gen.batch(1 << 43, sized(800));
    let truth = scorer.score_batch(&ens, &test);
    let mut rows = Vec::new();
    for lambda in [0.0, 0.05, 0.2, 1.0, 5.0] {
        let mut rng = stream_rng(42, "ablation-lambda");
        let nn = train_score_predictor_with_lambda(&ens, &history, &scores, lambda, &mut rng);
        let predicted: Vec<f64> = test.iter().map(|s| nn.predict_score(&s.features)).collect();
        rows.push(vec![format!("{lambda}"), f3(pearson(&predicted, &truth))]);
    }
    print_table(
        "Ablation 2 — Eq. 2 weight λ vs predictor/oracle correlation",
        &["λ", "corr"],
        &rows,
    );
    println!(
        "  (λ = 0 removes the discrepancy head's gradient entirely — the head\n   \
         never trains; very large λ drowns the auxiliary task signal the paper\n   \
         found helpful. λ = 0.2 is the paper's choice.)"
    );

    // ---- 2b. predictor architecture (MLP vs MV-LSTM-style) -----------------
    let mut rows = Vec::new();
    {
        let mut rng = stream_rng(42, "ablation-arch");
        let mlp =
            schemble_core::predictor::train_score_predictor(&ens, &history, &scores, &mut rng);
        let mlp_pred: Vec<f64> = test.iter().map(|s| mlp.predict_score(&s.features)).collect();
        rows.push(vec![
            "MLP".to_string(),
            mlp.param_count().to_string(),
            f3(pearson(&mlp_pred, &truth)),
        ]);
        let mut rng = stream_rng(42, "ablation-arch-seq");
        let seq =
            schemble_core::predictor::train_seq_score_predictor(&ens, &history, &scores, &mut rng);
        let seq_pred: Vec<f64> = test.iter().map(|s| seq.predict_score(&s.features)).collect();
        rows.push(vec![
            "MV-LSTM".to_string(),
            seq.param_count().to_string(),
            f3(pearson(&seq_pred, &truth)),
        ]);
    }
    print_table(
        "Ablation 2b — predictor architecture vs oracle correlation",
        &["arch", "params", "corr"],
        &rows,
    );

    // ---- 3. predictor latency --------------------------------------------
    let mut rows = Vec::new();
    let mut ctx = ExperimentContext::new(base.clone());
    let art = ctx.artifacts().clone();
    let workload = ctx.workload();
    for ms in [0u64, 3, 8, 15, 30] {
        let mut config = SchembleConfig::new(
            Box::new(DpScheduler::default()),
            OnlineScorer::Predictor(art.predictor.clone()),
            art.profile.clone(),
        );
        config.predictor_latency = SimDuration::from_millis(ms);
        let summary = run_schemble(&ctx.ensemble, &config, &workload, 42);
        rows.push(vec![
            format!("{ms}"),
            pct(summary.accuracy()),
            pct(summary.deadline_miss_rate()),
            format!("{:.3}", summary.latency_stats().mean),
        ]);
    }
    print_table(
        "Ablation 3 — discrepancy-prediction latency (TM, 105ms deadlines)",
        &["pred ms", "Acc %", "DMR %", "mean lat s"],
        &rows,
    );

    // ---- 4. fast path ------------------------------------------------------
    let mut rows = Vec::new();
    for (label, rate) in [("light (3/s)", 3.0), ("heavy (45/s)", 45.0)] {
        let mut cfg = base.clone();
        cfg.traffic = Traffic::Poisson { rate_per_sec: rate };
        cfg.n_queries = sized(1500);
        let mut ctx = ExperimentContext::new(cfg);
        let art = ctx.artifacts().clone();
        let workload = ctx.workload();
        for fast in [false, true] {
            let mut config = SchembleConfig::new(
                Box::new(DpScheduler::default()),
                OnlineScorer::Predictor(art.predictor.clone()),
                art.profile.clone(),
            );
            config.fast_path = fast;
            let summary = run_schemble(&ctx.ensemble, &config, &workload, 42);
            rows.push(vec![
                label.to_string(),
                if fast { "on" } else { "off" }.to_string(),
                pct(summary.accuracy()),
                pct(summary.deadline_miss_rate()),
                format!("{:.4}", summary.latency_stats().mean),
            ]);
        }
    }
    print_table(
        "Ablation 4 — §VIII fast-path dispatch",
        &["load", "fast path", "Acc %", "DMR %", "mean lat s"],
        &rows,
    );
}
