//! **Fig. 19** — schedulers on the bursty 14–19 h trace slice.
//!
//! Cuts the afternoon burst window out of the one-day text-matching trace
//! (a [`DiurnalSliceTrace`]: the exact arrivals the full day places in
//! 14–19 h, re-based to `t = 0`) and runs the scheduling-algorithm ablation
//! on that slice alone — every query in the run faces burst-level
//! contention, unlike `exp_scheduler`'s whole-day run which post-filters
//! records. Shape: under sustained pressure the greedy orderings lose
//! accuracy to queue expiry while DP(0.01) sheds models instead; DP(0.001)
//! pays too much planning latency precisely when the queue is longest.

use schemble_bench::fmt::{f3, pct, print_table};
use schemble_bench::runner::sized;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind};
use schemble_core::scheduler::QueueOrder;
use schemble_data::{DiurnalSliceTrace, DiurnalTrace, TaskKind, Workload};

fn variants() -> Vec<PipelineKind> {
    vec![
        PipelineKind::Greedy(QueueOrder::Edf),
        PipelineKind::Greedy(QueueOrder::Fifo),
        PipelineKind::Greedy(QueueOrder::Sjf),
        PipelineKind::DpDelta(0.1),
        PipelineKind::DpDelta(0.01),
        PipelineKind::DpDelta(0.001),
    ]
}

fn main() {
    let target_slice_queries = sized(5000);
    let mut config =
        ExperimentConfig::paper_default(TaskKind::TextMatching, 42).with_deadline_millis(105.0);

    // Size the *day* so the 14-19h window holds the target volume at the
    // paper's 15 queries/s average rate.
    let slice_shape = DiurnalSliceTrace {
        day: DiurnalTrace { n: 0, day_secs: 0.0 },
        start_hour: 14,
        end_hour: 19,
    };
    let day_n = (target_slice_queries as f64 / slice_shape.expected_fraction()).round() as usize;
    let day = DiurnalTrace { n: day_n, day_secs: day_n as f64 / 15.0 };
    let slice = DiurnalSliceTrace { day, start_hour: 14, end_hour: 19 };

    config.n_queries = day_n;
    let mut ctx = ExperimentContext::new(config);
    let workload =
        Workload::generate(&ctx.generator, &slice, &ctx.config.deadline.clone(), ctx.config.seed);
    let span = workload.duration.as_secs_f64();
    println!(
        "slice 14-19h: {} queries over {:.0}s ({:.1}/s sustained vs 15/s day average)",
        workload.len(),
        span,
        workload.len() as f64 / span
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for kind in variants() {
        let summary = ctx.run(kind, &workload);
        rows.push(vec![
            kind.label(),
            summary.len().to_string(),
            pct(summary.accuracy()),
            pct(summary.deadline_miss_rate()),
            f3(summary.latency_stats().mean),
            format!("{:.2}", summary.mean_models_used()),
        ]);
    }
    print_table(
        "Fig. 19 — scheduling algorithms on the bursty 14-19h slice (text matching)",
        &["scheduler", "n", "Acc %", "DMR %", "lat s", "models/q"],
        &rows,
    );
}
