//! **Exp-5 / Fig. 13** — computation and memory overhead of Schemble.
//!
//! Measures the discrepancy-prediction network's cost relative to the deep
//! ensemble: parameters/memory and a FLOP-based latency proxy, plus a
//! wall-clock microbenchmark of one prediction. Shape: the predictor costs a
//! few percent of the ensemble's runtime and a fraction of a percent of its
//! memory.

use schemble_bench::fmt::print_table;
use schemble_core::artifacts::SchembleArtifacts;
use schemble_data::TaskKind;
use std::time::Instant;

/// Rough parameter counts of the real architectures the synthetic models
/// stand in for (used only to put the predictor's memory in perspective,
/// exactly as Fig. 13 does).
fn reference_params(task: TaskKind) -> (Vec<(&'static str, usize)>, usize) {
    match task {
        TaskKind::TextMatching => (
            vec![("BiLSTM", 4_000_000), ("RoBERTa", 125_000_000), ("BERT", 110_000_000)],
            239_000_000,
        ),
        TaskKind::VehicleCounting => (
            vec![("EfficientDet-0", 3_900_000), ("YOLOv5l6", 76_000_000), ("YOLOX", 54_000_000)],
            133_900_000,
        ),
        TaskKind::ImageRetrieval => {
            (vec![("DELG-R50", 25_000_000), ("DELG-R101", 44_000_000)], 69_000_000)
        }
    }
}

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for task in TaskKind::ALL {
        let ens = task.ensemble(42);
        let gen = task.default_generator(42);
        let art = SchembleArtifacts::build_small(&ens, &gen, 42);
        let predictor = &art.predictor;

        // Wall-clock per prediction.
        let sample = gen.sample(1_000_000);
        let reps = 20_000;
        let start = Instant::now();
        let mut sink = 0.0;
        for _ in 0..reps {
            sink += predictor.predict_score(&sample.features);
        }
        let per_pred_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        std::hint::black_box(sink);

        let (_, total_ref_params) = reference_params(task);
        let ens_latency_ms = ens.slowest_planned_latency().as_millis_f64();
        // The paper deploys the predictor on the GPU next to the ensemble;
        // our FLOP proxy scales its cost against a base model of ~1 GFLOP.
        let flops = predictor.flops_per_sample();
        let runtime_frac = 100.0 * (per_pred_us / 1000.0) / ens_latency_ms;
        let memory_frac = 100.0 * predictor.param_count() as f64 / total_ref_params as f64;
        rows.push(vec![
            task.label().to_string(),
            predictor.param_count().to_string(),
            format!("{} B", predictor.memory_bytes()),
            flops.to_string(),
            format!("{per_pred_us:.1} µs"),
            format!("{runtime_frac:.2} %"),
            format!("{memory_frac:.4} %"),
        ]);
    }
    print_table(
        "Fig. 13 — discrepancy predictor overhead vs the deep ensemble",
        &[
            "task",
            "params",
            "memory",
            "flops/query",
            "latency",
            "% of ens. runtime",
            "% of ens. memory",
        ],
        &rows,
    );
    println!(
        "\n  (paper: predictor ≈ 6.5% of ensemble runtime and 0.4–2% of its memory; \
         our MLP stand-in is far smaller than MV-LSTM/MobileNet, hence even cheaper)"
    );
}
