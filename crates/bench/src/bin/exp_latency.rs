//! **Exp-2 / Table II** — forced processing: every query must be served.
//!
//! Rejection is disabled; the pipelines must eventually process everything.
//! Reports accuracy (vs. the ensemble, deadline-free) plus mean/P95/max
//! latency. Shape: Original's queues blow up (latency in the tens of
//! seconds on the bursty trace), Static/Gating are fast but less accurate,
//! Schemble keeps high accuracy at near-Static latency with the lowest
//! P95/max among the accurate methods.

use schemble_bench::fmt::{pct, print_table};
use schemble_bench::runner::{run_method, sized, standard_methods};
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_core::pipeline::AdmissionMode;
use schemble_data::TaskKind;

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for task in TaskKind::ALL {
        let mut config = ExperimentConfig::paper_default(task, 42);
        config.n_queries = sized(6000);
        if let Traffic::Diurnal { .. } = config.traffic {
            config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
        }
        config.admission = AdmissionMode::ForceAll;
        let mut ctx = ExperimentContext::new(config);
        let workload = ctx.workload();
        for method in standard_methods() {
            let summary = run_method(&mut ctx, method, &workload);
            assert!(
                (summary.completion_rate() - 1.0).abs() < 1e-9,
                "{} failed to process everything",
                method.label()
            );
            let stats = summary.latency_stats();
            rows.push(vec![
                task.label().to_string(),
                method.label(),
                pct(summary.processed_accuracy()),
                format!("{:.3}", stats.mean),
                format!("{:.3}", stats.p95),
                format!("{:.3}", stats.max),
            ]);
        }
    }
    print_table(
        "Table II — forced processing: accuracy and latency (seconds)",
        &["task", "method", "Acc %", "mean", "P95", "max"],
        &rows,
    );
    let find = |task: &str, method: &str| {
        rows.iter()
            .find(|r| r[0] == task && r[1] == method)
            .map(|r| r[3].parse::<f64>().expect("numeric"))
            .expect("row")
    };
    println!(
        "\n  TM headline: Original mean latency {:.1}s vs Schemble {:.3}s — {:.0}x \
         (paper: 50.5s vs 0.10s, ~500x)",
        find("TM", "Original"),
        find("TM", "Schemble"),
        find("TM", "Original") / find("TM", "Schemble").max(1e-6)
    );
}
