//! **Exp-7 / Fig. 20** — accuracy-profile estimation and KNN robustness.
//!
//! (a) MSE between the Eq. 3-estimated profile (pairs/singletons profiled,
//!     larger sets extrapolated) and the exactly profiled table, for CIFAR
//!     ensembles of size 3–6. Shape: MSE stays tiny (paper < 1.6e-4 at their
//!     scale; the shape to hold is "estimation ≈ truth").
//! (b) Schemble accuracy with stacking aggregation as the KNN filler's k
//!     sweeps 1→100. Shape: flat — robust to k, slight dip only at k=1.

use schemble_bench::fmt::{pct, print_table};
use schemble_bench::runner::sized;
use schemble_core::discrepancy::{DifficultyMetric, DiscrepancyScorer};
use schemble_core::filling::KnnFiller;
use schemble_core::pipeline::ResultAssembler;
use schemble_core::profiling::AccuracyProfile;
use schemble_data::TaskKind;
use schemble_models::aggregate::train_stacking_meta;
use schemble_models::zoo::cifar_zoo;
use schemble_models::{Aggregator, DifficultyDist, ModelSet, SampleGenerator};
use schemble_sim::rng::stream_rng;

fn main() {
    // --- Fig. 20a ---------------------------------------------------------
    let mut rows: Vec<Vec<String>> = Vec::new();
    for size in 3..=6 {
        let ens = cifar_zoo(size, 42);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 7);
        let history = gen.batch(0, sized(2000));
        let scorer = DiscrepancyScorer::fit(&ens, &history, DifficultyMetric::Discrepancy);
        let scores = scorer.score_batch(&ens, &history);
        let exact = AccuracyProfile::fit(&ens, &history, &scores, 8);
        let estimated = AccuracyProfile::fit_with_cutoff(&ens, &history, &scores, 8, 3);
        rows.push(vec![size.to_string(), format!("{:.2e}", estimated.mse_against(&exact))]);
    }
    print_table(
        "Fig. 20a — MSE of Eq. 3 profile estimation vs exact profiling (CIFAR zoo)",
        &["ensemble size", "MSE"],
        &rows,
    );

    // --- Fig. 20b ---------------------------------------------------------
    // Stacking aggregation on text matching; vary the KNN filler's k and
    // measure subset-result accuracy vs the (stacking) ensemble output.
    let task = TaskKind::TextMatching;
    let base = task.ensemble(42);
    let gen = task.default_generator(42);
    let history = gen.batch(0, sized(1500));
    let mut rng = stream_rng(42, "fig20-stacking");
    let rows_bank: Vec<Vec<f64>> = history
        .iter()
        .map(|s| base.infer_all(s).iter().flat_map(|o| o.as_vec()).collect())
        .collect();
    let labels: Vec<schemble_models::Label> = history.iter().map(|s| s.label).collect();
    let meta = train_stacking_meta(&rows_bank, &labels, &base.spec, &mut rng);
    let mut ens = base.clone();
    ens.aggregator = Aggregator::Stacking { meta };

    let eval = gen.batch(1_000_000, sized(800));
    let mut rows: Vec<Vec<String>> = Vec::new();
    for k in [1usize, 5, 10, 25, 50, 100] {
        let filler = KnnFiller::fit(&ens, &history, k);
        let assembler = ResultAssembler::KnnFill(filler);
        // Run the {fast two models} subset through filling + stacking.
        let subset = ModelSet::from_indices(&[0, 1]);
        let correct = eval
            .iter()
            .filter(|s| {
                let outputs = ens.infer_subset(s, subset);
                let result = assembler.assemble(&ens, &outputs, subset);
                let reference = ens.ensemble_output(s);
                result.agrees_with(&reference, &ens.spec)
            })
            .count();
        rows.push(vec![k.to_string(), pct(correct as f64 / eval.len() as f64)]);
    }
    print_table(
        "Fig. 20b — stacking accuracy with KNN filling as k varies (subset {BiLSTM,RoBERTa})",
        &["k", "Acc %"],
        &rows,
    );
}
