// Diagnostic: subset agreement + metric correlations.
use schemble_core::discrepancy::{DifficultyMetric, DiscrepancyScorer};
use schemble_models::{zoo, DifficultyDist, ModelSet, SampleGenerator};
use schemble_tensor::stats::pearson;

fn main() {
    for (name, ens) in [("TM", zoo::text_matching(1)), ("IR", zoo::image_retrieval(1))] {
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::EasySkewed { exponent: 2.5 }, 5);
        let h = gen.batch(0, 3000);
        for set in ModelSet::all_nonempty(ens.m()) {
            if set.len() == ens.m() {
                continue;
            }
            let agree = h
                .iter()
                .filter(|s| {
                    let r = ens.ensemble_output(s);
                    ens.subset_output(s, set).agrees_with(&r, &ens.spec)
                })
                .count() as f64
                / h.len() as f64;
            let map: f64 = h
                .iter()
                .map(|s| {
                    let r = ens.ensemble_output(s);
                    let out = ens.subset_output(s, set);
                    if ens.spec.is_categorical()
                        && matches!(ens.spec, schemble_models::TaskSpec::Retrieval { .. })
                    {
                        1.0 / out.rank_of(r.predicted_class()) as f64
                    } else {
                        agree
                    }
                })
                .sum::<f64>()
                / h.len() as f64;
            println!("{name} subset {set}: agreement {agree:.3} mAP-ish {map:.3}");
        }
    }
    let ens = zoo::text_matching(1);
    let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
    let h = gen.batch(0, 2500);
    let dis = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::Discrepancy);
    let ea = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::EnsembleAgreement);
    let zs: Vec<f64> = h.iter().map(|s| s.difficulty).collect();
    let ds = dis.score_batch(&ens, &h);
    println!(
        "corr(dis,z)={:.3} corr(ea,z)={:.3}",
        pearson(&ds, &zs),
        pearson(&ea.score_batch(&ens, &h), &zs)
    );
    let ens2 = zoo::text_matching(777);
    let dis2 = DiscrepancyScorer::fit(&ens2, &h, DifficultyMetric::Discrepancy);
    println!("reseed corr = {:.3}", pearson(&ds, &dis2.score_batch(&ens2, &h)));
}
