//! **Exp-4 (appendix) / Fig. 16** — offline cumulative-runtime budgets.
//!
//! The setting of prior ensemble-selection work: no arrivals, no deadlines —
//! select a model set per sample under a budget on *average cumulative
//! runtime*. Compares Random, Static (subset points), `Schemble*`
//! (predicted scores), `Schemble*(ea)` and `Schemble*(Oracle)`. Shape:
//! methods converge at tight budgets (one model eats everything); as budget
//! grows, `Schemble*` and the oracle pull ahead; the oracle upper-bounds the
//! predictor.

use schemble_bench::fmt::{pct, print_table};
use schemble_bench::runner::sized;
use schemble_core::artifacts::SchembleArtifacts;
use schemble_core::discrepancy::DifficultyMetric;
use schemble_core::offline::{budgeted_selection, random_selection, set_costs_ms, utility_rows};
use schemble_data::TaskKind;
use schemble_models::ModelSet;
use schemble_sim::rng::stream_rng;

fn main() {
    for task in [TaskKind::TextMatching, TaskKind::VehicleCounting] {
        let ens = task.ensemble(42);
        let gen = task.default_generator(42);
        let art = SchembleArtifacts::build_default(&ens, &gen, 42);
        let ea =
            SchembleArtifacts::build(&ens, &gen, 2000, 10, DifficultyMetric::EnsembleAgreement, 42);
        let n = sized(3000);
        let samples = gen.batch(0, n);
        let costs = set_costs_ms(&ens);

        // Score estimates per variant.
        let oracle_scores = art.scorer.score_batch(&ens, &samples);
        let predicted: Vec<f64> = samples
            .iter()
            .map(|s| art.predictor.predict_score(&s.features).clamp(0.0, 1.0))
            .collect();
        let ea_scores: Vec<f64> = samples
            .iter()
            .map(|s| ea.predictor.predict_score(&s.features).clamp(0.0, 1.0))
            .collect();

        let accuracy = |sets: &[ModelSet]| -> f64 {
            samples
                .iter()
                .zip(sets)
                .filter(|(s, set)| {
                    let reference = ens.ensemble_output(s);
                    ens.subset_output(s, **set).agrees_with(&reference, &ens.spec)
                })
                .count() as f64
                / samples.len() as f64
        };

        let full_cost = ens.set_cumulative_latency(ens.full_set()).as_millis_f64();
        let min_cost =
            ens.planned_latencies().iter().map(|d| d.as_millis_f64()).fold(f64::INFINITY, f64::min);
        let budgets: Vec<f64> =
            (0..6).map(|i| min_cost + (full_cost - min_cost) * i as f64 / 5.0).collect();

        let mut rows: Vec<Vec<String>> = Vec::new();
        for &per_sample in &budgets {
            let budget = per_sample * n as f64;
            let mut rng = stream_rng(42, "budget-random");
            let rand_sets = random_selection(ens.m(), n, &costs, budget, &mut rng);
            let smart = budgeted_selection(&utility_rows(&art.profile, &predicted), &costs, budget);
            let oracle =
                budgeted_selection(&utility_rows(&art.profile, &oracle_scores), &costs, budget);
            let ea_sel = budgeted_selection(&utility_rows(&ea.profile, &ea_scores), &costs, budget);
            rows.push(vec![
                format!("{per_sample:.0}"),
                pct(accuracy(&rand_sets)),
                pct(accuracy(&ea_sel.sets)),
                pct(accuracy(&smart.sets)),
                pct(accuracy(&oracle.sets)),
            ]);
        }
        print_table(
            &format!(
                "Fig. 16 — accuracy under average runtime budgets ({}, budget in ms/sample)",
                task.label()
            ),
            &["budget", "Random %", "Schemble*(ea) %", "Schemble* %", "Oracle %"],
            &rows,
        );

        // Static points: one subset for all samples (no replicas offline).
        let mut static_rows: Vec<Vec<String>> = Vec::new();
        for set in ModelSet::all_nonempty(ens.m()) {
            static_rows.push(vec![
                format!("{set}"),
                format!("{:.0}", ens.set_cumulative_latency(set).as_millis_f64()),
                pct(accuracy(&vec![set; n])),
            ]);
        }
        print_table(
            &format!("Fig. 16 — static subset points ({})", task.label()),
            &["subset", "cost ms", "Acc %"],
            &static_rows,
        );
    }
}
