//! **Exp-8 / Fig. 21** — the quantization step δ: overhead vs performance.
//!
//! For δ spanning 0.1 → 0.001, reports the DP scheduler's *planning work*
//! (extension count — the scheduling-overhead proxy charged to the clock)
//! and the end-to-end accuracy/DMR. Shape: work grows steeply as δ shrinks;
//! accuracy peaks at a middle δ (0.01 in the paper) because too-coarse
//! quantization loses plan quality while too-fine quantization burns the
//! inference-time budget on scheduling.

use schemble_bench::fmt::{pct, print_table};
use schemble_bench::runner::sized;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble_core::scheduler::{DpScheduler, Scheduler};
use schemble_data::TaskKind;

fn main() {
    // Planning-work microcosm: one heavy buffer instance per δ.
    let mut work_rows: Vec<Vec<String>> = Vec::new();
    for &delta in &[0.1, 0.05, 0.01, 0.005, 0.001] {
        let input = heavy_instance();
        let plan = DpScheduler::with_delta(delta).plan(&input);
        work_rows.push(vec![
            format!("{delta}"),
            plan.work.to_string(),
            format!("{:.3}", input.plan_utility(&plan)),
        ]);
    }
    print_table(
        "Fig. 21 (left) — planning work and plan utility vs δ (16-query buffer)",
        &["δ", "work units", "plan utility"],
        &work_rows,
    );

    // End-to-end: accuracy/DMR for each δ on both evaluated tasks.
    for task in [TaskKind::TextMatching, TaskKind::VehicleCounting] {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for &delta in &[0.1, 0.05, 0.01, 0.005, 0.001] {
            let mut config = ExperimentConfig::paper_default(task, 42);
            config.n_queries = sized(4000);
            if let Traffic::Diurnal { .. } = config.traffic {
                config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
            }
            let mut ctx = ExperimentContext::new(config);
            let workload = ctx.workload();
            let summary = ctx.run(PipelineKind::DpDelta(delta), &workload);
            rows.push(vec![
                format!("{delta}"),
                pct(summary.accuracy()),
                pct(summary.deadline_miss_rate()),
            ]);
        }
        print_table(
            &format!("Fig. 21 (right) — end-to-end accuracy/DMR vs δ ({})", task.label()),
            &["δ", "Acc %", "DMR %"],
            &rows,
        );
    }
}

/// A contention-heavy buffer: 16 queries, 3 models, staggered deadlines.
fn heavy_instance() -> schemble_core::scheduler::ScheduleInput {
    use schemble_core::scheduler::{BufferedQuery, ScheduleInput};
    use schemble_sim::{SimDuration, SimTime};
    let m = 3;
    let latencies = vec![
        SimDuration::from_millis(18),
        SimDuration::from_millis(42),
        SimDuration::from_millis(48),
    ];
    let queries = (0..16u64)
        .map(|id| {
            // Monotone utility vector resembling a mid-difficulty bin.
            let utilities = vec![0.0, 0.82, 0.88, 0.90, 0.89, 0.93, 0.95, 1.0];
            BufferedQuery {
                id,
                arrival: SimTime::from_millis(id),
                deadline: SimTime::from_millis(90 + 12 * id),
                utilities,
                score: 0.4,
            }
        })
        .collect();
    ScheduleInput { now: SimTime::ZERO, availability: vec![SimTime::ZERO; m], latencies, queries }
}
