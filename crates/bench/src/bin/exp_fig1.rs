//! **Fig. 1** — the motivating observation.
//!
//! (a) One-day query traffic and the Original pipeline's deadline miss rate
//!     per time segment: the miss rate must track the traffic and blow up
//!     during the burst.
//! (b) Accuracy (vs. true labels) and latency of the ensemble vs. each base
//!     model: the ensemble is the most accurate and slightly slower than its
//!     slowest member.

use schemble_bench::fmt::{f3, pct, print_table};
use schemble_bench::runner::sized;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble_data::TaskKind;
use schemble_metrics::SegmentSeries;
use schemble_models::ModelSet;

fn main() {
    let mut config = ExperimentConfig::paper_default(TaskKind::TextMatching, 42);
    config.n_queries = sized(12_000);
    // Keep the arrival *rates* fixed when the query count shrinks.
    config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let trace = ctx.diurnal().expect("text matching uses the diurnal trace");

    // --- Fig. 1a ---------------------------------------------------------
    let summary = ctx.run(PipelineKind::Original, &workload);
    let series = SegmentSeries::compute(summary.records(), 24, |r| trace.hour_of(r.arrival));
    let rows: Vec<Vec<String>> = (0..24)
        .map(|h| vec![h.to_string(), series.counts[h].to_string(), pct(series.dmr[h])])
        .collect();
    print_table(
        "Fig. 1a — one-day traffic and Original-pipeline deadline miss rate",
        &["hour", "queries", "DMR %"],
        &rows,
    );
    let burst_dmr: f64 = series.dmr[10..18].iter().sum::<f64>() / 8.0;
    let night_dmr: f64 = series.dmr[0..8].iter().sum::<f64>() / 8.0;
    println!(
        "  burst-hours mean DMR {:.1}%  vs  night-hours {:.1}%  (paper: ~45% at the burst)",
        100.0 * burst_dmr,
        100.0 * night_dmr
    );

    // --- Fig. 1b ---------------------------------------------------------
    let ens = &ctx.ensemble;
    let gen = &ctx.generator;
    let eval = gen.batch(5_000_000, sized(4000));
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (k, model) in ens.models.iter().enumerate() {
        let acc = eval
            .iter()
            .filter(|s| {
                ens.subset_output(s, ModelSet::singleton(k)).predicted_class()
                    == s.sample_label_class()
            })
            .count() as f64
            / eval.len() as f64;
        rows.push(vec![
            model.name.clone(),
            f3(acc),
            format!("{:.0} ms", model.latency.planned().as_millis_f64()),
        ]);
    }
    let ens_acc = eval
        .iter()
        .filter(|s| ens.ensemble_output(s).predicted_class() == s.sample_label_class())
        .count() as f64
        / eval.len() as f64;
    rows.push(vec![
        "Ensemble".to_string(),
        f3(ens_acc),
        format!("{:.0} ms (max base + aggregation)", ens.slowest_planned_latency().as_millis_f64()),
    ]);
    print_table(
        "Fig. 1b — ensemble vs base models (accuracy on true labels, nominal latency)",
        &["model", "accuracy", "latency"],
        &rows,
    );

    // Traffic profile context for the reader.
    let day = ctx.diurnal().expect("diurnal");
    let hour12 = day.hour_rate(12);
    let hour2 = day.hour_rate(2);
    println!(
        "\n  traffic: hour-12 rate {:.1}/s vs hour-2 rate {:.1}/s ({}x burst)",
        hour12,
        hour2,
        (hour12 / hour2).round()
    );
}

/// Tiny extension trait so the driver reads naturally above.
trait LabelClass {
    fn sample_label_class(&self) -> usize;
}
impl LabelClass for schemble_models::Sample {
    fn sample_label_class(&self) -> usize {
        self.label.class()
    }
}
