//! **Exp-1 / Fig. 6–8 / Table I** — overall accuracy and deadline miss rate.
//!
//! For each task, sweeps the deadline constraint and runs all six methods
//! (Original, Static, DES, Gating, Schemble(ea), Schemble) with rejection
//! enabled, printing Acc/DMR per deadline (the Fig. 6/7/8 series) and the
//! per-task averages (Table I).
//!
//! Shape to reproduce: Schemble wins accuracy everywhere and (near-)wins
//! DMR; Original collapses under load; Static/Gating are competitive on DMR
//! but lose accuracy; DES sits between; Schemble(ea) trails Schemble on
//! accuracy at similar DMR. On image retrieval (2 models) Static's
//! single-model deployment can edge the DMR while losing mAP.

use schemble_bench::fmt::{pct, print_table};
use schemble_bench::runner::{run_method, sized, standard_methods, Method};
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, Traffic};
use schemble_data::TaskKind;

fn deadline_sweep(task: TaskKind) -> Vec<f64> {
    match task {
        TaskKind::TextMatching => vec![60.0, 80.0, 105.0, 130.0, 160.0],
        TaskKind::VehicleCounting => vec![50.0, 70.0, 90.0, 120.0, 150.0],
        TaskKind::ImageRetrieval => vec![110.0, 140.0, 180.0, 220.0, 260.0],
    }
}

fn main() {
    let methods = standard_methods();
    let mut table1: Vec<Vec<String>> = Vec::new();
    for task in TaskKind::ALL {
        let mut config = ExperimentConfig::paper_default(task, 42);
        config.n_queries = sized(6000);
        if let Traffic::Diurnal { .. } = config.traffic {
            config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
        }
        let mut avgs: Vec<(f64, f64)> = vec![(0.0, 0.0); methods.len()];
        let sweep = deadline_sweep(task);
        let mut rows: Vec<Vec<String>> = Vec::new();
        for &deadline_ms in &sweep {
            let cfg = config.clone().with_deadline_millis(deadline_ms);
            let mut ctx = ExperimentContext::new(cfg);
            let workload = ctx.workload();
            for (mi, &method) in methods.iter().enumerate() {
                let summary = run_method(&mut ctx, method, &workload);
                avgs[mi].0 += summary.accuracy();
                avgs[mi].1 += summary.deadline_miss_rate();
                rows.push(vec![
                    format!("{deadline_ms:.0}"),
                    method.label(),
                    pct(summary.accuracy()),
                    pct(summary.deadline_miss_rate()),
                ]);
            }
        }
        print_table(
            &format!(
                "Fig. {} — {} ({}): Acc/DMR vs deadline",
                match task {
                    TaskKind::TextMatching => "6",
                    TaskKind::VehicleCounting => "7",
                    TaskKind::ImageRetrieval => "8",
                },
                task.label(),
                if task == TaskKind::ImageRetrieval { "mAP" } else { "accuracy" },
            ),
            &["deadline ms", "method", "Acc %", "DMR %"],
            &rows,
        );
        for (mi, method) in methods.iter().enumerate() {
            table1.push(vec![
                task.label().to_string(),
                method.label(),
                pct(avgs[mi].0 / sweep.len() as f64),
                pct(avgs[mi].1 / sweep.len() as f64),
            ]);
        }
    }
    print_table(
        "Table I — average Acc/DMR across deadline constraints",
        &["task", "method", "Acc %", "DMR %"],
        &table1,
    );
    // Headline claims from the paper, recomputed on our runs.
    let get = |task: &str, method: &str, col: usize| -> f64 {
        table1
            .iter()
            .find(|r| r[0] == task && r[1] == method)
            .map(|r| r[col].parse::<f64>().expect("numeric"))
            .expect("row present")
    };
    let acc_gain = get("TM", "Schemble", 2) - get("TM", "Original", 2);
    let dmr_ratio = get("TM", "Original", 3) / get("TM", "Schemble", 3).max(0.1);
    println!(
        "\n  TM headline: Schemble accuracy +{acc_gain:.1} points over Original; \
         Original/Schemble DMR ratio {dmr_ratio:.1}x (paper: +32.9 points, ~5x)"
    );

    let methods_labels: Vec<String> = methods.iter().map(Method::label).collect();
    drop(methods_labels);
}
