//! **Exp-4 / Fig. 12, 17, 18, 19** — scheduling-algorithm ablation.
//!
//! With the discrepancy module fixed, compares Greedy+EDF/FIFO/SJF against
//! the DP scheduler at δ ∈ {0.1, 0.01, 0.001} across a deadline sweep for
//! each task, plus a bursty-segment slice (Fig. 19). Shape: DP(0.01) is the
//! best overall; greedy falls behind as deadlines loosen (more room for
//! scheduling); DP(0.001) pays so much scheduling latency that it loses;
//! gaps grow when traffic is heavy.

use schemble_bench::fmt::{pct, print_table};
use schemble_bench::runner::sized;
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble_core::scheduler::QueueOrder;
use schemble_data::TaskKind;
use schemble_metrics::SegmentSeries;

fn variants() -> Vec<PipelineKind> {
    vec![
        PipelineKind::Greedy(QueueOrder::Edf),
        PipelineKind::Greedy(QueueOrder::Fifo),
        PipelineKind::Greedy(QueueOrder::Sjf),
        PipelineKind::DpDelta(0.1),
        PipelineKind::DpDelta(0.01),
        PipelineKind::DpDelta(0.001),
    ]
}

fn deadline_sweep(task: TaskKind) -> Vec<f64> {
    match task {
        TaskKind::TextMatching => vec![60.0, 80.0, 105.0, 130.0, 160.0],
        TaskKind::VehicleCounting => vec![50.0, 70.0, 90.0, 120.0, 150.0],
        TaskKind::ImageRetrieval => vec![110.0, 140.0, 180.0, 220.0, 260.0],
    }
}

fn main() {
    for task in TaskKind::ALL {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for &deadline_ms in &deadline_sweep(task) {
            let mut config =
                ExperimentConfig::paper_default(task, 42).with_deadline_millis(deadline_ms);
            config.n_queries = sized(4000);
            if let Traffic::Diurnal { .. } = config.traffic {
                config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
            }
            let mut ctx = ExperimentContext::new(config);
            let workload = ctx.workload();
            for kind in variants() {
                let summary = ctx.run(kind, &workload);
                rows.push(vec![
                    format!("{deadline_ms:.0}"),
                    kind.label(),
                    pct(summary.accuracy()),
                    pct(summary.deadline_miss_rate()),
                ]);
            }
        }
        let fig = match task {
            TaskKind::TextMatching => "12",
            TaskKind::VehicleCounting => "17",
            TaskKind::ImageRetrieval => "18",
        };
        print_table(
            &format!("Fig. {fig} — scheduling algorithms on {} (deadline sweep)", task.label()),
            &["deadline ms", "scheduler", "Acc %", "DMR %"],
            &rows,
        );
    }

    // Fig. 19 — the bursty 14–19h slice of the text-matching day.
    let mut config =
        ExperimentConfig::paper_default(TaskKind::TextMatching, 42).with_deadline_millis(105.0);
    config.n_queries = sized(6000);
    config.traffic = Traffic::Diurnal { day_secs: config.n_queries as f64 / 15.0 };
    let mut ctx = ExperimentContext::new(config);
    let workload = ctx.workload();
    let trace = ctx.diurnal().expect("diurnal");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for kind in variants() {
        let summary = ctx.run(kind, &workload);
        let series = SegmentSeries::compute(summary.records(), 24, |r| trace.hour_of(r.arrival));
        let (mut acc, mut dmr, mut n) = (0.0, 0.0, 0usize);
        for h in 14..19 {
            acc += series.accuracy[h] * series.counts[h] as f64;
            dmr += series.dmr[h] * series.counts[h] as f64;
            n += series.counts[h];
        }
        rows.push(vec![kind.label(), n.to_string(), pct(acc / n as f64), pct(dmr / n as f64)]);
    }
    print_table(
        "Fig. 19 — scheduling algorithms on the bursty 14–19h slice (text matching)",
        &["scheduler", "n", "Acc %", "DMR %"],
        &rows,
    );
}
