//! `bench_dp` — scheduler hot-path microbenchmark with a regression gate.
//!
//! Plans synthetic buffers through [`DpScheduler::plan_into`] across a
//! (buffer size × ensemble size) grid and reports, per configuration:
//!
//! * `dp_n{n}_m{m}_ns` — mean wall-clock nanoseconds per plan. Machine
//!   dependent, so gated loosely (4x) like `bench_serve`'s wall numbers.
//! * `dp_n{n}_m{m}_nodes` — DP nodes expanded per plan. Fully deterministic
//!   (fixed seed, integer DP), so gated tightly: any drift is an algorithm
//!   change, not noise.
//!
//! plus one global:
//!
//! * `allocs_per_plan` — steady-state heap allocations per `plan_into` call,
//!   counted by a wrapping global allocator behind the `bench-alloc`
//!   feature. The scratch-based hot path promises **zero**; the baseline
//!   pins that promise. Without the feature the counter reports `-1` and
//!   the gate is skipped.
//!
//! ```text
//! bench_dp [--out PATH] [--check BASELINE] [--write PATH]
//! ```
//!
//! Run with `--features bench-alloc` to include the allocation gate:
//!
//! ```text
//! cargo run --release -p schemble-bench --features bench-alloc \
//!     --bin bench_dp -- --check crates/bench/baselines/BENCH_dp.json
//! ```

use schemble_core::scheduler::{
    BufferedQuery, DpScheduler, SchedScratch, ScheduleInput, SchedulePlan, Scheduler,
};
use schemble_models::ModelSet;
use schemble_sim::rng::stream_rng;
use schemble_sim::{SimDuration, SimTime};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// Heap-allocation counter, active only under `--features bench-alloc` so
/// the default build keeps the system allocator untouched.
#[cfg(feature = "bench-alloc")]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub fn count() -> u64 {
        ALLOCS.load(Relaxed)
    }

    struct CountingAlloc;

    // Counts allocation *events* (alloc + grow), which is what "allocation-
    // free steady state" promises; frees are uncounted on purpose.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static COUNTER: CountingAlloc = CountingAlloc;
}

#[cfg(feature = "bench-alloc")]
fn alloc_count() -> Option<u64> {
    Some(alloc_counter::count())
}

#[cfg(not(feature = "bench-alloc"))]
fn alloc_count() -> Option<u64> {
    None
}

/// The (buffer size, ensemble size) grid. Covers the paper's operating
/// range: small/large buffers against small/large ensembles.
const GRID: [(usize, usize); 9] =
    [(4, 3), (4, 5), (4, 8), (16, 3), (16, 5), (16, 8), (24, 3), (24, 5), (24, 8)];

/// Same synthetic-instance recipe as the criterion `scheduler` bench:
/// monotone subset utilities, latencies 15–50 ms, deadlines 60–400 ms.
fn build_instance(n: usize, m: usize, seed: u64) -> ScheduleInput {
    use rand::Rng;
    let mut rng = stream_rng(seed, "bench-sched");
    let latencies: Vec<SimDuration> =
        (0..m).map(|_| SimDuration::from_millis(rng.random_range(15..50))).collect();
    let queries = (0..n as u64)
        .map(|id| {
            let mut utilities = vec![0.0; 1 << m];
            let mut masks: Vec<u32> = (1..(1u32 << m)).collect();
            masks.sort_by_key(|s| s.count_ones());
            for &mask in &masks {
                let set = ModelSet(mask);
                let mut v: f64 = set
                    .iter()
                    .map(|k| 0.5 + 0.12 * k as f64 + rng.random_range(0.0..0.08))
                    .fold(0.0, f64::max);
                for k in set.iter() {
                    let sub = set.without(k);
                    if !sub.is_empty() {
                        v = v.max(utilities[sub.0 as usize]);
                    }
                }
                utilities[mask as usize] = v.min(1.0);
            }
            BufferedQuery {
                id,
                arrival: SimTime::from_millis(id),
                deadline: SimTime::from_millis(rng.random_range(60..400)),
                utilities,
                score: rng.random_range(0.0..1.0),
            }
        })
        .collect();
    ScheduleInput { now: SimTime::ZERO, availability: vec![SimTime::ZERO; m], latencies, queries }
}

struct ConfigResult {
    n: usize,
    m: usize,
    ns_per_plan: f64,
    nodes_per_plan: u64,
}

struct BenchResult {
    configs: Vec<ConfigResult>,
    /// `-1.0` when the `bench-alloc` feature (and thus the counter) is off.
    allocs_per_plan: f64,
    wall_secs: f64,
}

impl BenchResult {
    fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for c in &self.configs {
            s.push_str(&format!("  \"dp_n{}_m{}_ns\": {:.1},\n", c.n, c.m, c.ns_per_plan));
            s.push_str(&format!("  \"dp_n{}_m{}_nodes\": {},\n", c.n, c.m, c.nodes_per_plan));
        }
        s.push_str(&format!("  \"allocs_per_plan\": {:.3},\n", self.allocs_per_plan));
        s.push_str(&format!("  \"wall_secs\": {:.3}\n}}\n", self.wall_secs));
        s
    }
}

/// Pulls `"key": <number>` out of the baseline JSON (same flat format as
/// `bench_serve`).
fn json_number(text: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat).ok_or_else(|| format!("baseline is missing \"{key}\""))?;
    let rest = &text[start + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().map_err(|_| format!("baseline \"{key}\" is not a number"))
}

fn run_bench() -> BenchResult {
    let wall_t0 = Instant::now();
    let dp = DpScheduler::default();
    let mut scratch = SchedScratch::new();
    let mut plan = SchedulePlan::empty(0);
    let mut configs = Vec::new();
    let mut steady_plans = 0u64;
    let mut steady_allocs = 0u64;
    for (n, m) in GRID {
        let input = build_instance(n, m, 7);
        // Warm the scratch to its high-water mark for this shape, then
        // measure steady state only.
        for _ in 0..3 {
            dp.plan_into(&input, &mut scratch, &mut plan);
        }
        let nodes_per_plan = scratch.stats().nodes_expanded;
        // Plans cost ~40 µs (n=4, m=3) to ~100 ms (n=24, m=8); scale the
        // iteration count so every configuration stays near a second.
        let iters: u64 = match m {
            8 => 10,
            5 => 50,
            _ => 400,
        };
        let allocs_before = alloc_count();
        let t0 = Instant::now();
        for _ in 0..iters {
            dp.plan_into(black_box(&input), &mut scratch, &mut plan);
            black_box(&plan);
        }
        let elapsed = t0.elapsed();
        if let (Some(before), Some(after)) = (allocs_before, alloc_count()) {
            steady_allocs += after - before;
            steady_plans += iters;
        }
        configs.push(ConfigResult {
            n,
            m,
            ns_per_plan: elapsed.as_nanos() as f64 / iters as f64,
            nodes_per_plan,
        });
    }
    let allocs_per_plan =
        if steady_plans > 0 { steady_allocs as f64 / steady_plans as f64 } else { -1.0 };
    BenchResult { configs, allocs_per_plan, wall_secs: wall_t0.elapsed().as_secs_f64() }
}

/// One gate: `label` regressed if the new value exceeds the baseline by more
/// than `tolerance` (relative). Lower is better for every bench_dp metric.
fn gate(label: &str, new: f64, base: f64, tolerance: f64) -> Result<(), String> {
    let limit = base * (1.0 + tolerance);
    let regressed = new > limit;
    println!(
        "  {label:<18} {new:>12.1}  (baseline {base:>12.1}, max tolerated {limit:>12.1}) {}",
        if regressed { "REGRESSED" } else { "ok" }
    );
    if regressed {
        return Err(format!("{label} regressed: {new:.1} vs baseline {base:.1}"));
    }
    Ok(())
}

fn check(result: &BenchResult, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    println!("regression check vs {baseline_path}:");
    let mut failures = Vec::new();
    for c in &result.configs {
        // Node counts are deterministic: tight gate. Wall time is not: 4x.
        let nodes_key = format!("dp_n{}_m{}_nodes", c.n, c.m);
        if let Err(e) =
            gate(&nodes_key, c.nodes_per_plan as f64, json_number(&text, &nodes_key)?, 0.20)
        {
            failures.push(e);
        }
        let ns_key = format!("dp_n{}_m{}_ns", c.n, c.m);
        if let Err(e) = gate(&ns_key, c.ns_per_plan, json_number(&text, &ns_key)?, 3.0) {
            failures.push(e);
        }
    }
    let base_allocs = json_number(&text, "allocs_per_plan")?;
    if result.allocs_per_plan < 0.0 || base_allocs < 0.0 {
        println!("  allocs_per_plan    skipped (bench-alloc feature off)");
    } else if let Err(e) = gate("allocs_per_plan", result.allocs_per_plan, base_allocs, 0.20) {
        // A zero baseline tolerates exactly zero: 0 * 1.2 = 0.
        failures.push(e);
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_dp.json".to_string();
    let mut check_path: Option<String> = None;
    let mut write_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                i += 1;
                out = args[i].clone();
            }
            "--check" if i + 1 < args.len() => {
                i += 1;
                check_path = Some(args[i].clone());
            }
            "--write" if i + 1 < args.len() => {
                i += 1;
                write_path = Some(args[i].clone());
            }
            other => {
                eprintln!("usage: bench_dp [--out PATH] [--check BASELINE] [--write PATH]");
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let result = run_bench();
    for c in &result.configs {
        println!(
            "bench_dp: n={:<2} m={}  {:>10.0} ns/plan  {:>7} nodes",
            c.n, c.m, c.ns_per_plan, c.nodes_per_plan
        );
    }
    match alloc_count() {
        Some(_) => println!("bench_dp: {:.3} allocs/plan (steady state)", result.allocs_per_plan),
        None => println!("bench_dp: allocs/plan not counted (build with --features bench-alloc)"),
    }
    let json = result.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if let Some(path) = write_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote baseline {path}");
    }
    if let Some(path) = check_path {
        if let Err(e) = check(&result, &path) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
