//! Shared plumbing for the experiment drivers (`src/bin/exp_*.rs`).
//!
//! Every binary regenerates one of the paper's tables/figures as printed
//! series. Set `QUICK=1` in the environment to shrink workloads for smoke
//! runs; the defaults are sized so a full driver finishes in minutes on a
//! laptop.

pub mod fmt;
pub mod runner;

pub use runner::{quick, run_method, standard_methods, Method};
