//! Criterion micro-benchmarks of the difficulty machinery: discrepancy
//! scoring, predictor inference, profile lookups and KNN filling — the
//! per-query costs Fig. 13 accounts for.

use criterion::{criterion_group, criterion_main, Criterion};
use schemble_core::artifacts::SchembleArtifacts;
use schemble_core::filling::KnnFiller;
use schemble_data::TaskKind;
use schemble_models::ModelSet;
use std::hint::black_box;

fn bench_all(c: &mut Criterion) {
    let task = TaskKind::TextMatching;
    let ens = task.ensemble(42);
    let gen = task.default_generator(42);
    let art = SchembleArtifacts::build_small(&ens, &gen, 42);
    let sample = gen.sample(1_000_000);

    c.bench_function("discrepancy_oracle_score", |b| {
        b.iter(|| black_box(art.scorer.score(&ens, black_box(&sample))))
    });

    c.bench_function("predictor_forward", |b| {
        b.iter(|| black_box(art.predictor.predict_score(black_box(&sample.features))))
    });

    c.bench_function("profile_utility_vector", |b| {
        b.iter(|| black_box(art.profile.utility_vector(black_box(0.37))))
    });

    c.bench_function("ensemble_full_inference", |b| {
        b.iter(|| black_box(ens.infer_all(black_box(&sample))))
    });

    let history = gen.batch(0, 500);
    let filler = KnnFiller::fit(&ens, &history, 10);
    let outputs = ens.infer_all(&sample);
    let present = vec![(0usize, &outputs[0])];
    c.bench_function("knn_fill_one_missing_pair", |b| {
        b.iter(|| black_box(filler.fill(black_box(&present), ModelSet::singleton(0))))
    });
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
