//! Criterion micro-benchmarks of the scheduling algorithms: planning cost vs
//! buffer size and quantization step (the wall-clock counterpart of the
//! Fig. 21 overhead panel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemble_core::scheduler::{
    BufferedQuery, DpScheduler, GreedyScheduler, QueueOrder, ScheduleInput, Scheduler,
};
use schemble_models::ModelSet;
use schemble_sim::rng::stream_rng;
use schemble_sim::{SimDuration, SimTime};
use std::hint::black_box;

fn build_instance(n: usize, m: usize, seed: u64) -> ScheduleInput {
    use rand::Rng;
    let mut rng = stream_rng(seed, "bench-sched");
    let latencies: Vec<SimDuration> =
        (0..m).map(|_| SimDuration::from_millis(rng.random_range(15..50))).collect();
    let queries = (0..n as u64)
        .map(|id| {
            let mut utilities = vec![0.0; 1 << m];
            let mut masks: Vec<u32> = (1..(1u32 << m)).collect();
            masks.sort_by_key(|s| s.count_ones());
            for &mask in &masks {
                let set = ModelSet(mask);
                let mut v: f64 = set
                    .iter()
                    .map(|k| 0.5 + 0.12 * k as f64 + rng.random_range(0.0..0.08))
                    .fold(0.0, f64::max);
                for k in set.iter() {
                    let sub = set.without(k);
                    if !sub.is_empty() {
                        v = v.max(utilities[sub.0 as usize]);
                    }
                }
                utilities[mask as usize] = v.min(1.0);
            }
            BufferedQuery {
                id,
                arrival: SimTime::from_millis(id),
                deadline: SimTime::from_millis(rng.random_range(60..400)),
                utilities,
                score: rng.random_range(0.0..1.0),
            }
        })
        .collect();
    ScheduleInput { now: SimTime::ZERO, availability: vec![SimTime::ZERO; m], latencies, queries }
}

fn bench_buffer_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_plan_vs_buffer_size");
    for n in [4usize, 8, 16, 24] {
        let input = build_instance(n, 3, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            let dp = DpScheduler::default();
            b.iter(|| black_box(dp.plan(black_box(input))));
        });
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_plan_vs_delta");
    let input = build_instance(16, 3, 11);
    for delta in [0.1, 0.01, 0.001] {
        group.bench_with_input(BenchmarkId::from_parameter(delta), &input, |b, input| {
            let dp = DpScheduler::with_delta(delta);
            b.iter(|| black_box(dp.plan(black_box(input))));
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let input = build_instance(16, 3, 13);
    c.bench_function("greedy_edf_plan_16", |b| {
        let greedy = GreedyScheduler::new(QueueOrder::Edf);
        b.iter(|| black_box(greedy.plan(black_box(&input))));
    });
}

criterion_group!(benches, bench_buffer_size, bench_delta, bench_greedy);
criterion_main!(benches);
