//! Criterion benchmarks of whole serving runs: events/second of the
//! discrete-event pipelines (throughput of the reproduction itself, not of
//! the simulated system).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemble_core::experiment::{ExperimentConfig, ExperimentContext, PipelineKind, Traffic};
use schemble_data::TaskKind;
use std::hint::black_box;

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_run_500_queries");
    group.sample_size(10);
    for (label, kind) in [
        ("original", PipelineKind::Original),
        ("schemble", PipelineKind::Schemble),
        ("schemble_t", PipelineKind::SchembleT),
    ] {
        // Train artifacts once outside the measurement loop.
        let mut config = ExperimentConfig::small(TaskKind::TextMatching, 42);
        config.n_queries = 500;
        config.traffic = Traffic::Poisson { rate_per_sec: 45.0 };
        let mut ctx = ExperimentContext::new(config);
        let workload = ctx.workload();
        let _ = ctx.run(kind, &workload); // warm the lazy artifacts
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| black_box(ctx.run(kind, &workload)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
