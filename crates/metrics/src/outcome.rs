//! Per-query records and run-level summaries.

use crate::latency::LatencyStats;
use schemble_sim::SimTime;

/// What happened to one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOutcome {
    /// A result was returned by the deadline (or, in forced-processing mode,
    /// eventually). `score` is 1/0 correctness for classification and
    /// regression, or the average precision (1/rank of the relevant item)
    /// for retrieval.
    Completed {
        /// Agreement with the reference (ensemble) output.
        correct: bool,
        /// Scalar quality in `[0, 1]` (== `correct` except for retrieval).
        score: f64,
    },
    /// A result was assembled from a *partial* ensemble: task failures or
    /// the deadline shrank the executed set below the planned one
    /// (graceful degradation). Scored like a completion — a degraded answer
    /// delivered on time still counts what it scores.
    Degraded {
        /// Agreement with the reference (ensemble) output.
        correct: bool,
        /// Scalar quality in `[0, 1]`.
        score: f64,
    },
    /// No result by the deadline (queue expiry or admission rejection).
    Missed,
}

/// The full per-query evaluation record a pipeline run emits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Query id.
    pub id: u64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Completion instant, if a result was produced.
    pub completion: Option<SimTime>,
    /// Outcome.
    pub outcome: QueryOutcome,
    /// Number of base models executed for this query.
    pub models_used: usize,
}

impl QueryRecord {
    /// Response latency in seconds (completion − arrival); `None` if missed.
    pub fn latency_secs(&self) -> Option<f64> {
        self.completion.map(|c| c.saturating_since(self.arrival).as_secs_f64())
    }

    /// True if the query was answered by its deadline (full or degraded).
    pub fn met_deadline(&self) -> bool {
        matches!(self.outcome, QueryOutcome::Completed { .. } | QueryOutcome::Degraded { .. })
            && self.completion.is_some_and(|c| c <= self.deadline)
    }
}

/// Busy-time accounting for one executor (base model or replica group).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelUsage {
    /// Model name.
    pub name: String,
    /// Total busy seconds across the run (summed over replicas).
    pub busy_secs: f64,
    /// Inference tasks completed.
    pub tasks: u64,
    /// Number of deployed instances of this model.
    pub instances: usize,
}

impl ModelUsage {
    /// Mean utilisation of this model's instances over `span_secs`.
    pub fn utilisation(&self, span_secs: f64) -> f64 {
        if span_secs <= 0.0 || self.instances == 0 {
            return 0.0;
        }
        self.busy_secs / (span_secs * self.instances as f64)
    }
}

/// Aggregated results of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    records: Vec<QueryRecord>,
    usage: Vec<ModelUsage>,
}

impl RunSummary {
    /// Wraps the per-query records.
    pub fn new(records: Vec<QueryRecord>) -> Self {
        Self { records, usage: Vec::new() }
    }

    /// Attaches per-model busy-time accounting.
    pub fn with_usage(mut self, usage: Vec<ModelUsage>) -> Self {
        self.usage = usage;
        self
    }

    /// Per-model busy-time accounting (empty when the pipeline did not
    /// record it).
    pub fn usage(&self) -> &[ModelUsage] {
        &self.usage
    }

    /// Borrow of the underlying records.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the run saw no queries.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Paper accuracy: mean score with missed queries scored 0
    /// ("queries that miss their deadline are considered incorrect") —
    /// a completion *after* the deadline counts as a miss too.
    /// For retrieval tasks this *is* the mAP column of Table I.
    pub fn accuracy(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| match r.outcome {
                QueryOutcome::Completed { score, .. } | QueryOutcome::Degraded { score, .. }
                    if r.met_deadline() =>
                {
                    score
                }
                _ => 0.0,
            })
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// Accuracy over completed queries only (Fig. 10b "processed accuracy").
    pub fn processed_accuracy(&self) -> f64 {
        let completed: Vec<f64> =
            self.records
                .iter()
                .filter_map(|r| match r.outcome {
                    QueryOutcome::Completed { score, .. }
                    | QueryOutcome::Degraded { score, .. } => Some(score),
                    QueryOutcome::Missed => None,
                })
                .collect();
        if completed.is_empty() {
            return 0.0;
        }
        completed.iter().sum::<f64>() / completed.len() as f64
    }

    /// Deadline miss rate: fraction of queries with no result by deadline.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let missed = self.records.iter().filter(|r| !r.met_deadline()).count();
        missed as f64 / self.records.len() as f64
    }

    /// Latency statistics over completed queries (Table II).
    pub fn latency_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(
            &self.records.iter().filter_map(QueryRecord::latency_secs).collect::<Vec<_>>(),
        )
    }

    /// Mean number of base models executed per query (resource usage).
    pub fn mean_models_used(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.models_used as f64).sum::<f64>() / self.records.len() as f64
    }

    /// Number of queries answered from a partial ensemble.
    pub fn degraded_count(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.outcome, QueryOutcome::Degraded { .. })).count()
    }

    /// Fraction of queries completed (by deadline or not).
    pub fn completion_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.completion.is_some()).count() as f64
            / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        id: u64,
        arrival_ms: u64,
        deadline_ms: u64,
        completion_ms: Option<u64>,
        correct: bool,
    ) -> QueryRecord {
        QueryRecord {
            id,
            arrival: SimTime::from_millis(arrival_ms),
            deadline: SimTime::from_millis(deadline_ms),
            completion: completion_ms.map(SimTime::from_millis),
            outcome: if completion_ms.is_some() {
                QueryOutcome::Completed { correct, score: if correct { 1.0 } else { 0.0 } }
            } else {
                QueryOutcome::Missed
            },
            models_used: 2,
        }
    }

    #[test]
    fn accuracy_counts_missed_as_wrong() {
        let s = RunSummary::new(vec![
            rec(0, 0, 100, Some(50), true),
            rec(1, 0, 100, Some(60), false),
            rec(2, 0, 100, None, false),
            rec(3, 0, 100, Some(80), true),
        ]);
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
        assert!((s.processed_accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.deadline_miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn late_completion_counts_as_missed_deadline() {
        // Completed after the deadline: latency recorded, deadline missed.
        let r = rec(0, 0, 100, Some(150), true);
        assert!(!r.met_deadline());
        let s = RunSummary::new(vec![r]);
        assert_eq!(s.deadline_miss_rate(), 1.0);
        assert_eq!(s.completion_rate(), 1.0);
        assert!((s.latency_stats().mean - 0.15).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_safe() {
        let s = RunSummary::new(vec![]);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.deadline_miss_rate(), 0.0);
        assert_eq!(s.mean_models_used(), 0.0);
    }

    #[test]
    fn mean_models_used_averages() {
        let mut a = rec(0, 0, 100, Some(10), true);
        a.models_used = 1;
        let mut b = rec(1, 0, 100, Some(10), true);
        b.models_used = 3;
        let s = RunSummary::new(vec![a, b]);
        assert_eq!(s.mean_models_used(), 2.0);
    }

    #[test]
    fn degraded_on_time_scores_like_a_completion() {
        let degraded = QueryRecord {
            id: 0,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_millis(100),
            completion: Some(SimTime::from_millis(40)),
            outcome: QueryOutcome::Degraded { correct: true, score: 1.0 },
            models_used: 1,
        };
        assert!(degraded.met_deadline());
        let s = RunSummary::new(vec![degraded, rec(1, 0, 100, None, false)]);
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(s.degraded_count(), 1);
        assert!((s.processed_accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn retrieval_scores_flow_into_accuracy() {
        let r = QueryRecord {
            id: 0,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_millis(100),
            completion: Some(SimTime::from_millis(10)),
            outcome: QueryOutcome::Completed { correct: false, score: 0.5 },
            models_used: 1,
        };
        let s = RunSummary::new(vec![r]);
        assert_eq!(s.accuracy(), 0.5);
    }
}
