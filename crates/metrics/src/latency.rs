//! Latency statistics (Table II columns).

use schemble_tensor::stats::percentile;

/// Mean / P95 / max latency in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Mean latency.
    pub mean: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Number of samples the stats were computed over.
    pub count: usize,
}

impl LatencyStats {
    /// Computes the statistics; all-zero for an empty sample.
    pub fn from_samples(latencies_secs: &[f64]) -> Self {
        if latencies_secs.is_empty() {
            return Self::default();
        }
        let mean = latencies_secs.iter().sum::<f64>() / latencies_secs.len() as f64;
        let p95 = percentile(latencies_secs, 95.0);
        let max = latencies_secs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self { mean, p95, max, count: latencies_secs.len() }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mean={:.3}s p95={:.3}s max={:.3}s", self.mean, self.p95, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ordering_holds() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let s = LatencyStats::from_samples(&xs);
        assert!(s.mean <= s.p95 && s.p95 <= s.max);
        assert_eq!(s.max, 1.0);
        assert!((s.mean - 0.505).abs() < 1e-12);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn empty_sample_is_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s, LatencyStats::default());
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(&[0.42]);
        assert_eq!(s.mean, 0.42);
        assert_eq!(s.p95, 0.42);
        assert_eq!(s.max, 0.42);
    }
}
