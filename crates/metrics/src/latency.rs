//! Latency statistics (Table II columns).

use schemble_tensor::stats::percentile;

/// Mean / P95 / max latency in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Mean latency.
    pub mean: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Number of samples the stats were computed over.
    pub count: usize,
}

impl LatencyStats {
    /// Computes the statistics; all-zero for an empty sample.
    pub fn from_samples(latencies_secs: &[f64]) -> Self {
        if latencies_secs.is_empty() {
            return Self::default();
        }
        let mean = latencies_secs.iter().sum::<f64>() / latencies_secs.len() as f64;
        let p95 = percentile(latencies_secs, 95.0);
        let max = latencies_secs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self { mean, p95, max, count: latencies_secs.len() }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mean={:.3}s p95={:.3}s max={:.3}s", self.mean, self.p95, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ordering_holds() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let s = LatencyStats::from_samples(&xs);
        assert!(s.mean <= s.p95 && s.p95 <= s.max);
        assert_eq!(s.max, 1.0);
        assert!((s.mean - 0.505).abs() < 1e-12);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn empty_sample_is_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s, LatencyStats::default());
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(&[0.42]);
        assert_eq!(s.mean, 0.42);
        assert_eq!(s.p95, 0.42);
        assert_eq!(s.max, 0.42);
    }

    #[test]
    fn p95_pins_to_interpolated_rank() {
        // 1..=100 / 100: the 95th percentile interpolates between the 95th
        // and 96th order statistics. Pin the exact value so a change to the
        // percentile convention (nearest-rank vs linear) is caught.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let s = LatencyStats::from_samples(&xs);
        let expected = percentile(&xs, 95.0);
        assert_eq!(s.p95, expected, "p95 must come from the shared percentile helper");
        assert!((0.95..=0.96).contains(&s.p95), "p95 {} outside the bracketing ranks", s.p95);
    }

    #[test]
    fn quantiles_are_order_independent() {
        let sorted: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let mut shuffled = sorted.clone();
        shuffled.reverse();
        shuffled.swap(3, 41);
        assert_eq!(
            LatencyStats::from_samples(&sorted),
            LatencyStats::from_samples(&shuffled),
            "stats must not depend on sample order"
        );
    }

    #[test]
    fn identical_samples_collapse_every_statistic() {
        let s = LatencyStats::from_samples(&[0.25; 17]);
        assert_eq!((s.mean, s.p95, s.max, s.count), (0.25, 0.25, 0.25, 17));
    }
}
