//! Evaluation metrics for the Schemble experiments.
//!
//! Implements exactly the quantities the paper reports:
//!
//! * **accuracy** — fraction of queries whose returned result agrees with the
//!   original ensemble's output, counting missed/rejected queries as
//!   incorrect ("queries that miss their deadline are considered incorrect");
//! * **processed accuracy** — accuracy over completed queries only (Fig. 10b);
//! * **deadline miss rate (DMR)** — fraction of queries with no valid result
//!   by their deadline;
//! * **mAP** — mean average precision for retrieval (AP of a single relevant
//!   item = 1/rank);
//! * **latency statistics** — mean / P95 / max (Table II);
//! * **trade-off objective** — `c = 100·Acc − λ·Latency` (Fig. 11/15);
//! * **per-time-segment aggregation** — hourly series (Fig. 9/14).

pub mod aggregate;
pub mod export;
pub mod latency;
pub mod outcome;
pub mod runtime;
pub mod segments;
pub mod tradeoff;

pub use aggregate::SeedStats;
pub use export::{to_csv, write_csv};
pub use latency::LatencyStats;
pub use outcome::{ModelUsage, QueryOutcome, QueryRecord, RunSummary};
pub use runtime::{LatencyHistogram, RuntimeCounters, RuntimeMetrics, RuntimeSnapshot};
pub use segments::SegmentSeries;
pub use tradeoff::tradeoff_objective;
