//! Lock-light live metrics for the serving runtime (`schemble-serve`).
//!
//! The runtime's hot path (scheduler loop, worker threads) updates plain
//! atomics; observers take consistent-enough [`RuntimeSnapshot`]s without
//! stopping the world. Counters use `Relaxed` ordering throughout — each
//! value is independently meaningful and monotone, which is all a metrics
//! export needs.

use crate::latency::LatencyStats;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Saturating atomic add: `dst += n`, clamping at `u64::MAX` instead of
/// wrapping. Merging counters from many shards must never wrap a total.
fn sat_add(dst: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    // fetch_update with a pure closure never fails permanently under Relaxed.
    let _ = dst.fetch_update(Relaxed, Relaxed, |cur| Some(cur.saturating_add(n)));
}

/// Query- and task-level counters shared between the runtime and observers.
///
/// Query conservation invariant (checked by `schemble-serve`'s property
/// tests): `submitted == completed + degraded + rejected + expired + open`,
/// and at drain `open == 0`.
#[derive(Debug, Default)]
pub struct RuntimeCounters {
    /// Queries handed to the pipeline (arrival events delivered).
    pub submitted: AtomicU64,
    /// Queries that finished with a full assembled result.
    pub completed: AtomicU64,
    /// Queries answered from a partial ensemble after task failures or at
    /// the deadline (graceful degradation).
    pub degraded: AtomicU64,
    /// Queries refused at arrival (admission control).
    pub rejected: AtomicU64,
    /// Queries dropped after admission (deadline passed before completion).
    pub expired: AtomicU64,
    /// Tasks started on executors.
    pub tasks_started: AtomicU64,
    /// Tasks finished by executors.
    pub tasks_completed: AtomicU64,
    /// Tasks that failed (transient fault, timeout kill, executor crash).
    pub tasks_failed: AtomicU64,
    /// Failed tasks that were re-dispatched after backoff.
    pub tasks_retried: AtomicU64,
    /// Planned tasks quit by the anytime policy before completing (the
    /// partial ensemble was already confident enough).
    pub tasks_saved: AtomicU64,
    /// Tasks launched as members of a cross-query batch (sum of launched
    /// batch sizes, singleton batches included).
    pub tasks_batched: AtomicU64,
    /// Queries transferred between shards by work stealing. Counted on the
    /// thief at adoption; conservation is unaffected because the victim's
    /// `submitted` and the thief's terminal outcome still pair up globally.
    pub queries_stolen: AtomicU64,
}

impl RuntimeCounters {
    /// A zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `other`'s counts into `self` (saturating).
    ///
    /// Addition is commutative and associative, so merging any number of
    /// per-shard counter blocks in any order produces the same totals —
    /// the property cross-shard aggregation relies on.
    pub fn merge(&self, other: &RuntimeCounters) {
        sat_add(&self.submitted, other.submitted.load(Relaxed));
        sat_add(&self.completed, other.completed.load(Relaxed));
        sat_add(&self.degraded, other.degraded.load(Relaxed));
        sat_add(&self.rejected, other.rejected.load(Relaxed));
        sat_add(&self.expired, other.expired.load(Relaxed));
        sat_add(&self.tasks_started, other.tasks_started.load(Relaxed));
        sat_add(&self.tasks_completed, other.tasks_completed.load(Relaxed));
        sat_add(&self.tasks_failed, other.tasks_failed.load(Relaxed));
        sat_add(&self.tasks_retried, other.tasks_retried.load(Relaxed));
        sat_add(&self.tasks_saved, other.tasks_saved.load(Relaxed));
        sat_add(&self.tasks_batched, other.tasks_batched.load(Relaxed));
        sat_add(&self.queries_stolen, other.queries_stolen.load(Relaxed));
    }

    /// Queries submitted but not yet decided.
    pub fn open(&self) -> u64 {
        let submitted = self.submitted.load(Relaxed);
        let closed = self.completed.load(Relaxed)
            + self.degraded.load(Relaxed)
            + self.rejected.load(Relaxed)
            + self.expired.load(Relaxed);
        submitted.saturating_sub(closed)
    }
}

/// Per-executor gauges: queue depth, liveness and cumulative busy time.
#[derive(Debug)]
pub struct ExecutorGauges {
    /// Tasks waiting in the executor's FIFO backlog.
    pub queue_depth: AtomicU64,
    /// 1 while a task is running, 0 while idle.
    pub running: AtomicU64,
    /// 1 while the executor is up, 0 while crashed/dead.
    pub up: AtomicU64,
    /// Cumulative busy time, in simulated microseconds.
    pub busy_micros: AtomicU64,
    /// Tasks completed by this executor.
    pub tasks: AtomicU64,
}

impl Default for ExecutorGauges {
    fn default() -> Self {
        Self {
            queue_depth: AtomicU64::new(0),
            running: AtomicU64::new(0),
            up: AtomicU64::new(1),
            busy_micros: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
        }
    }
}

impl ExecutorGauges {
    /// A point-in-time copy of the gauge values (used when concatenating
    /// per-shard gauge blocks into one merged metrics view).
    pub fn copied(&self) -> ExecutorGauges {
        ExecutorGauges {
            queue_depth: AtomicU64::new(self.queue_depth.load(Relaxed)),
            running: AtomicU64::new(self.running.load(Relaxed)),
            up: AtomicU64::new(self.up.load(Relaxed)),
            busy_micros: AtomicU64::new(self.busy_micros.load(Relaxed)),
            tasks: AtomicU64::new(self.tasks.load(Relaxed)),
        }
    }
}

/// A fixed-bucket, log-spaced latency histogram with atomic counts.
///
/// Buckets span 100 µs to ~100 s with 8 buckets per octave; one update is a
/// single relaxed `fetch_add`, so worker threads can record without
/// coordination.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    /// Values below the first bucket edge.
    underflow: AtomicU64,
    /// Sum of all observations, in microseconds (for exporter `_sum` rows).
    sum_micros: AtomicU64,
}

/// Number of histogram buckets (8 per octave over 20 octaves).
const HIST_BUCKETS: usize = 160;
/// Lower edge of bucket 0, seconds.
const HIST_MIN_SECS: f64 = 1e-4;
/// Buckets per factor-of-two.
const HIST_PER_OCTAVE: f64 = 8.0;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    fn bucket_of(secs: f64) -> Option<usize> {
        if secs.is_nan() || secs < HIST_MIN_SECS {
            return None;
        }
        let idx = ((secs / HIST_MIN_SECS).log2() * HIST_PER_OCTAVE) as usize;
        Some(idx.min(HIST_BUCKETS - 1))
    }

    /// Lower edge of bucket `i`, seconds.
    fn edge(i: usize) -> f64 {
        HIST_MIN_SECS * 2f64.powf(i as f64 / HIST_PER_OCTAVE)
    }

    /// Records one latency observation.
    pub fn record(&self, secs: f64) {
        match Self::bucket_of(secs) {
            Some(i) => self.buckets[i].fetch_add(1, Relaxed),
            None => self.underflow.fetch_add(1, Relaxed),
        };
        if secs.is_finite() && secs > 0.0 {
            self.sum_micros.fetch_add((secs * 1e6) as u64, Relaxed);
        }
    }

    /// Sum of all observations, in seconds (µs resolution).
    pub fn sum_secs(&self) -> f64 {
        self.sum_micros.load(Relaxed) as f64 / 1e6
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.underflow.load(Relaxed) + self.buckets.iter().map(|b| b.load(Relaxed)).sum::<u64>()
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) from bucket edges; `None` while
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow.load(Relaxed);
        if seen >= target {
            return Some(0.0);
        }
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= target {
                // Report the bucket's geometric midpoint.
                return Some((Self::edge(i) * Self::edge(i + 1)).sqrt());
            }
        }
        Some(Self::edge(HIST_BUCKETS))
    }

    /// Cumulative counts at each occupied bucket's *upper* edge, as
    /// `(upper_edge_secs, cumulative_count)` pairs — the shape Prometheus
    /// `le` buckets want. Only edges where the cumulative count grows are
    /// emitted, so sparse histograms stay small.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = self.underflow.load(Relaxed);
        if cumulative > 0 {
            out.push((HIST_MIN_SECS, cumulative));
        }
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Relaxed);
            if n > 0 {
                cumulative += n;
                out.push((Self::edge(i + 1), cumulative));
            }
        }
        out
    }

    /// Folds `other`'s observations into `self` (saturating, bucket-wise).
    ///
    /// Both histograms share the fixed bucket layout, so the merge is a
    /// pairwise add; like [`RuntimeCounters::merge`] it is order-insensitive,
    /// which makes cross-shard histogram aggregation deterministic no matter
    /// which shard finishes first.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            sat_add(dst, src.load(Relaxed));
        }
        sat_add(&self.underflow, other.underflow.load(Relaxed));
        sat_add(&self.sum_micros, other.sum_micros.load(Relaxed));
    }

    /// Non-empty buckets as `(lower_edge_secs, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        if self.underflow.load(Relaxed) > 0 {
            out.push((0.0, self.underflow.load(Relaxed)));
        }
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Relaxed);
            if n > 0 {
                out.push((Self::edge(i), n));
            }
        }
        out
    }
}

/// Everything the runtime exposes to observers, behind one allocation.
#[derive(Debug)]
pub struct RuntimeMetrics {
    /// Query/task counters.
    pub counters: RuntimeCounters,
    /// Per-executor gauges, fixed at construction.
    pub executors: Vec<ExecutorGauges>,
    /// End-to-end latency of completed queries.
    pub latency: LatencyHistogram,
    /// Size of each launched batch. The histogram machinery is shared with
    /// latency, so "observations" here are batch sizes (1, 2, …), not
    /// seconds; the log-spaced buckets resolve sizes up to the low hundreds.
    pub batch_size: LatencyHistogram,
}

impl RuntimeMetrics {
    /// Metrics for a runtime with `executors` executors.
    pub fn new(executors: usize) -> Self {
        Self {
            counters: RuntimeCounters::new(),
            executors: (0..executors).map(|_| ExecutorGauges::default()).collect(),
            latency: LatencyHistogram::new(),
            batch_size: LatencyHistogram::new(),
        }
    }

    /// Aggregates per-shard metrics blocks into one view: counters and
    /// latency histograms are merged (order-insensitive), executor gauges
    /// are concatenated in the order given, so shard `s`'s executor `k`
    /// lands at global index `s * m + k`.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a RuntimeMetrics>) -> RuntimeMetrics {
        let mut out = RuntimeMetrics::new(0);
        for part in parts {
            out.counters.merge(&part.counters);
            out.latency.merge(&part.latency);
            out.batch_size.merge(&part.batch_size);
            out.executors.extend(part.executors.iter().map(ExecutorGauges::copied));
        }
        out
    }

    /// Takes a point-in-time snapshot. `elapsed_secs` is the (simulated)
    /// time base for utilisation; pass the run's elapsed sim time.
    pub fn snapshot(&self, elapsed_secs: f64) -> RuntimeSnapshot {
        let c = &self.counters;
        RuntimeSnapshot {
            submitted: c.submitted.load(Relaxed),
            completed: c.completed.load(Relaxed),
            degraded: c.degraded.load(Relaxed),
            rejected: c.rejected.load(Relaxed),
            expired: c.expired.load(Relaxed),
            open: c.open(),
            tasks_started: c.tasks_started.load(Relaxed),
            tasks_completed: c.tasks_completed.load(Relaxed),
            tasks_failed: c.tasks_failed.load(Relaxed),
            tasks_retried: c.tasks_retried.load(Relaxed),
            tasks_saved: c.tasks_saved.load(Relaxed),
            tasks_batched: c.tasks_batched.load(Relaxed),
            queries_stolen: c.queries_stolen.load(Relaxed),
            up: self.executors.iter().map(|e| e.up.load(Relaxed) == 1).collect(),
            queue_depths: self
                .executors
                .iter()
                .map(|e| e.queue_depth.load(Relaxed) as usize)
                .collect(),
            running: self.executors.iter().map(|e| e.running.load(Relaxed) == 1).collect(),
            utilization: self
                .executors
                .iter()
                .map(|e| {
                    if elapsed_secs > 0.0 {
                        (e.busy_micros.load(Relaxed) as f64 / 1e6 / elapsed_secs).min(1.0)
                    } else {
                        0.0
                    }
                })
                .collect(),
            latency_p50: self.latency.quantile(0.50),
            latency_p95: self.latency.quantile(0.95),
            latency_p99: self.latency.quantile(0.99),
        }
    }
}

/// A point-in-time view of [`RuntimeMetrics`], safe to print or export.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSnapshot {
    /// Queries handed to the pipeline.
    pub submitted: u64,
    /// Queries completed with a full result.
    pub completed: u64,
    /// Queries answered from a partial ensemble.
    pub degraded: u64,
    /// Queries refused at arrival.
    pub rejected: u64,
    /// Queries dropped after admission.
    pub expired: u64,
    /// Queries still in flight.
    pub open: u64,
    /// Tasks started on executors.
    pub tasks_started: u64,
    /// Tasks finished by executors.
    pub tasks_completed: u64,
    /// Tasks that failed.
    pub tasks_failed: u64,
    /// Failed tasks re-dispatched after backoff.
    pub tasks_retried: u64,
    /// Planned tasks quit early by the anytime policy.
    pub tasks_saved: u64,
    /// Tasks launched as members of a cross-query batch.
    pub tasks_batched: u64,
    /// Queries transferred between shards by work stealing.
    pub queries_stolen: u64,
    /// Whether each executor is up.
    pub up: Vec<bool>,
    /// Backlog length per executor.
    pub queue_depths: Vec<usize>,
    /// Whether each executor is mid-task.
    pub running: Vec<bool>,
    /// Fraction of elapsed time each executor was busy.
    pub utilization: Vec<f64>,
    /// Median completed-query latency, seconds.
    pub latency_p50: Option<f64>,
    /// 95th-percentile completed-query latency, seconds.
    pub latency_p95: Option<f64>,
    /// 99th-percentile completed-query latency, seconds.
    pub latency_p99: Option<f64>,
}

impl RuntimeSnapshot {
    /// One-line human-readable form for periodic progress output.
    pub fn brief(&self) -> String {
        format!(
            "submitted {} | completed {} | degraded {} | rejected {} | expired {} | open {} | queues {:?} | util {}",
            self.submitted,
            self.completed,
            self.degraded,
            self.rejected,
            self.expired,
            self.open,
            self.queue_depths,
            self.utilization
                .iter()
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect::<Vec<_>>()
                .join("/"),
        )
    }
}

/// Summarises a histogram against exact stats (used in tests and reports to
/// sanity-check the approximation).
pub fn histogram_consistent(h: &LatencyHistogram, exact: &LatencyStats, tol_frac: f64) -> bool {
    match h.quantile(0.95) {
        Some(p95) => (p95 - exact.p95).abs() <= tol_frac * exact.p95.max(1e-3),
        None => exact.p95 == 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_conserve_queries() {
        let c = RuntimeCounters::new();
        c.submitted.fetch_add(10, Relaxed);
        c.completed.fetch_add(5, Relaxed);
        c.degraded.fetch_add(1, Relaxed);
        c.rejected.fetch_add(1, Relaxed);
        c.expired.fetch_add(2, Relaxed);
        assert_eq!(c.open(), 1, "degraded queries are closed, not open");
    }

    #[test]
    fn executors_default_to_up() {
        let m = RuntimeMetrics::new(2);
        let s = m.snapshot(0.0);
        assert_eq!(s.up, vec![true, true]);
        m.executors[1].up.store(0, Relaxed);
        assert_eq!(m.snapshot(0.0).up, vec![true, false]);
    }

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(0.010);
        }
        for _ in 0..5 {
            h.record(1.0);
        }
        assert_eq!(h.count(), 105);
        let p50 = h.quantile(0.5).unwrap();
        assert!((0.005..0.02).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((0.5..2.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn histogram_handles_tiny_and_zero_values() {
        let h = LatencyHistogram::new();
        h.record(0.0);
        h.record(1e-6);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), Some(0.0));
    }

    #[test]
    fn log_bucket_boundaries_pin_to_spec() {
        // The histogram spans 1e-4 s upward with 8 buckets per octave:
        // edge(i) = 1e-4 * 2^(i/8). Pin the boundaries so a silent change
        // to the bucket layout breaks loudly (exporters and dashboards
        // depend on these edges).
        assert_eq!(LatencyHistogram::edge(0), HIST_MIN_SECS);
        assert!((LatencyHistogram::edge(8) - 2e-4).abs() < 1e-12, "one octave doubles");
        assert!((LatencyHistogram::edge(16) - 4e-4).abs() < 1e-12, "two octaves quadruple");
        for i in 0..HIST_BUCKETS {
            assert!(
                LatencyHistogram::edge(i) < LatencyHistogram::edge(i + 1),
                "edges must be strictly increasing at {i}"
            );
        }
        // Values at (or just above) a lower edge land in that bucket;
        // values below the first edge underflow.
        assert_eq!(LatencyHistogram::bucket_of(HIST_MIN_SECS), Some(0));
        assert_eq!(LatencyHistogram::bucket_of(2.0001e-4), Some(8));
        assert_eq!(LatencyHistogram::bucket_of(9.9e-5), None);
        assert_eq!(LatencyHistogram::bucket_of(f64::NAN), None);
        // Far beyond the last edge clamps into the final bucket.
        assert_eq!(LatencyHistogram::bucket_of(1e9), Some(HIST_BUCKETS - 1));
    }

    #[test]
    fn cumulative_buckets_match_prometheus_shape() {
        let h = LatencyHistogram::new();
        h.record(5e-5); // underflow
        for _ in 0..3 {
            h.record(0.010);
        }
        for _ in 0..2 {
            h.record(1.0);
        }
        let cum = h.cumulative_buckets();
        assert_eq!(cum.first().map(|&(e, n)| (e, n)), Some((HIST_MIN_SECS, 1)));
        assert_eq!(cum.last().map(|&(_, n)| n), Some(h.count()), "last bucket holds the total");
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0, "upper edges strictly increase");
            assert!(w[0].1 <= w[1].1, "counts are cumulative");
        }
        // Each observation must sit at or below the upper edge it counts
        // toward: 0.010 s under the first post-underflow edge.
        let edge_10ms = cum[1].0;
        assert!((0.010..0.012).contains(&edge_10ms), "upper edge {edge_10ms}");
        assert!((h.sum_secs() - (5e-5 + 3.0 * 0.010 + 2.0)).abs() < 1e-5);
    }

    #[test]
    fn open_never_underflows_under_concurrent_updates() {
        use std::sync::Arc;
        // Each worker closes every query it submits, but a reader may see
        // the close before the submit (all updates are Relaxed). open()
        // must saturate rather than wrap, and must settle to exactly zero.
        let m = Arc::new(RuntimeMetrics::new(1));
        const WORKERS: usize = 4;
        const PER_WORKER: u64 = 5_000;
        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..PER_WORKER {
                        m.counters.submitted.fetch_add(1, Relaxed);
                        match (w as u64 + i) % 3 {
                            0 => m.counters.completed.fetch_add(1, Relaxed),
                            1 => m.counters.rejected.fetch_add(1, Relaxed),
                            _ => m.counters.expired.fetch_add(1, Relaxed),
                        };
                    }
                })
            })
            .collect();
        let reader = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                let total = (WORKERS as u64) * PER_WORKER;
                for _ in 0..10_000 {
                    let open = m.counters.open();
                    assert!(open <= total, "open {open} exceeds every possible in-flight count");
                }
            })
        };
        for t in workers {
            t.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(m.counters.open(), 0, "every submitted query was closed");
        assert_eq!(m.counters.submitted.load(Relaxed), (WORKERS as u64) * PER_WORKER);
    }

    fn seeded_counters(base: u64) -> RuntimeCounters {
        let c = RuntimeCounters::new();
        c.submitted.store(base + 9, Relaxed);
        c.completed.store(base + 4, Relaxed);
        c.degraded.store(base + 1, Relaxed);
        c.rejected.store(base + 2, Relaxed);
        c.expired.store(base + 2, Relaxed);
        c.tasks_started.store(base * 3, Relaxed);
        c.tasks_completed.store(base * 2, Relaxed);
        c.tasks_failed.store(base, Relaxed);
        c.tasks_retried.store(base / 2, Relaxed);
        c.tasks_saved.store(base / 3, Relaxed);
        c.tasks_batched.store(base / 4, Relaxed);
        c
    }

    fn counter_values(c: &RuntimeCounters) -> [u64; 11] {
        [
            c.submitted.load(Relaxed),
            c.completed.load(Relaxed),
            c.degraded.load(Relaxed),
            c.rejected.load(Relaxed),
            c.expired.load(Relaxed),
            c.tasks_started.load(Relaxed),
            c.tasks_completed.load(Relaxed),
            c.tasks_failed.load(Relaxed),
            c.tasks_retried.load(Relaxed),
            c.tasks_saved.load(Relaxed),
            c.tasks_batched.load(Relaxed),
        ]
    }

    #[test]
    fn counter_merge_is_order_insensitive_and_saturating() {
        let parts = [seeded_counters(3), seeded_counters(40), seeded_counters(700)];
        let forward = RuntimeCounters::new();
        for p in &parts {
            forward.merge(p);
        }
        let backward = RuntimeCounters::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(counter_values(&forward), counter_values(&backward));
        assert_eq!(forward.submitted.load(Relaxed), 9 * 3 + 3 + 40 + 700);
        assert_eq!(forward.open(), parts.iter().map(|p| p.open()).sum::<u64>());

        // Merging near-full counters clamps instead of wrapping.
        let full = RuntimeCounters::new();
        full.submitted.store(u64::MAX - 1, Relaxed);
        full.merge(&parts[0]);
        assert_eq!(full.submitted.load(Relaxed), u64::MAX);
    }

    #[test]
    fn histogram_merge_is_order_insensitive() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..50 {
            a.record(0.010);
        }
        a.record(5e-5); // underflow
        for _ in 0..7 {
            b.record(1.0);
        }
        b.record(0.010);

        let ab = LatencyHistogram::new();
        ab.merge(&a);
        ab.merge(&b);
        let ba = LatencyHistogram::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.count(), a.count() + b.count());
        assert_eq!(ab.cumulative_buckets(), ba.cumulative_buckets());
        assert_eq!(ab.nonzero_buckets(), ba.nonzero_buckets());
        assert!((ab.sum_secs() - (a.sum_secs() + b.sum_secs())).abs() < 1e-9);
        assert_eq!(ab.quantile(0.5), ba.quantile(0.5));
    }

    #[test]
    fn merging_empty_counters_and_histograms_is_identity() {
        let c = RuntimeCounters::new();
        c.merge(&RuntimeCounters::new());
        assert_eq!(counter_values(&c), [0; 11]);
        assert_eq!(c.open(), 0);

        let h = LatencyHistogram::new();
        h.merge(&LatencyHistogram::new());
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_secs(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.nonzero_buckets().is_empty());

        // Identity also holds asymmetrically: empty ⊕ seeded == seeded.
        let seeded = seeded_counters(5);
        let into = RuntimeCounters::new();
        into.merge(&seeded);
        assert_eq!(counter_values(&into), counter_values(&seeded));
    }

    #[test]
    fn histogram_merge_saturates_instead_of_wrapping() {
        let a = LatencyHistogram::new();
        a.sum_micros.store(u64::MAX - 10, Relaxed);
        a.buckets[0].store(u64::MAX - 1, Relaxed);
        let b = LatencyHistogram::new();
        b.sum_micros.store(100, Relaxed);
        b.buckets[0].store(100, Relaxed);
        a.merge(&b);
        assert_eq!(a.sum_micros.load(Relaxed), u64::MAX);
        assert_eq!(a.buckets[0].load(Relaxed), u64::MAX);
        // A saturated count still yields a well-defined (clamped) quantile.
        assert_eq!(a.quantile(1.0), a.quantile(0.0));
    }

    #[test]
    fn single_bucket_histograms_merge_to_that_bucket() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..3 {
            a.record(0.010);
            b.record(0.010);
        }
        let m = LatencyHistogram::new();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.count(), 6);
        assert_eq!(m.nonzero_buckets().len(), 1);
        assert_eq!(m.quantile(0.0), m.quantile(1.0), "all mass in one bucket");
        assert_eq!(m.quantile(0.5), a.quantile(0.5));
    }

    #[test]
    fn merged_metrics_concatenate_executors_and_sum_counts() {
        let s0 = RuntimeMetrics::new(2);
        let s1 = RuntimeMetrics::new(2);
        s0.counters.submitted.store(5, Relaxed);
        s0.counters.completed.store(5, Relaxed);
        s1.counters.submitted.store(3, Relaxed);
        s1.counters.completed.store(3, Relaxed);
        s0.latency.record(0.010);
        s1.latency.record(0.020);
        s0.executors[1].busy_micros.store(250_000, Relaxed);
        s1.executors[0].busy_micros.store(750_000, Relaxed);
        s1.executors[1].up.store(0, Relaxed);

        let merged = RuntimeMetrics::merged([&s0, &s1]);
        let snap = merged.snapshot(1.0);
        assert_eq!(snap.submitted, 8);
        assert_eq!(snap.open, 0);
        assert_eq!(merged.latency.count(), 2);
        assert_eq!(snap.up, vec![true, true, true, false]);
        assert!((snap.utilization[1] - 0.25).abs() < 1e-9);
        assert!((snap.utilization[2] - 0.75).abs() < 1e-9, "shard 1 executor 0 at index 2");
    }

    #[test]
    fn snapshot_reflects_gauges() {
        let m = RuntimeMetrics::new(2);
        m.counters.submitted.fetch_add(3, Relaxed);
        m.executors[1].queue_depth.store(4, Relaxed);
        m.executors[0].busy_micros.store(500_000, Relaxed);
        let s = m.snapshot(1.0);
        assert_eq!(s.submitted, 3);
        assert_eq!(s.queue_depths, vec![0, 4]);
        assert!((s.utilization[0] - 0.5).abs() < 1e-9);
        assert!(s.brief().contains("submitted 3"));
    }
}
